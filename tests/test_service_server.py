"""Tests for the asyncio supervisor server (repro.service.server).

The headline property is end-to-end parity: the service at a fixed
seed must produce the exact per-task ``VerificationOutcome``s of the
synchronous scheme layer (``GridSimulation`` job semantics) and of the
actor-based ``SupervisorNode`` topology (given the same per-task seed
rule), with sessions interleaved across concurrent connections in any
order.
"""

import asyncio

import pytest

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme, NICBSScheme
from repro.core.protocol import CommitmentMsg, NICBSSubmissionMsg
from repro.engine import SerialExecutor, derive_seed, run_scheme_jobs
from repro.exceptions import ProtocolError
from repro.grid import GridSimulation, Network, ParticipantNode, SimulationConfig, SupervisorNode
from repro.service import (
    ChallengeFrame,
    CommitmentFrame,
    ErrorFrame,
    ProofsFrame,
    ServiceClient,
    ServiceConfig,
    SubmissionFrame,
    SupervisorServer,
    TaskRequest,
    VerdictFrame,
    read_frame,
    write_frame,
)
from repro.tasks import PasswordSearch, RangeDomain

D = RangeDomain(0, 1 << 9)
BEHAVIORS = [HonestBehavior(), SemiHonestCheater(0.5)]


def config(protocol: str, n_participants: int = 6, m: int = 12) -> ServiceConfig:
    return ServiceConfig(
        domain=RangeDomain(D.start, D.stop),
        protocol=protocol,
        n_samples=m,
        n_participants=n_participants,
        seed=21,
    )


def sync_outcomes(cfg: ServiceConfig):
    """Reference outcomes from the synchronous scheme layer."""
    scheme = (
        CBSScheme(cfg.n_samples)
        if cfg.protocol == "cbs"
        else NICBSScheme(cfg.n_samples)
    )
    sim = GridSimulation(
        SimulationConfig(
            domain=cfg.domain,
            function=PasswordSearch(),
            scheme=scheme,
            n_participants=cfg.n_participants,
            behaviors=BEHAVIORS,
            seed=cfg.seed,
        )
    )
    jobs = sim.jobs()
    results = run_scheme_jobs(scheme, jobs)
    return {job.assignment.task_id: r.outcome for job, r in zip(jobs, results)}


async def drive_all(server: SupervisorServer, cfg: ServiceConfig):
    """One client per participant, all rounds concurrent."""

    async def one(i: int):
        reader, writer = server.connect_memory()
        client = ServiceClient(reader, writer)
        try:
            return await client.run_participant(
                BEHAVIORS[i % len(BEHAVIORS)], participant=i
            )
        finally:
            await client.close()

    return await asyncio.gather(*(one(i) for i in range(cfg.n_participants)))


class TestEndToEnd:
    @pytest.mark.parametrize("protocol", ["cbs", "ni-cbs"])
    def test_parity_with_scheme_layer(self, protocol):
        cfg = config(protocol)

        async def scenario():
            server = SupervisorServer(cfg, engine="threads", workers=2)
            try:
                runs = await drive_all(server, cfg)
            finally:
                await server.stop()
            return server, runs

        server, runs = asyncio.run(scenario())
        assert server.outcomes == sync_outcomes(cfg)
        # Client-side verdicts agree with server-side outcomes.
        for run in runs:
            assert run.accepted == server.outcomes[run.task_id].accepted
        # Theorem 1 at the service layer: no honest participant rejected.
        assert all(r.accepted for r in runs if r.honesty_ratio == 1.0)
        assert all(not r.accepted for r in runs if r.honesty_ratio < 1.0)

    def test_serial_engine_runs_inline(self):
        cfg = config("ni-cbs", n_participants=3)

        async def scenario():
            with SerialExecutor() as executor:
                server = SupervisorServer(cfg, engine=executor)
                try:
                    await drive_all(server, cfg)
                finally:
                    await server.stop()
            return server

        server = asyncio.run(scenario())
        assert server.outcomes == sync_outcomes(cfg)
        assert server.stats.verifications == 3


class TestInterleavedCBS:
    def test_interleaved_rounds_match_supervisor_node(self):
        """Two clients interleave commit/prove arbitrarily; outcomes
        equal both the scheme layer and a synchronous SupervisorNode
        driven with the same per-task seed rule."""
        cfg = config("cbs", n_participants=2)

        async def scenario():
            server = SupervisorServer(cfg, engine="serial")
            try:
                clients = [
                    ServiceClient(*server.connect_memory()) for _ in range(2)
                ]
                assigns = [
                    await clients[i].request_task(participant=i)
                    for i in range(2)
                ]
                from repro.core.cbs import CBSParticipant
                from repro.merkle import get_hash

                sessions = []
                for i, assign in enumerate(assigns):
                    session = CBSParticipant(
                        ServiceClient.build_assignment(assign),
                        BEHAVIORS[i % len(BEHAVIORS)],
                        hash_fn=get_hash(assign.hash_name),
                        salt=assign.seed.to_bytes(8, "big"),
                    )
                    sessions.append(session)

                # Interleave: both commitments first, then proofs in
                # *reverse* client order.
                challenges = []
                for i in (0, 1):
                    await clients[i]._send(
                        CommitmentFrame(msg=sessions[i].compute_and_commit())
                    )
                    challenges.append(await clients[i]._recv(ChallengeFrame))
                verdicts = {}
                for i in (1, 0):
                    await clients[i]._send(
                        ProofsFrame(msg=sessions[i].prove(challenges[i].msg))
                    )
                    verdict = await clients[i]._recv(VerdictFrame)
                    verdicts[verdict.msg.task_id] = verdict.msg.accepted
                for client in clients:
                    await client.close()
                return verdicts, server
            finally:
                await server.stop()

        verdicts, server = asyncio.run(scenario())
        expected = sync_outcomes(cfg)
        assert server.outcomes == expected
        assert verdicts == {
            task_id: outcome.accepted for task_id, outcome in expected.items()
        }

        # The actor topology agrees too, given the same seed rule.
        network = Network()
        supervisor = SupervisorNode(
            "supervisor",
            network,
            protocol="cbs",
            n_samples=cfg.n_samples,
            seed_fn=lambda task_id: derive_seed(
                cfg.seed, int(task_id.split("-")[1])
            ),
        )
        subdomains = cfg.domain.partition(cfg.n_participants)
        catalogue = {}
        for i, subdomain in enumerate(subdomains):
            from repro.tasks import TaskAssignment

            catalogue[f"task-{i}"] = TaskAssignment(
                f"task-{i}", subdomain, PasswordSearch()
            )
            ParticipantNode(
                f"p{i}",
                network,
                BEHAVIORS[i % len(BEHAVIORS)],
                catalogue.__getitem__,
                protocol="cbs",
                salt=derive_seed(cfg.seed, i).to_bytes(8, "big"),
            )
        for i in range(cfg.n_participants):
            supervisor.assign(catalogue[f"task-{i}"], f"p{i}")
        network.deliver_all()
        assert supervisor.outcomes == expected


class TestProtocolPolicing:
    def run_with_frames(self, cfg: ServiceConfig, frames):
        """Send raw frames on one connection; collect replies."""

        async def scenario():
            server = SupervisorServer(cfg, engine="serial")
            try:
                reader, writer = server.connect_memory()
                replies = []
                for frame in frames:
                    await write_frame(writer, frame)
                    reply = await read_frame(reader)
                    replies.append(reply)
                    if isinstance(reply, ErrorFrame) or reply is None:
                        break
                writer.close()
                return replies, server
            finally:
                await server.stop()

        return asyncio.run(scenario())

    def test_unknown_task_submission_gets_error_frame(self):
        cfg = config("ni-cbs")
        replies, server = self.run_with_frames(
            cfg,
            [
                SubmissionFrame(
                    msg=NICBSSubmissionMsg(
                        task_id="task-999", root=b"\x00" * 32,
                        n_leaves=1, proofs=(),
                    )
                )
            ],
        )
        assert isinstance(replies[-1], ErrorFrame)
        assert "unknown task" in replies[-1].message
        assert server.stats.errors == 1

    def test_commitment_in_nicbs_mode_rejected(self):
        cfg = config("ni-cbs")
        replies, _server = self.run_with_frames(
            cfg,
            [
                TaskRequest(participant=0),
                CommitmentFrame(
                    msg=CommitmentMsg(
                        task_id="task-0", root=b"\x00" * 32, n_leaves=1
                    )
                ),
            ],
        )
        assert isinstance(replies[-1], ErrorFrame)

    def test_duplicate_slot_request_rejected(self):
        cfg = config("ni-cbs")
        replies, _server = self.run_with_frames(
            cfg, [TaskRequest(participant=0), TaskRequest(participant=0)]
        )
        assert isinstance(replies[-1], ErrorFrame)
        assert "already assigned" in replies[-1].message

    def test_out_of_range_slot_rejected(self):
        cfg = config("ni-cbs", n_participants=2)
        replies, _server = self.run_with_frames(
            cfg, [TaskRequest(participant=99)]
        )
        assert isinstance(replies[-1], ErrorFrame)

    def test_auto_assignment_reuses_evicted_slots(self):
        cfg = config("ni-cbs", n_participants=2)

        async def scenario():
            server = SupervisorServer(
                cfg, engine="serial", session_ttl=0.05
            )
            try:
                # Exhaust both slots via auto-assignment, then abandon.
                for _ in range(2):
                    client = ServiceClient(*server.connect_memory())
                    await client.request_task()
                    await client.close()
                await asyncio.sleep(0.2)  # sweeper evicts both
                # The cursor is exhausted, but freed slots are found.
                client = ServiceClient(*server.connect_memory())
                run = await client.run_participant(HonestBehavior())
                await client.close()
                return run
            finally:
                await server.stop()

        run = asyncio.run(scenario())
        assert run.accepted

    def test_hostile_bytes_close_the_connection_not_the_server(self):
        cfg = config("ni-cbs")

        async def scenario():
            server = SupervisorServer(cfg, engine="serial")
            try:
                reader, writer = server.connect_memory()
                writer.write(b"\x00\x00\x00\x05notjs")
                reply = await read_frame(reader)
                assert isinstance(reply, ErrorFrame)
                assert await read_frame(reader) is None  # connection closed

                # The server is still alive for well-behaved clients.
                client = ServiceClient(*server.connect_memory())
                run = await client.run_participant(
                    HonestBehavior(), participant=0
                )
                await client.close()
                return run
            finally:
                await server.stop()

        run = asyncio.run(scenario())
        assert run.accepted


class TestEvictionIntegration:
    def test_evict_racing_inflight_commitment_yields_error_frame(self):
        """TTL eviction between challenge and proofs: the straggler's
        proofs get a clean ``error`` frame (unknown task), never a
        KeyError, and the server keeps serving."""
        cfg = config("cbs", n_participants=1)
        now = [0.0]

        async def scenario():
            server = SupervisorServer(
                cfg, engine="serial", session_ttl=10.0, clock=lambda: now[0]
            )
            try:
                reader, writer = server.connect_memory()
                await write_frame(writer, TaskRequest(participant=0))
                assign = await read_frame(reader)

                from repro.core.cbs import CBSParticipant
                from repro.merkle import get_hash

                session = CBSParticipant(
                    ServiceClient.build_assignment(assign),
                    HonestBehavior(),
                    hash_fn=get_hash(assign.hash_name),
                    salt=assign.seed.to_bytes(8, "big"),
                )
                await write_frame(
                    writer, CommitmentFrame(msg=session.compute_and_commit())
                )
                challenge = await read_frame(reader)

                # The participant stalls past the TTL; the sweeper (here
                # driven by hand through the injected clock) reclaims
                # the committed session while its proofs are in flight.
                now[0] += 11.0
                assert server.sessions.evict_stale() == ["task-0"]

                await write_frame(
                    writer, ProofsFrame(msg=session.prove(challenge.msg))
                )
                reply = await read_frame(reader)
                writer.close()

                # The server survived: the slot is reassignable and a
                # fresh round completes.
                client = ServiceClient(*server.connect_memory())
                rerun = await client.run_participant(
                    HonestBehavior(), participant=0
                )
                await client.close()
                return reply, rerun, server
            finally:
                await server.stop()

        reply, rerun, server = asyncio.run(scenario())
        assert isinstance(reply, ErrorFrame)
        assert "unknown task" in reply.message
        assert server.stats.errors == 1
        assert rerun.accepted

    def test_abandoned_session_evicted_then_slot_reusable(self):
        cfg = config("cbs", n_participants=1)

        async def scenario():
            server = SupervisorServer(
                cfg, engine="serial", session_ttl=0.05
            )
            try:
                # Claim the slot, then abandon the connection mid-round.
                client = ServiceClient(*server.connect_memory())
                await client.request_task(participant=0)
                await client.close()

                await asyncio.sleep(0.2)  # > ttl: the sweeper fires
                assert server.sessions.stats.evicted == 1

                # The slot is assignable again; the rerun completes.
                client = ServiceClient(*server.connect_memory())
                run = await client.run_participant(
                    HonestBehavior(), participant=0
                )
                await client.close()
                return run
            finally:
                await server.stop()

        run = asyncio.run(scenario())
        assert run.accepted


class TestConfigValidation:
    def test_bad_protocol_rejected(self):
        with pytest.raises(ProtocolError):
            ServiceConfig(domain=RangeDomain(0, 8), protocol="carrier-pigeon")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ProtocolError):
            ServiceConfig(domain=RangeDomain(0, 8), workload="MiningRig")

    def test_non_range_domain_rejected(self):
        from repro.tasks import ExplicitDomain

        with pytest.raises(ProtocolError):
            ServiceConfig(domain=ExplicitDomain([1, 2, 3]))
