"""Tests for the non-interactive CBS scheme (paper §4)."""

import pytest

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import NICBSParticipant, NICBSScheme, NICBSSupervisor
from repro.core.ni_cbs import derive_sample_indices
from repro.core.protocol import NICBSSubmissionMsg
from repro.core.scheme import RejectReason
from repro.exceptions import SchemeConfigurationError
from repro.merkle import get_hash
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment


class TestSampleDerivation:
    def test_eq4_chain(self):
        # i_k = g^k(Φ(R)) mod n: verify against a manual chain.
        g = get_hash("sha256")
        root = b"\x07" * 32
        indices = derive_sample_indices(root, n=100, m=3, sample_hash=g)
        value = root
        expected = []
        for _ in range(3):
            value = g.digest(value)
            expected.append(int.from_bytes(value, "big") % 100)
        assert indices == expected

    def test_deterministic(self):
        g = get_hash("sha256")
        a = derive_sample_indices(b"\x01" * 32, 50, 5, g)
        b = derive_sample_indices(b"\x01" * 32, 50, 5, g)
        assert a == b

    def test_different_roots_different_samples(self):
        g = get_hash("sha256")
        a = derive_sample_indices(b"\x01" * 32, 1000, 8, g)
        b = derive_sample_indices(b"\x02" * 32, 1000, 8, g)
        assert a != b

    def test_indices_in_range(self):
        g = get_hash("md5")
        for n in (1, 2, 7, 1000):
            for index in derive_sample_indices(b"\x03" * 16, n, 10, g):
                assert 0 <= index < n

    def test_roughly_uniform(self):
        g = get_hash("sha256")
        counts = [0] * 10
        for trial in range(300):
            root = bytes([trial % 256, trial // 256]) * 16
            for index in derive_sample_indices(root, 10, 4, g):
                counts[index] += 1
        total = sum(counts)
        assert total == 1200
        assert all(abs(c - 120) < 60 for c in counts), counts

    def test_validation(self):
        g = get_hash("sha256")
        with pytest.raises(SchemeConfigurationError):
            derive_sample_indices(b"\x00" * 32, n=0, m=1, sample_hash=g)
        with pytest.raises(SchemeConfigurationError):
            derive_sample_indices(b"\x00" * 32, n=10, m=0, sample_hash=g)


class TestEndToEnd:
    def test_honest_accepted(self, password_task):
        scheme = NICBSScheme(n_samples=16)
        for seed in range(5):
            result = scheme.run(password_task, HonestBehavior(), seed=seed)
            assert result.outcome.accepted

    def test_cheater_caught(self, password_task):
        scheme = NICBSScheme(n_samples=24)
        for seed in range(10):
            result = scheme.run(
                password_task, SemiHonestCheater(0.5), seed=seed
            )
            assert not result.outcome.accepted

    def test_single_message_protocol(self, password_task):
        # NI-CBS: exactly one participant → supervisor message.
        result = NICBSScheme(n_samples=8).run(
            password_task, HonestBehavior(), seed=1
        )
        assert result.participant_ledger.messages_sent == 1
        assert result.supervisor_ledger.messages_sent == 0

    def test_iterated_g_charged_both_sides(self, password_task):
        scheme = NICBSScheme(n_samples=4, sample_hash_name="md5^50")
        result = scheme.run(password_task, HonestBehavior(), seed=1)
        # Participant: tree hashes + 4 × g (cost 50 each).
        # Supervisor: m × g for re-derivation + verification tree hashes.
        assert result.supervisor_ledger.hash_cost >= 4 * 50
        assert result.participant_ledger.hash_cost >= 4 * 50


class TestSupervisorChecks:
    def make_submission(self, task, behavior=None, n_samples=8):
        participant = NICBSParticipant(
            task, behavior or HonestBehavior(), n_samples=n_samples
        )
        return participant.compute_and_submit()

    def test_sample_mismatch_detected(self, password_task):
        # A participant that self-selects favourable samples (not the
        # Eq. 4 derivation) is rejected outright.
        submission = self.make_submission(password_task)
        forged = NICBSSubmissionMsg(
            task_id=submission.task_id,
            root=submission.root,
            n_leaves=submission.n_leaves,
            proofs=submission.proofs[::-1],  # reordered = not derived
        )
        supervisor = NICBSSupervisor(password_task, n_samples=8)
        outcome = supervisor.verify(forged)
        assert not outcome.accepted
        assert outcome.reason == RejectReason.SAMPLE_MISMATCH

    def test_wrong_leaf_count_rejected(self, password_task):
        submission = self.make_submission(password_task)
        forged = NICBSSubmissionMsg(
            task_id=submission.task_id,
            root=submission.root,
            n_leaves=submission.n_leaves - 1,
            proofs=submission.proofs,
        )
        outcome = NICBSSupervisor(password_task, n_samples=8).verify(forged)
        assert not outcome.accepted
        assert outcome.reason == RejectReason.PROTOCOL_VIOLATION

    def test_wrong_root_width_rejected(self, password_task):
        submission = self.make_submission(password_task)
        forged = NICBSSubmissionMsg(
            task_id=submission.task_id,
            root=b"\x00" * 8,
            n_leaves=submission.n_leaves,
            proofs=submission.proofs,
        )
        outcome = NICBSSupervisor(password_task, n_samples=8).verify(forged)
        assert not outcome.accepted

    def test_m_disagreement_rejected(self, password_task):
        # Supervisor expecting 16 samples rejects an 8-proof submission.
        submission = self.make_submission(password_task, n_samples=8)
        outcome = NICBSSupervisor(password_task, n_samples=16).verify(
            submission
        )
        assert not outcome.accepted
        assert outcome.reason == RejectReason.SAMPLE_MISMATCH

    def test_g_mismatch_rejected(self, password_task):
        # Different sample hash on each side → derived indices differ.
        participant = NICBSParticipant(
            password_task,
            HonestBehavior(),
            n_samples=8,
            sample_hash=get_hash("md5"),
        )
        submission = participant.compute_and_submit()
        supervisor = NICBSSupervisor(
            password_task, n_samples=8, sample_hash=get_hash("sha256")
        )
        outcome = supervisor.verify(submission)
        assert not outcome.accepted
        assert outcome.reason == RejectReason.SAMPLE_MISMATCH


class TestSamplesDependOnCommitment:
    def test_different_work_different_samples(self, password_task):
        # The derived samples move when the committed leaves change —
        # the property that forces grinding rather than free choice.
        honest = NICBSParticipant(password_task, HonestBehavior(), n_samples=8)
        cheat = NICBSParticipant(
            password_task, SemiHonestCheater(0.5), n_samples=8
        )
        s1 = honest.compute_and_submit()
        s2 = cheat.compute_and_submit()
        assert s1.root != s2.root
        assert [p.index for p in s1.proofs] != [p.index for p in s2.proofs]
