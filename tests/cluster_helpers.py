"""Registered cluster job functions shared by tests.

The typed job codec only ships *registered* callables across the
cluster wire (jobs are data, never code), so test jobs live here —
a real importable module — instead of inline in the test files.
Spawn-local worker daemons reach these registrations through
``worker_preload=("cluster_helpers",)`` (the tests directory rides the
coordinator's ``PYTHONPATH`` propagation), exactly the hook a
deployment uses for its own job modules.
"""

import os
import time

from repro.service.jobcodec import register_callable


def _square(x: int) -> int:
    return x * x


def _sleepy_square(args: tuple) -> int:
    delay, x = args
    time.sleep(delay)
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom {x}")


def _boom_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("boom 3")
    return x * x


def _worker_pid(_item) -> int:
    return os.getpid()


def _unencodable_result(_item) -> object:
    return object()  # no jobcodec registration: the result cannot encode


def _megabyte(x: int) -> bytes:
    return bytes([x % 256]) * (1 << 20)


register_callable("tests.square", _square)
register_callable("tests.sleepy_square", _sleepy_square)
register_callable("tests.boom", _boom)
register_callable("tests.boom_on_three", _boom_on_three)
register_callable("tests.worker_pid", _worker_pid)
register_callable("tests.unencodable_result", _unencodable_result)
register_callable("tests.megabyte", _megabyte)
