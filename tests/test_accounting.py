"""Tests for the cost ledger."""

import pytest

from repro.accounting import CostLedger
from repro.exceptions import LedgerError


class TestCharging:
    def test_evaluation_accumulates(self):
        ledger = CostLedger()
        ledger.charge_evaluation(10.0)
        ledger.charge_evaluation(5.0)
        assert ledger.evaluations == 2
        assert ledger.evaluation_cost == 15.0

    def test_negative_charges_rejected(self):
        ledger = CostLedger()
        with pytest.raises(LedgerError):
            ledger.charge_evaluation(-1.0)
        with pytest.raises(LedgerError):
            ledger.record_send(-5)
        with pytest.raises(LedgerError):
            ledger.bump("x", -1)

    def test_traffic_counters(self):
        ledger = CostLedger()
        ledger.record_send(100)
        ledger.record_send(50)
        ledger.record_receive(30)
        assert ledger.bytes_sent == 150
        assert ledger.messages_sent == 2
        assert ledger.bytes_received == 30
        assert ledger.messages_received == 1

    def test_storage_keeps_peak(self):
        ledger = CostLedger()
        ledger.record_storage(100)
        ledger.record_storage(50)
        ledger.record_storage(200)
        assert ledger.storage_digests == 200

    def test_free_form_counters(self):
        ledger = CostLedger()
        ledger.bump("attempts")
        ledger.bump("attempts", 4)
        assert ledger.counters["attempts"] == 5

    def test_total_compute_cost(self):
        ledger = CostLedger()
        ledger.charge_evaluation(10.0)
        ledger.charge_verification(3.0)
        ledger.charge_hash(2.0)
        ledger.charge_screening(0.5)
        assert ledger.total_compute_cost == 15.5


class TestSnapshotDiff:
    def test_snapshot_is_independent(self):
        ledger = CostLedger()
        ledger.charge_evaluation(1.0)
        snap = ledger.snapshot()
        ledger.charge_evaluation(1.0)
        assert snap.evaluations == 1
        assert ledger.evaluations == 2

    def test_diff_isolates_phase(self):
        ledger = CostLedger()
        ledger.charge_evaluation(10.0)
        ledger.bump("phase1")
        snap = ledger.snapshot()
        ledger.charge_evaluation(7.0)
        ledger.record_send(64)
        ledger.bump("phase2")
        delta = ledger.diff(snap)
        assert delta.evaluation_cost == 7.0
        assert delta.evaluations == 1
        assert delta.bytes_sent == 64
        assert delta.counters == {"phase2": 1}

    def test_merge_accumulates(self):
        a = CostLedger()
        b = CostLedger()
        a.charge_evaluation(5.0)
        a.bump("x", 2)
        b.charge_evaluation(3.0)
        b.bump("x", 1)
        b.bump("y", 7)
        a.merge(b)
        assert a.evaluation_cost == 8.0
        assert a.evaluations == 2
        assert a.counters == {"x": 3, "y": 7}

    def test_merge_storage_takes_max(self):
        a = CostLedger()
        b = CostLedger()
        a.record_storage(10)
        b.record_storage(25)
        a.merge(b)
        assert a.storage_digests == 25

    def test_as_dict_includes_counters(self):
        ledger = CostLedger()
        ledger.bump("regrind_attempts", 3)
        d = ledger.as_dict()
        assert d["regrind_attempts"] == 3
        assert "evaluation_cost" in d
