"""Tests for screeners (the paper's S(x, f(x)) programs)."""

import struct

import pytest

from repro.exceptions import TaskError
from repro.tasks import MatchScreener, ThresholdScreener, TopKScreener
from repro.tasks.screener import ReportAllScreener


def level(v: int) -> bytes:
    return struct.pack(">I", v)


class TestMatchScreener:
    def test_reports_exact_match(self):
        s = MatchScreener(target=b"\x01\x02")
        assert s.screen(7, b"\x01\x02") == "match:7"

    def test_ignores_non_match(self):
        s = MatchScreener(target=b"\x01\x02")
        assert s.screen(7, b"\x01\x03") is None

    def test_empty_target_rejected(self):
        with pytest.raises(TaskError):
            MatchScreener(target=b"")


class TestThresholdScreener:
    def test_below_direction(self):
        s = ThresholdScreener(threshold=10, direction="below")
        assert s.screen(1, level(5)) == "candidate:1:5"
        assert s.screen(2, level(10)) == "candidate:2:10"
        assert s.screen(3, level(11)) is None

    def test_above_direction(self):
        s = ThresholdScreener(threshold=100, direction="above")
        assert s.screen(1, level(150)) is not None
        assert s.screen(2, level(99)) is None

    def test_direction_validated(self):
        with pytest.raises(TaskError):
            ThresholdScreener(threshold=5, direction="sideways")

    def test_result_width_validated(self):
        s = ThresholdScreener(threshold=5)
        with pytest.raises(TaskError):
            s.screen(1, b"\x00")


class TestTopKScreener:
    def test_keeps_k_best(self):
        s = TopKScreener(k=2)
        s.screen("a", level(50))
        s.screen("b", level(30))
        s.screen("c", level(40))
        s.screen("d", level(10))
        assert s.top() == [("d", 10), ("b", 30)]

    def test_reports_on_entry_only(self):
        s = TopKScreener(k=1)
        assert s.screen("a", level(50)) is not None
        assert s.screen("b", level(60)) is None  # not better
        assert s.screen("c", level(40)) is not None  # new best

    def test_reset_clears_state(self):
        s = TopKScreener(k=1)
        s.screen("a", level(5))
        s.reset()
        assert s.top() == []
        assert s.screen("b", level(100)) is not None

    def test_k_validated(self):
        with pytest.raises(TaskError):
            TopKScreener(k=0)


class TestReportAllScreener:
    def test_reports_everything(self):
        s = ReportAllScreener()
        assert s.screen(3, b"\xab") == "result:3:ab"
