"""Tests for Eq. (2), Eq. (3) and the Fig. 2 reproduction values."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    cheat_success_probability,
    detection_probability,
    fig2_series,
    required_sample_size,
)
from repro.analysis.probability import (
    escape_probability_with_distinct_samples,
)


class TestEquationTwo:
    def test_pure_sampling_case(self):
        # q = 0: escape probability is r^m (the §1 "one out of 2^m"
        # example for r = 0.5).
        assert cheat_success_probability(0.5, 0.0, 50) == pytest.approx(0.5**50)

    def test_paper_intro_example(self):
        # "If the dishonest participant computes only one half of the
        # inputs, the probability ... is one out of 2^m".
        assert cheat_success_probability(0.5, 0.0, 1) == 0.5

    def test_guessing_inflates_escape(self):
        assert cheat_success_probability(0.5, 0.5, 10) == pytest.approx(0.75**10)

    def test_honest_never_caught(self):
        assert cheat_success_probability(1.0, 0.0, 100) == 1.0

    def test_perfect_guessing_never_caught(self):
        assert cheat_success_probability(0.0, 1.0, 100) == 1.0

    def test_zero_samples_no_detection(self):
        assert cheat_success_probability(0.3, 0.0, 0) == 1.0

    def test_detection_complement(self):
        assert detection_probability(0.5, 0.0, 4) == pytest.approx(1 - 0.5**4)

    def test_validation(self):
        with pytest.raises(ValueError):
            cheat_success_probability(-0.1, 0.0, 1)
        with pytest.raises(ValueError):
            cheat_success_probability(0.5, 1.1, 1)
        with pytest.raises(ValueError):
            cheat_success_probability(0.5, 0.5, -1)

    @given(
        st.floats(min_value=0.0, max_value=0.99),
        st.floats(min_value=0.0, max_value=0.99),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotonicity(self, r, q, m):
        p = cheat_success_probability(r, q, m)
        assert 0.0 <= p <= 1.0
        # More samples never helps the cheater.
        assert cheat_success_probability(r, q, m + 1) <= p + 1e-12


class TestEquationThree:
    def test_paper_value_q_half(self):
        # §3.2: "we need at least 33 samples" for r=0.5, q=0.5, ε=1e-4.
        assert required_sample_size(1e-4, 0.5, 0.5) == 33

    def test_paper_value_q_zero(self):
        # §3.2: "when q ≈ 0 ... we only need 14 samples".
        assert required_sample_size(1e-4, 0.5, 0.0) == 14

    def test_result_actually_achieves_epsilon(self):
        tol = 1e-4 * (1 + 1e-9)  # Eq. 3 is inclusive at the boundary
        for r in (0.1, 0.5, 0.9):
            for q in (0.0, 0.3, 0.5):
                m = required_sample_size(1e-4, r, q)
                assert cheat_success_probability(r, q, m) <= tol
                if m > 1:
                    assert cheat_success_probability(r, q, m - 1) > 1e-4 * (
                        1 - 1e-9
                    )

    def test_r_zero_q_zero_single_sample(self):
        assert required_sample_size(1e-4, 0.0, 0.0) == 1

    def test_diverges_at_base_one(self):
        with pytest.raises(ValueError):
            required_sample_size(1e-4, 1.0, 0.0)
        with pytest.raises(ValueError):
            required_sample_size(1e-4, 0.5, 1.0)

    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            required_sample_size(0.0, 0.5, 0.0)
        with pytest.raises(ValueError):
            required_sample_size(1.0, 0.5, 0.0)

    @given(
        st.floats(min_value=0.01, max_value=0.95),
        st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=100, deadline=None)
    def test_never_underestimates(self, r, q):
        m = required_sample_size(1e-4, r, q)
        assert cheat_success_probability(r, q, m) <= 1e-4 * (1 + 1e-9)


class TestFig2Series:
    def test_shape(self):
        points = fig2_series()
        assert len(points) == 18  # 2 q-curves × 9 r-points

    def test_monotone_in_r(self):
        points = fig2_series()
        for q in (0.0, 0.5):
            curve = [p.required_m for p in points if p.q == q]
            assert curve == sorted(curve)

    def test_q_half_needs_more_samples(self):
        points = fig2_series()
        by_r: dict[float, dict[float, int]] = {}
        for p in points:
            by_r.setdefault(p.r, {})[p.q] = p.required_m
        for r, curves in by_r.items():
            assert curves[0.5] > curves[0.0], r

    def test_r_09_matches_paper_magnitude(self):
        # Fig. 2's y-axis tops out near 180 at r = 0.9 for q = 0.5.
        points = {(p.r, p.q): p.required_m for p in fig2_series()}
        assert 150 <= points[(0.9, 0.5)] <= 200
        assert 80 <= points[(0.9, 0.0)] <= 95


class TestDistinctSampleRefinement:
    def test_stronger_than_with_replacement(self):
        # Distinct samples are at least as good for the supervisor.
        with_repl = cheat_success_probability(0.5, 0.0, 10)
        without = escape_probability_with_distinct_samples(0.5, 10, 100)
        assert without <= with_repl

    def test_converges_for_large_n(self):
        with_repl = cheat_success_probability(0.5, 0.0, 5)
        without = escape_probability_with_distinct_samples(0.5, 5, 100_000)
        assert without == pytest.approx(with_repl, rel=1e-3)

    def test_impossible_when_m_exceeds_computed(self):
        assert escape_probability_with_distinct_samples(0.1, 50, 100) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            escape_probability_with_distinct_samples(0.5, 10, 5)
