"""Tests for the pluggable execution engine (repro.engine).

The load-bearing property is *backend parity*: for a fixed master
seed, the serial, thread and process backends must produce identical
:class:`~repro.grid.report.DetectionReport`'s — same verdicts, same
ledgers, same ordering — for every scheme.  Everything the engine
ships to workers must also survive a pickle round trip.
"""

import pickle

import pytest

from repro.analysis.montecarlo import estimate_escape_rate
from repro.analysis.sweep import sweep
from repro.baselines import (
    DoubleCheckScheme,
    HardenedProbeScheme,
    NaiveSamplingScheme,
    RingerScheme,
)
from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme, NICBSScheme
from repro.engine import (
    ProcessPoolExecutor,
    SchemeBatch,
    SchemeJob,
    SerialExecutor,
    ThreadPoolExecutor,
    derive_seed,
    get_executor,
    run_scheme_jobs,
    split_batches,
)
from repro.exceptions import EngineError
from repro.grid.simulation import run_population
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment

ALL_SCHEMES = [
    CBSScheme(n_samples=8),
    CBSScheme(n_samples=8, batch_proofs=True),
    CBSScheme(n_samples=8, subtree_height=2),
    NICBSScheme(n_samples=8),
    NaiveSamplingScheme(8),
    DoubleCheckScheme(replication=2),
    RingerScheme(n_ringers=3),
    HardenedProbeScheme(n_probes=4),
]


def report_fingerprint(report) -> bytes:
    """Canonical byte encoding of everything a report asserts.

    Uses ``repr`` rather than ``pickle`` so the encoding depends only
    on *values*: pickle memoizes equal strings by object identity, and
    results that crossed a process boundary share fewer string objects
    than results built in-process.  ``repr`` of floats is exact
    (shortest round-trip), so this still catches any bit-level drift.
    """
    return repr(
        {
            "scheme": report.scheme,
            "participants": [
                (
                    p.participant,
                    p.behavior,
                    p.honesty_ratio,
                    p.accepted,
                    p.reason.value,
                    sorted(p.participant_ledger.as_dict().items()),
                    sorted(p.supervisor_ledger_delta.as_dict().items()),
                )
                for p in report.participants
            ],
            "supervisor": sorted(report.supervisor_ledger.as_dict().items()),
        }
    ).encode("utf-8")


def population(scheme, engine, workers=None, batch_size=None):
    return run_population(
        RangeDomain(0, 240),
        PasswordSearch(),
        scheme,
        behaviors=[HonestBehavior(), SemiHonestCheater(0.6)],
        n_participants=6,
        seed=3,
        engine=engine,
        workers=workers,
        batch_size=batch_size,
    )


# ----------------------------------------------------------------------
# Executor protocol
# ----------------------------------------------------------------------


class TestExecutors:
    def test_registry_names(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("threads"), ThreadPoolExecutor)
        assert isinstance(get_executor("processes"), ProcessPoolExecutor)

    def test_instance_passthrough(self):
        ex = SerialExecutor()
        assert get_executor(ex) is ex

    def test_unknown_engine_rejected(self):
        with pytest.raises(EngineError):
            get_executor("gpu")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(EngineError):
            ThreadPoolExecutor(workers=0)

    def test_map_preserves_order(self):
        with ThreadPoolExecutor(workers=4) as ex:
            assert ex.map(str, range(100)) == [str(i) for i in range(100)]

    def test_map_after_close_rejected(self):
        ex = ThreadPoolExecutor(workers=1)
        ex.close()
        with pytest.raises(EngineError):
            ex.map(str, [1])

    def test_empty_map(self):
        with ThreadPoolExecutor(workers=1) as ex:
            assert ex.map(str, []) == []


def _worker_pid(_item) -> int:
    import os

    return os.getpid()


class TestPrewarm:
    """prewarm() moves pool startup off the first map's critical path."""

    def test_serial_prewarm_is_a_noop(self):
        SerialExecutor().prewarm()  # no pool; must not raise

    def test_threads_prewarm_spawns_and_map_reuses_the_pool(self):
        with ThreadPoolExecutor(workers=2) as ex:
            assert ex._pool is None  # lazy until warmed
            ex.prewarm()
            pool = ex._pool
            assert pool is not None
            ex.prewarm()  # idempotent
            assert ex._pool is pool
            assert ex.map(str, [1, 2, 3]) == ["1", "2", "3"]
            assert ex._pool is pool

    def test_processes_prewarm_spawns_workers_up_front(self):
        with ProcessPoolExecutor(workers=2) as ex:
            ex.prewarm()
            pool = ex._pool
            assert len(pool._processes) == 2  # all workers forked now
            pids = set(ex.map(_worker_pid, range(16)))
            assert pids <= set(pool._processes)  # mapped on the warm pool
            assert ex._pool is pool

    def test_prewarm_after_close_rejected(self):
        ex = ThreadPoolExecutor(workers=1)
        ex.close()
        with pytest.raises(EngineError):
            ex.prewarm()


# ----------------------------------------------------------------------
# Seeds and batching
# ----------------------------------------------------------------------


class TestSeedsAndBatches:
    def test_derive_seed_matches_historical_rule(self):
        assert derive_seed(5, 3) == 5 * 1_000_003 + 3

    def test_derive_seed_injective_over_population(self):
        seen = {derive_seed(s, i) for s in range(4) for i in range(500)}
        assert len(seen) == 4 * 500

    def test_derive_seed_rejects_negative_index(self):
        with pytest.raises(ValueError):
            derive_seed(1, -1)

    def test_split_batches_partitions_in_order(self):
        jobs = list(range(10))
        chunks = split_batches(jobs, 4)
        assert chunks == [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9)]

    def test_split_batches_rejects_bad_size(self):
        with pytest.raises(EngineError):
            split_batches([1], 0)

    def test_run_batch_default_matches_run(self):
        scheme = CBSScheme(n_samples=6)
        task = TaskAssignment("t", RangeDomain(0, 64), PasswordSearch())
        jobs = [
            SchemeJob(task, SemiHonestCheater(0.5), seed=derive_seed(2, i))
            for i in range(4)
        ]
        batched = scheme.run_batch(jobs)
        singles = [
            scheme.run(j.assignment, j.behavior, seed=j.seed) for j in jobs
        ]
        assert [pickle.dumps(r) for r in batched] == [
            pickle.dumps(r) for r in singles
        ]

    def test_batch_size_never_changes_results(self):
        scheme = CBSScheme(n_samples=6)
        reports = [
            report_fingerprint(
                population(scheme, engine="threads", workers=2, batch_size=bs)
            )
            for bs in (1, 2, 5)
        ]
        assert len(set(reports)) == 1


# ----------------------------------------------------------------------
# Backend parity (the acceptance property)
# ----------------------------------------------------------------------


class TestBackendParity:
    @pytest.mark.parametrize(
        "scheme", ALL_SCHEMES, ids=lambda s: s.name
    )
    def test_thread_backend_identical(self, scheme):
        serial = report_fingerprint(population(scheme, engine="serial"))
        threads = report_fingerprint(
            population(scheme, engine="threads", workers=3)
        )
        assert serial == threads

    def test_process_backend_identical_for_every_scheme(self):
        # One warm pool for all schemes keeps this test fast.
        with ProcessPoolExecutor(workers=2) as pool:
            for scheme in ALL_SCHEMES:
                serial = report_fingerprint(population(scheme, engine="serial"))
                procs = report_fingerprint(population(scheme, engine=pool))
                assert serial == procs, scheme.name

    def test_montecarlo_parity(self):
        task = TaskAssignment("mc", RangeDomain(0, 100), PasswordSearch())
        estimates = [
            estimate_escape_rate(
                CBSScheme(n_samples=2),
                task,
                lambda trial: SemiHonestCheater(0.7),
                n_trials=60,
                seed0=11,
                engine=engine,
                workers=2,
            )
            for engine in ("serial", "threads", "processes")
        ]
        assert len({e.successes for e in estimates}) == 1
        assert len({(e.low, e.high) for e in estimates}) == 1

    def test_sweep_parity_and_ordering(self):
        grid = {"a": [1, 2, 3], "b": [10, 20]}
        rows_serial = sweep(grid, _sweep_row)
        rows_threads = sweep(grid, _sweep_row, engine="threads", workers=3)
        rows_procs = sweep(grid, _sweep_row, engine="processes", workers=2)
        assert rows_serial == rows_threads == rows_procs
        # None rows dropped, order preserved.
        assert [r["a"] for r in rows_serial] == [1, 1, 3, 3]


def _sweep_row(a, b):
    if a == 2:
        return None
    return {"product": a * b}


# ----------------------------------------------------------------------
# Pickling (what the process backend depends on)
# ----------------------------------------------------------------------


class TestPickling:
    def test_scheme_run_result_round_trip(self):
        scheme = CBSScheme(n_samples=8)
        task = TaskAssignment("p", RangeDomain(0, 128), PasswordSearch())
        result = scheme.run(task, SemiHonestCheater(0.5), seed=9)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.outcome.accepted == result.outcome.accepted
        assert clone.outcome.reason == result.outcome.reason
        assert (
            clone.participant_ledger.as_dict()
            == result.participant_ledger.as_dict()
        )
        assert (
            clone.supervisor_ledger.as_dict()
            == result.supervisor_ledger.as_dict()
        )
        assert clone.work.leaf_payloads == result.work.leaf_payloads
        assert clone.work.honest_indices == result.work.honest_indices
        assert pickle.dumps(clone) == pickle.dumps(result)

    def test_scheme_batch_round_trip(self):
        batch = SchemeBatch(
            scheme=NICBSScheme(n_samples=4),
            jobs=(
                SchemeJob(
                    TaskAssignment("b", RangeDomain(0, 32), PasswordSearch()),
                    HonestBehavior(),
                    seed=derive_seed(1, 0),
                ),
            ),
        )
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.scheme.name == batch.scheme.name
        assert clone.jobs[0].seed == batch.jobs[0].seed
        results = clone.scheme.run_batch(clone.jobs)
        assert results[0].outcome.accepted

    def test_run_scheme_jobs_empty(self):
        assert run_scheme_jobs(CBSScheme(4), [], engine="threads") == []

    def test_run_scheme_jobs_rejects_zero_batch_size(self):
        task = TaskAssignment("z", RangeDomain(0, 16), PasswordSearch())
        jobs = [SchemeJob(task, HonestBehavior(), seed=0)]
        with pytest.raises(EngineError):
            run_scheme_jobs(CBSScheme(2), jobs, batch_size=0)

    def test_caller_pool_left_open_after_dispatch(self):
        task = TaskAssignment("w", RangeDomain(0, 16), PasswordSearch())
        jobs = [SchemeJob(task, HonestBehavior(), seed=0)]
        with ThreadPoolExecutor(workers=2) as pool:
            run_scheme_jobs(CBSScheme(2), jobs, engine=pool)
            # The warm pool must survive the call for reuse.
            assert pool.map(str, [1, 2]) == ["1", "2"]
