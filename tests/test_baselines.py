"""Tests for the baseline schemes (double-check, naive sampling,
ringers, hardened probes) and the paper's positioning claims."""

import pytest

from repro.baselines import (
    DoubleCheckScheme,
    HardenedProbeScheme,
    NaiveSamplingScheme,
    RingerScheme,
)
from repro.cheating import (
    BernoulliGuess,
    HonestBehavior,
    SemiHonestCheater,
)
from repro.core import CBSScheme
from repro.core.scheme import RejectReason
from repro.exceptions import SchemeConfigurationError
from repro.tasks import (
    PasswordSearch,
    RangeDomain,
    SignalSearch,
    TaskAssignment,
)


@pytest.fixture
def pw_task():
    return TaskAssignment("t", RangeDomain(0, 200), PasswordSearch())


@pytest.fixture
def signal_task():
    return TaskAssignment("t", RangeDomain(0, 200), SignalSearch())


class TestDoubleCheck:
    def test_honest_accepted(self, pw_task):
        result = DoubleCheckScheme(2).run(pw_task, HonestBehavior(), seed=0)
        assert result.outcome.accepted

    def test_cheater_caught(self, pw_task):
        result = DoubleCheckScheme(2).run(
            pw_task, SemiHonestCheater(0.9), seed=0
        )
        assert not result.outcome.accepted
        assert result.outcome.reason == RejectReason.REPLICA_DISAGREEMENT

    def test_wasted_cycles(self, pw_task):
        # The §1 complaint: k-replication does the work k times.
        result = DoubleCheckScheme(3).run(pw_task, HonestBehavior(), seed=0)
        assert result.participant_ledger.evaluations == 200
        assert result.other_ledger.evaluations == 2 * 200

    def test_on_communication(self, pw_task):
        # Each replica ships all n results.
        result = DoubleCheckScheme(2).run(pw_task, HonestBehavior(), seed=0)
        assert result.supervisor_ledger.bytes_received > 200 * 16 * 2

    def test_majority_vote_with_three_replicas(self, pw_task):
        # Subject honest, one replica cheats: majority still honest,
        # subject accepted.
        scheme = DoubleCheckScheme(
            3, replica_behaviors=[SemiHonestCheater(0.5), HonestBehavior()]
        )
        result = scheme.run(pw_task, HonestBehavior(), seed=1)
        assert result.outcome.accepted

    def test_two_replicas_disagreement_rejects_even_honest(self, pw_task):
        # k=2 with a cheating replica: disagreement, no majority — the
        # well-known weakness of plain double-checking.
        scheme = DoubleCheckScheme(2, replica_behaviors=[SemiHonestCheater(0.5)])
        result = scheme.run(pw_task, HonestBehavior(), seed=1)
        assert not result.outcome.accepted
        assert result.false_alarm

    def test_validation(self):
        with pytest.raises(SchemeConfigurationError):
            DoubleCheckScheme(1)


class TestNaiveSampling:
    def test_honest_accepted(self, pw_task):
        result = NaiveSamplingScheme(20).run(pw_task, HonestBehavior(), seed=0)
        assert result.outcome.accepted

    def test_cheater_caught(self, pw_task):
        result = NaiveSamplingScheme(30).run(
            pw_task, SemiHonestCheater(0.5), seed=0
        )
        assert not result.outcome.accepted
        assert result.outcome.reason == RejectReason.WRONG_RESULT

    def test_communication_linear_in_n(self):
        fn = PasswordSearch()
        sizes = {}
        for n in (100, 400):
            task = TaskAssignment("t", RangeDomain(0, n), fn)
            result = NaiveSamplingScheme(10).run(task, HonestBehavior(), seed=0)
            sizes[n] = result.participant_ledger.bytes_sent
        # 4x domain ⇒ ~4x traffic (the O(n) cost CBS removes).
        assert 3.5 < sizes[400] / sizes[100] < 4.5

    def test_cbs_beats_naive_on_bytes_at_scale(self):
        # O(m log n) vs O(n): the win appears once n ≫ m log n.  At
        # n = 4096, m = 20 CBS ships ~8 KB vs ~70 KB for naive; at
        # small n the naive scheme can actually be cheaper (E3 shows
        # the crossover).
        task = TaskAssignment("t", RangeDomain(0, 4096), PasswordSearch())
        naive = NaiveSamplingScheme(20).run(task, HonestBehavior(), seed=0)
        cbs = CBSScheme(20, include_reports=False).run(
            task, HonestBehavior(), seed=0
        )
        assert (
            cbs.participant_ledger.bytes_sent
            < naive.participant_ledger.bytes_sent / 4
        )

    def test_lucky_guess_escapes(self, pw_task):
        result = NaiveSamplingScheme(10).run(
            pw_task, SemiHonestCheater(0.5, BernoulliGuess(1.0)), seed=0
        )
        assert result.outcome.accepted


class TestRinger:
    def test_honest_accepted(self, pw_task):
        result = RingerScheme(8).run(pw_task, HonestBehavior(), seed=0)
        assert result.outcome.accepted

    def test_cheater_caught(self, pw_task):
        result = RingerScheme(10).run(pw_task, SemiHonestCheater(0.5), seed=0)
        assert not result.outcome.accepted
        assert result.outcome.reason == RejectReason.MISSING_RINGER

    def test_requires_one_way_function(self, signal_task):
        # §1.1: "the ringer scheme is thus restricted to computations
        # that have such a one-way property".
        with pytest.raises(SchemeConfigurationError, match="one-way"):
            RingerScheme(5).run(signal_task, HonestBehavior(), seed=0)

    def test_supervisor_pays_d_evaluations_upfront(self, pw_task):
        result = RingerScheme(12).run(pw_task, HonestBehavior(), seed=0)
        assert result.supervisor_ledger.evaluations == 12

    def test_communication_constant_in_n(self):
        fn = PasswordSearch()
        sizes = {}
        for n in (100, 1600):
            task = TaskAssignment("t", RangeDomain(0, n), fn)
            result = RingerScheme(5).run(task, HonestBehavior(), seed=0)
            sizes[n] = (
                result.participant_ledger.bytes_sent
                + result.supervisor_ledger.bytes_sent
            )
        # Ringer traffic is O(d), independent of n (indices in reports
        # grow by a digit or two at most).
        assert sizes[1600] < sizes[100] * 1.5

    def test_escape_rate_roughly_r_to_d(self, pw_task):
        # Pr(escape) ≈ r^d for r = 0.9, d = 3 ⇒ ~0.73.
        escapes = sum(
            RingerScheme(3).run(
                pw_task, SemiHonestCheater(0.9), seed=seed
            ).outcome.accepted
            for seed in range(100)
        )
        assert 55 < escapes < 90

    def test_validation(self, pw_task):
        with pytest.raises(SchemeConfigurationError):
            RingerScheme(0)
        small = TaskAssignment("t", RangeDomain(0, 3), PasswordSearch())
        with pytest.raises(SchemeConfigurationError):
            RingerScheme(5).run(small, HonestBehavior(), seed=0)


class TestHardenedProbes:
    def test_honest_accepted(self, signal_task):
        result = HardenedProbeScheme(10).run(
            signal_task, HonestBehavior(), seed=0
        )
        assert result.outcome.accepted

    def test_works_on_non_one_way_functions(self, signal_task):
        # The Szajda et al. extension target: optimization/Monte-Carlo
        # style guessable outputs where ringers are unusable.
        result = HardenedProbeScheme(40).run(
            signal_task, SemiHonestCheater(0.2), seed=0
        )
        assert not result.outcome.accepted

    def test_guessable_outputs_leak_escapes(self, signal_task):
        # With q = 0.5 boolean outputs, d probes leak ~(r+(1-r)q)^d.
        scheme = HardenedProbeScheme(2)
        escapes = sum(
            scheme.run(
                signal_task,
                SemiHonestCheater(0.5, BernoulliGuess(0.5)),
                seed=seed,
            ).outcome.accepted
            for seed in range(100)
        )
        # (0.75)^2 ≈ 0.56 expected escape rate.
        assert 35 < escapes < 75

    def test_communication_linear_in_n(self):
        fn = SignalSearch()
        sizes = {}
        for n in (100, 400):
            task = TaskAssignment("t", RangeDomain(0, n), fn)
            result = HardenedProbeScheme(5).run(task, HonestBehavior(), seed=0)
            sizes[n] = result.participant_ledger.bytes_sent
        assert sizes[400] > 3 * sizes[100]

    def test_validation(self):
        with pytest.raises(SchemeConfigurationError):
            HardenedProbeScheme(0)
