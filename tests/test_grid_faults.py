"""Fault-injection tests: volunteer churn composed with verification."""

import pytest

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme, NICBSScheme
from repro.core.scheme import RejectReason
from repro.exceptions import SchemeConfigurationError
from repro.grid.faults import DroppedOut, FlakyParticipant, RetryingScheme
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment


@pytest.fixture
def task():
    return TaskAssignment("flaky", RangeDomain(0, 200), PasswordSearch())


class TestFlakyParticipant:
    def test_zero_rate_never_drops(self, task):
        flaky = FlakyParticipant(HonestBehavior(), dropout_rate=0.0)
        scheme = CBSScheme(n_samples=10)
        for seed in range(5):
            assert scheme.run(task, flaky, seed=seed).outcome.accepted

    def test_dropout_carries_burned_cost(self, task):
        flaky = FlakyParticipant(HonestBehavior(), dropout_rate=0.999)
        scheme = CBSScheme(n_samples=10)
        with pytest.raises(DroppedOut) as exc_info:
            scheme.run(task, flaky, seed=0)
        dropped = exc_info.value
        assert dropped.evaluations == 200
        assert dropped.spent_cost == 200 * task.function.cost

    def test_cheating_flaky_burns_partial_cost(self, task):
        flaky = FlakyParticipant(SemiHonestCheater(0.5), dropout_rate=0.999)
        with pytest.raises(DroppedOut) as exc_info:
            CBSScheme(n_samples=10).run(task, flaky, seed=0)
        assert exc_info.value.evaluations == 100

    def test_rate_validated(self):
        with pytest.raises(SchemeConfigurationError):
            FlakyParticipant(HonestBehavior(), dropout_rate=1.0)
        with pytest.raises(SchemeConfigurationError):
            FlakyParticipant(HonestBehavior(), dropout_rate=-0.1)

    def test_name_is_descriptive(self):
        flaky = FlakyParticipant(HonestBehavior(), dropout_rate=0.25)
        assert "honest" in flaky.name and "0.25" in flaky.name


class TestRetryingScheme:
    def test_transparent_for_reliable_participants(self, task):
        plain = CBSScheme(n_samples=10)
        retrying = RetryingScheme(plain, max_retries=3)
        a = plain.run(task, HonestBehavior(), seed=0 * 7919 + 0)
        b = retrying.run(task, HonestBehavior(), seed=0)
        assert b.outcome.accepted == a.outcome.accepted
        assert b.other_ledger.counters["attempts"] == 1
        assert b.other_ledger.evaluations == 0

    def test_retries_until_success(self, task):
        flaky = FlakyParticipant(HonestBehavior(), dropout_rate=0.6)
        retrying = RetryingScheme(CBSScheme(n_samples=10), max_retries=20)
        successes = 0
        for seed in range(10):
            result = retrying.run(task, flaky, seed=seed)
            if result.outcome.accepted:
                successes += 1
        assert successes == 10  # 20 retries at p=0.6 practically always land

    def test_wasted_cycles_accounted(self, task):
        flaky = FlakyParticipant(HonestBehavior(), dropout_rate=0.6)
        retrying = RetryingScheme(CBSScheme(n_samples=10), max_retries=20)
        found_waste = False
        for seed in range(10):
            result = retrying.run(task, flaky, seed=seed)
            dropouts = result.other_ledger.counters.get("dropouts", 0)
            if dropouts:
                found_waste = True
                # Each dropped honest attempt burned a full sweep.
                assert result.other_ledger.evaluations == dropouts * 200
        assert found_waste

    def test_all_attempts_dropped_rejected(self, task):
        flaky = FlakyParticipant(HonestBehavior(), dropout_rate=0.999)
        retrying = RetryingScheme(CBSScheme(n_samples=10), max_retries=2)
        result = retrying.run(task, flaky, seed=0)
        assert not result.outcome.accepted
        assert result.outcome.reason == RejectReason.PROTOCOL_VIOLATION
        assert result.work is None
        assert result.other_ledger.counters["dropouts"] == 3

    def test_detection_unaffected_by_churn(self, task):
        # A flaky *cheater* that does return is still caught.
        flaky_cheater = FlakyParticipant(
            SemiHonestCheater(0.5), dropout_rate=0.5
        )
        retrying = RetryingScheme(CBSScheme(n_samples=25), max_retries=30)
        for seed in range(8):
            result = retrying.run(task, flaky_cheater, seed=seed)
            assert not result.outcome.accepted
            # ...and rejected for cheating, not for vanishing.
            assert result.outcome.reason == RejectReason.WRONG_RESULT

    def test_soundness_preserved_under_churn(self, task):
        flaky = FlakyParticipant(HonestBehavior(), dropout_rate=0.4)
        retrying = RetryingScheme(NICBSScheme(n_samples=12), max_retries=30)
        for seed in range(8):
            result = retrying.run(task, flaky, seed=seed)
            assert result.outcome.accepted

    def test_validation(self, task):
        with pytest.raises(SchemeConfigurationError):
            RetryingScheme(CBSScheme(4), max_retries=-1)
