"""Tests for participant behaviours (honest / semi-honest / malicious)."""

import pytest

from repro.accounting import CostLedger
from repro.cheating import (
    BernoulliGuess,
    HonestBehavior,
    MaliciousBehavior,
    SemiHonestCheater,
)
from repro.exceptions import TaskError
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment
from repro.tasks.function import MeteredFunction


@pytest.fixture
def assignment():
    return TaskAssignment("t", RangeDomain(0, 100), PasswordSearch())


def metered(assignment):
    ledger = CostLedger()
    fn = MeteredFunction(assignment.function, ledger)
    return fn.evaluate, ledger


class TestHonestBehavior:
    def test_all_payloads_correct(self, assignment):
        evaluate, ledger = metered(assignment)
        work = HonestBehavior().produce(assignment, evaluate)
        assert work.honesty_ratio == 1.0
        assert len(work.leaf_payloads) == 100
        for i in range(100):
            assert work.leaf_payloads[i] == assignment.function.evaluate(i)

    def test_charges_full_cost(self, assignment):
        evaluate, ledger = metered(assignment)
        HonestBehavior().produce(assignment, evaluate)
        assert ledger.evaluations == 100


class TestSemiHonestCheater:
    def test_honesty_ratio_realized(self, assignment):
        for r in (0.1, 0.25, 0.5, 0.9):
            evaluate, ledger = metered(assignment)
            work = SemiHonestCheater(r).produce(assignment, evaluate)
            assert work.honesty_ratio == pytest.approx(r)
            assert ledger.evaluations == round(r * 100)

    def test_honest_indices_hold_true_results(self, assignment):
        evaluate, _ = metered(assignment)
        work = SemiHonestCheater(0.4).produce(assignment, evaluate)
        for i in work.honest_indices:
            assert work.leaf_payloads[i] == assignment.function.evaluate(i)

    def test_skipped_indices_hold_fabrications(self, assignment):
        evaluate, _ = metered(assignment)
        work = SemiHonestCheater(0.4).produce(assignment, evaluate)
        skipped = set(range(100)) - work.honest_indices
        assert skipped
        for i in skipped:
            assert work.leaf_payloads[i] != assignment.function.evaluate(i)

    def test_prefix_selection(self, assignment):
        evaluate, _ = metered(assignment)
        cheater = SemiHonestCheater(0.3, selection="prefix")
        work = cheater.produce(assignment, evaluate)
        assert work.honest_indices == set(range(30))

    def test_spread_selection_not_prefix(self, assignment):
        evaluate, _ = metered(assignment)
        work = SemiHonestCheater(0.3).produce(assignment, evaluate)
        assert work.honest_indices != set(range(30))

    def test_deterministic_given_salt(self, assignment):
        e1, _ = metered(assignment)
        e2, _ = metered(assignment)
        w1 = SemiHonestCheater(0.5).produce(assignment, e1, salt=b"s")
        w2 = SemiHonestCheater(0.5).produce(assignment, e2, salt=b"s")
        assert w1.leaf_payloads == w2.leaf_payloads
        assert w1.honest_indices == w2.honest_indices

    def test_salt_varies_fabrications_not_subset(self, assignment):
        e1, _ = metered(assignment)
        e2, _ = metered(assignment)
        w1 = SemiHonestCheater(0.5).produce(assignment, e1, salt=b"a")
        w2 = SemiHonestCheater(0.5).produce(assignment, e2, salt=b"b")
        assert w1.leaf_payloads != w2.leaf_payloads

    def test_r_zero_computes_nothing(self, assignment):
        evaluate, ledger = metered(assignment)
        work = SemiHonestCheater(0.0).produce(assignment, evaluate)
        assert work.honesty_ratio == 0.0
        assert ledger.evaluations == 0

    def test_r_one_equals_honest(self, assignment):
        evaluate, ledger = metered(assignment)
        work = SemiHonestCheater(1.0).produce(assignment, evaluate)
        assert work.honesty_ratio == 1.0
        assert ledger.evaluations == 100

    def test_bernoulli_guesser_lucky_sometimes(self, assignment):
        evaluate, _ = metered(assignment)
        cheater = SemiHonestCheater(0.0, BernoulliGuess(0.5))
        work = cheater.produce(assignment, evaluate)
        correct = sum(
            work.leaf_payloads[i] == assignment.function.evaluate(i)
            for i in range(100)
        )
        assert 25 < correct < 75  # ~Binomial(100, 0.5)

    def test_validation(self):
        with pytest.raises(TaskError):
            SemiHonestCheater(1.5)
        with pytest.raises(TaskError):
            SemiHonestCheater(0.5, selection="middle")

    def test_name_is_descriptive(self):
        assert "r=0.5" in SemiHonestCheater(0.5).name


class TestMaliciousBehavior:
    def test_computes_everything(self, assignment):
        evaluate, ledger = metered(assignment)
        work = MaliciousBehavior().produce(assignment, evaluate)
        assert work.honesty_ratio == 1.0
        assert ledger.evaluations == 100

    def test_corrupts_reports(self):
        behavior = MaliciousBehavior(corruption_rate=1.0)
        # A genuine report gets suppressed; a None gets forged.
        assert behavior.corrupt_report("hit:5", 5) is None
        forged = behavior.corrupt_report(None, 7)
        assert forged is not None and forged.startswith("forged:")

    def test_partial_corruption(self):
        behavior = MaliciousBehavior(corruption_rate=0.5)
        flips = sum(
            behavior.corrupt_report("hit", i) is None for i in range(1000)
        )
        assert 380 < flips < 620

    def test_honest_behavior_never_corrupts(self):
        assert HonestBehavior().corrupt_report("hit", 1) == "hit"

    def test_validation(self):
        with pytest.raises(TaskError):
            MaliciousBehavior(corruption_rate=0.0)
