"""Tests for the incentive-economics model (paper §1 motivation)."""

import pytest

from repro.analysis.incentives import (
    IncentiveModel,
    deterrent_sample_size,
    utility_curve,
)


def model(**kwargs) -> IncentiveModel:
    defaults = dict(payment=150.0, task_cost=100.0, unit_cost_value=1.0)
    defaults.update(kwargs)
    return IncentiveModel(**defaults)


class TestUtilities:
    def test_honest_utility_is_margin(self):
        assert model().honest_utility == 50.0

    def test_no_sampling_means_cheating_pays(self):
        # m = 0: always accepted; skipping everything nets the full
        # payment at zero compute.
        m0 = model()
        assert m0.cheating_utility(r=0.0, m=0) == 150.0
        assert m0.cheating_gain(0.0, 0) == 100.0

    def test_large_m_makes_honesty_dominant(self):
        big = model()
        assert big.is_deterrent(m=60)

    def test_risk_neutral_cheater_deterred_at_m1_when_q_zero(self):
        # A structural fact the model surfaces: with q = 0 and
        # payment >= cost, expected cheating gain is
        # (payment − cost)(r − 1) <= 0 already at m = 1.  Sampling's
        # larger m buys the ε-guarantee of Eq. (3), not expectation-
        # level deterrence.
        assert model().is_deterrent(m=1)

    def test_small_m_leaves_profitable_cheating_when_guessable(self):
        # q = 0.5 (boolean outputs): at m = 1 the escape probability is
        # (1 + r)/2, and skipping everything nets 75 − 25r > honest 50.
        small = model(q=0.5)
        r, gain = small.best_cheating_ratio(m=1)
        assert gain > 0

    def test_penalty_strengthens_deterrence(self):
        no_pen = deterrent_sample_size(model(q=0.5))
        with_pen = deterrent_sample_size(model(q=0.5, penalty=500.0))
        assert with_pen <= no_pen

    def test_q_weakens_deterrence(self):
        clean = deterrent_sample_size(model(q=0.0))
        guessy = deterrent_sample_size(model(q=0.5))
        assert guessy > clean

    def test_thin_margins_need_more_samples(self):
        # Counter-intuitive but correct: a *large* payment deters
        # (losing it on detection dominates the saved compute), while a
        # payment barely above cost makes detection cheap to risk —
        # thin-margin grids need more samples.
        thin = deterrent_sample_size(model(q=0.5, payment=110.0))
        fat = deterrent_sample_size(model(q=0.5, payment=1000.0))
        assert thin > fat

    def test_best_ratio_near_one_for_large_m(self):
        # With many samples, the only almost-profitable cheat is to
        # skip a sliver (r → 1).
        r, _gain = model(q=0.5).best_cheating_ratio(m=30)
        assert r > 0.8


class TestDeterrentSampleSize:
    def test_minimal_in_m(self):
        probe = model(q=0.5)
        m_star = deterrent_sample_size(probe)
        assert m_star > 1
        assert probe.is_deterrent(m_star)
        assert not probe.is_deterrent(m_star - 1)

    def test_q_one_undeterrable(self):
        with pytest.raises(ValueError):
            deterrent_sample_size(model(q=1.0), max_m=256)

    def test_free_task_trivially_deterred(self):
        # If computing costs nothing, skipping saves nothing.
        free = model(task_cost=0.0)
        assert deterrent_sample_size(free) == 1


class TestUtilityCurve:
    def test_rows_shape(self):
        rows = utility_curve(model(), m=10)
        assert len(rows) == 9
        assert {"r", "escape", "cheating_utility", "gain"} <= set(rows[0])

    def test_gain_negative_everywhere_when_deterrent(self):
        probe = model(q=0.5)
        m = deterrent_sample_size(probe)
        rows = utility_curve(probe, m=m)
        assert all(row["gain"] <= 1e-9 for row in rows)


class TestValidation:
    def test_bad_payment(self):
        with pytest.raises(ValueError):
            IncentiveModel(payment=0.0, task_cost=1.0)

    def test_bad_q(self):
        with pytest.raises(ValueError):
            IncentiveModel(payment=1.0, task_cost=1.0, q=2.0)

    def test_negative_penalty(self):
        with pytest.raises(ValueError):
            IncentiveModel(payment=1.0, task_cost=1.0, penalty=-1.0)
