"""Tests for chunked/parallel Merkle construction (repro.merkle.tree).

``chunked_root`` must be byte-identical to ``MerkleTree.root`` — and
``chunked_proofs`` to ``MerkleTree.auth_path`` — for every domain
size, chunk size, leaf encoding and execution backend: a process
worker building subtrees is only useful if the combined artefacts
still verify against serially-built commitments.
"""

import pytest

from repro.engine import ProcessPoolExecutor, SerialExecutor, ThreadPoolExecutor
from repro.exceptions import EmptyTreeError, LeafIndexError, MerkleError
from repro.merkle import (
    MerkleTree,
    chunked_proofs,
    chunked_root,
    get_hash,
    hash_leaves,
    subtree_root,
)
from repro.merkle.tree import LeafEncoding, combine, empty_leaf_digest

SHA = get_hash("sha256")


def payloads_for(n: int) -> list[bytes]:
    return [i.to_bytes(4, "big") for i in range(n)]


class TestHashLeaves:
    def test_matches_tree_leaf_level(self):
        payloads = payloads_for(5)
        tree = MerkleTree(payloads)
        digests = hash_leaves(payloads, SHA, n_padding=3)
        assert digests == [tree.phi(tree.height, i) for i in range(8)]

    def test_padding_uses_empty_leaf_digest(self):
        digests = hash_leaves([], SHA, n_padding=2)
        assert digests == [empty_leaf_digest(SHA)] * 2

    def test_negative_padding_rejected(self):
        with pytest.raises(MerkleError):
            hash_leaves([b"x"], SHA, n_padding=-1)


class TestSubtreeRoot:
    def test_single_digest_is_its_own_root(self):
        assert subtree_root([b"\x00" * 32], SHA) == b"\x00" * 32

    def test_matches_manual_fold(self):
        digests = hash_leaves(payloads_for(4), SHA)
        want = combine(
            SHA,
            combine(SHA, digests[0], digests[1]),
            combine(SHA, digests[2], digests[3]),
        )
        assert subtree_root(digests, SHA) == want

    def test_non_power_of_two_rejected(self):
        with pytest.raises(MerkleError):
            subtree_root([b"\x00" * 32] * 3, SHA)
        with pytest.raises(MerkleError):
            subtree_root([], SHA)


class TestChunkedRoot:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 100, 1000])
    @pytest.mark.parametrize("chunk_size", [1, 4, 64])
    def test_identical_to_full_tree(self, n, chunk_size):
        payloads = payloads_for(n)
        assert (
            chunked_root(payloads, chunk_size=chunk_size)
            == MerkleTree(payloads).root
        )

    def test_raw_encoding(self):
        payloads = [SHA.digest(bytes([i])) for i in range(10)]
        want = MerkleTree(payloads, leaf_encoding=LeafEncoding.RAW).root
        got = chunked_root(
            payloads, leaf_encoding=LeafEncoding.RAW, chunk_size=4
        )
        assert got == want

    def test_alternate_hash(self):
        payloads = payloads_for(33)
        want = MerkleTree(payloads, hash_fn=get_hash("sha512")).root
        assert chunked_root(payloads, hash_name="sha512", chunk_size=8) == want

    def test_every_backend_agrees(self):
        payloads = payloads_for(2000)
        want = MerkleTree(payloads).root
        for executor in (
            SerialExecutor(),
            ThreadPoolExecutor(workers=3),
            ProcessPoolExecutor(workers=2),
        ):
            with executor:
                got = chunked_root(payloads, executor=executor, chunk_size=256)
            assert got == want, executor.name

    def test_engine_name_accepted(self):
        payloads = payloads_for(100)
        want = MerkleTree(payloads).root
        assert chunked_root(payloads, executor="threads", chunk_size=32) == want

    def test_default_chunk_size(self):
        payloads = payloads_for(300)
        assert chunked_root(payloads) == MerkleTree(payloads).root

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(MerkleError):
            chunked_root(payloads_for(16), chunk_size=3)

    def test_oversized_chunk_clamped(self):
        payloads = payloads_for(5)
        assert (
            chunked_root(payloads, chunk_size=1024)
            == MerkleTree(payloads).root
        )

    def test_empty_rejected(self):
        with pytest.raises(EmptyTreeError):
            chunked_root([])


class TestChunkedProofs:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 100, 1000])
    @pytest.mark.parametrize("chunk_size", [1, 4, 64])
    def test_identical_to_full_tree_paths(self, n, chunk_size):
        payloads = payloads_for(n)
        tree = MerkleTree(payloads)
        indices = sorted({0, n - 1, n // 2, (7 * n) // 13 % n})
        paths = chunked_proofs(payloads, indices, chunk_size=chunk_size)
        assert [p.siblings for p in paths] == [
            tree.auth_path(i).siblings for i in indices
        ]
        for index, path in zip(indices, paths):
            assert path == tree.auth_path(index)
            assert path.verify(payloads[index], tree.root, SHA)

    def test_order_and_duplicates_preserved(self):
        payloads = payloads_for(50)
        tree = MerkleTree(payloads)
        indices = [17, 3, 17, 49, 3]  # with-replacement challenge shape
        paths = chunked_proofs(payloads, indices, chunk_size=8)
        assert [p.leaf_index for p in paths] == indices
        assert paths == [tree.auth_path(i) for i in indices]

    def test_raw_encoding(self):
        payloads = [SHA.digest(bytes([i])) for i in range(10)]
        tree = MerkleTree(payloads, leaf_encoding=LeafEncoding.RAW)
        paths = chunked_proofs(
            payloads, [0, 9], leaf_encoding=LeafEncoding.RAW, chunk_size=4
        )
        assert paths == [tree.auth_path(0), tree.auth_path(9)]

    def test_alternate_hash(self):
        payloads = payloads_for(33)
        tree = MerkleTree(payloads, hash_fn=get_hash("sha512"))
        (path,) = chunked_proofs(
            payloads, [20], hash_name="sha512", chunk_size=8
        )
        assert path == tree.auth_path(20)

    def test_every_backend_agrees(self):
        payloads = payloads_for(2000)
        tree = MerkleTree(payloads)
        indices = [0, 999, 1024, 1999]
        want = [tree.auth_path(i) for i in indices]
        for executor in (
            SerialExecutor(),
            ThreadPoolExecutor(workers=3),
            ProcessPoolExecutor(workers=2),
        ):
            with executor:
                got = chunked_proofs(
                    payloads, indices, executor=executor, chunk_size=256
                )
            assert got == want, executor.name

    def test_engine_name_accepted(self):
        payloads = payloads_for(100)
        tree = MerkleTree(payloads)
        got = chunked_proofs(payloads, [42], executor="threads", chunk_size=32)
        assert got == [tree.auth_path(42)]

    def test_default_chunk_size(self):
        payloads = payloads_for(300)
        tree = MerkleTree(payloads)
        assert chunked_proofs(payloads, [123]) == [tree.auth_path(123)]

    def test_empty_indices(self):
        assert chunked_proofs(payloads_for(16), []) == []

    def test_out_of_range_index_rejected(self):
        with pytest.raises(LeafIndexError):
            chunked_proofs(payloads_for(16), [16])
        with pytest.raises(LeafIndexError):
            chunked_proofs(payloads_for(16), [-1])

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(MerkleError):
            chunked_proofs(payloads_for(16), [0], chunk_size=3)

    def test_empty_rejected(self):
        with pytest.raises(EmptyTreeError):
            chunked_proofs([], [0])
