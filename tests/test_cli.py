"""Tests for the command-line experiment runner."""

import json
import signal
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("fig2", "eq2", "comm", "rco", "regrind",
                        "deterrence", "demo", "population", "serve",
                        "loadgen"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_service_subcommands_default_to_threads_engine(self):
        parser = build_parser()
        for command in ("serve", "loadgen"):
            assert parser.parse_args([command]).engine == "threads"

    def test_worker_subcommand_registered(self):
        args = build_parser().parse_args(["worker", "--port", "7641"])
        assert args.command == "worker"
        assert args.port == 7641
        assert args.engine == "serial"

    def test_cluster_engine_and_workers_accepted(self):
        args = build_parser().parse_args(
            ["population", "--engine", "cluster", "--cluster-workers", "3"]
        )
        assert args.engine == "cluster"
        assert args.cluster_workers == 3


class TestSecurityFlagRouting:
    """Which plane each --secret-file/--tls-* flag reaches."""

    def parse(self, *argv):
        return build_parser().parse_args(list(argv))

    def test_engine_options_carry_security_for_cluster(self):
        from repro.cli import _engine_options

        args = self.parse(
            "population", "--engine", "cluster",
            "--secret-file", "s", "--tls-cert", "c", "--tls-key", "k",
        )
        options = _engine_options(args)
        assert options["secret_file"] == "s"
        assert options["tls_cert"] == "c" and options["tls_key"] == "k"

    def test_service_plane_keeps_security_off_inprocess_engines(self):
        from repro.cli import _engine_options

        args = self.parse("serve", "--secret-file", "s", "--tls-cert", "c",
                          "--tls-key", "k")
        assert _engine_options(args, service_plane=True) == {}

    def test_cluster_secret_file_wins_for_the_cluster_plane(self):
        from repro.cli import _engine_options

        args = self.parse(
            "serve", "--engine", "cluster",
            "--secret-file", "service-secret",
            "--cluster-secret-file", "cluster-secret",
        )
        options = _engine_options(args, service_plane=True)
        assert options["secret_file"] == "cluster-secret"

    def test_misconfigured_security_exits_2_not_traceback(self):
        assert main(["serve", "--secret-file", "/nonexistent"]) == 2
        assert main(["population", "--n", "64", "--participants", "2",
                     "--engine", "serial", "--secret-file", "s"]) == 2


class TestFig2:
    def test_prints_paper_values(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "0.5" in out
        assert "33" in out and "14" in out

    def test_custom_epsilon(self, capsys):
        assert main(["fig2", "--epsilon", "0.01"]) == 0
        assert "0.01" in capsys.readouterr().out


class TestEq2:
    def test_runs_and_reports(self, capsys):
        assert main(["eq2", "--n", "100", "--trials", "40"]) == 0
        out = capsys.readouterr().out
        assert "analytic" in out and "measured" in out


class TestComm:
    def test_reduction_grows(self, capsys):
        assert main(["comm", "--m", "20", "--max-exp", "12"]) == 0
        out = capsys.readouterr().out
        assert "2^8" in out and "2^12" in out


class TestRco:
    def test_table_matches_formula(self, capsys):
        assert main(["rco", "--n", "256", "--m", "4"]) == 0
        out = capsys.readouterr().out
        assert "paper_rco" in out


class TestRegrind:
    def test_economics_table(self, capsys):
        code = main(
            ["regrind", "--n", "128", "--m", "4", "--r", "0.75", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profitable" in out
        assert "expected attempts" in out


class TestDeterrence:
    def test_reports_m_star(self, capsys):
        assert main(["deterrence", "--q", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "deterrent" in out

    def test_undeterrable_exits_nonzero(self, capsys):
        assert main(["deterrence", "--q", "1.0"]) == 1


class TestDemo:
    def test_honest_and_cheater_rows(self, capsys):
        assert main(["demo", "--n", "512", "--m", "15"]) == 0
        out = capsys.readouterr().out
        assert "honest" in out and "cheater" in out
        assert "exposed at sample" in out


class TestLoadgen:
    def test_self_contained_run_with_check(self, capsys):
        code = main([
            "loadgen", "--n", "256", "--participants", "8",
            "--m", "16", "--check",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "submissions_per_s" in out
        assert "loadgen --check passed" in out

    def test_cbs_protocol_round_trip(self, capsys):
        code = main([
            "loadgen", "--n", "256", "--participants", "4",
            "--m", "16", "--protocol", "cbs", "--check",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "service:cbs(m=16)" in out

    def test_host_without_port_is_usage_error(self, capsys):
        assert main(["loadgen", "--host", "127.0.0.1"]) == 2

    def test_json_output_lands_on_disk(self, capsys, tmp_path):
        out_path = tmp_path / "loadgen.json"
        code = main([
            "loadgen", "--n", "256", "--participants", "4",
            "--m", "16", "--json", str(out_path),
        ])
        assert code == 0, capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["bench"] == "loadgen"
        assert payload["mode"] == "self-hosted"
        assert payload["report"]["participants"] == 4
        assert payload["stats"]["completed"] == 4
        assert payload["stats"]["submissions_per_s"] > 0


class TestPopulationCluster:
    def test_cluster_engine_end_to_end(self, capsys):
        code = main([
            "population", "--n", "512", "--participants", "4", "--m", "8",
            "--engine", "cluster", "--cluster-workers", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "cluster" in out


class TestServeShutdown:
    def test_sigterm_shuts_down_gracefully(self):
        """SIGINT/SIGTERM must drain and exit 0 — no KeyboardInterrupt
        traceback from a long-running supervisor."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--n", "256",
             "--participants", "4", "--m", "8", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "supervisor listening" in banner
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        assert proc.returncode == 0, out
        assert "supervisor stopped" in out
        assert "Traceback" not in out


class TestWorkerCommand:
    def test_unreachable_coordinator_fails_cleanly(self, capsys):
        # Nothing listens on the probed port: the daemon must report
        # and exit nonzero, not stack-trace.
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        assert main(["worker", "--port", str(port)]) == 1
        assert "cluster worker failed" in capsys.readouterr().err
