"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("fig2", "eq2", "comm", "rco", "regrind",
                        "deterrence", "demo", "population", "serve",
                        "loadgen"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_service_subcommands_default_to_threads_engine(self):
        parser = build_parser()
        for command in ("serve", "loadgen"):
            assert parser.parse_args([command]).engine == "threads"


class TestFig2:
    def test_prints_paper_values(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "0.5" in out
        assert "33" in out and "14" in out

    def test_custom_epsilon(self, capsys):
        assert main(["fig2", "--epsilon", "0.01"]) == 0
        assert "0.01" in capsys.readouterr().out


class TestEq2:
    def test_runs_and_reports(self, capsys):
        assert main(["eq2", "--n", "100", "--trials", "40"]) == 0
        out = capsys.readouterr().out
        assert "analytic" in out and "measured" in out


class TestComm:
    def test_reduction_grows(self, capsys):
        assert main(["comm", "--m", "20", "--max-exp", "12"]) == 0
        out = capsys.readouterr().out
        assert "2^8" in out and "2^12" in out


class TestRco:
    def test_table_matches_formula(self, capsys):
        assert main(["rco", "--n", "256", "--m", "4"]) == 0
        out = capsys.readouterr().out
        assert "paper_rco" in out


class TestRegrind:
    def test_economics_table(self, capsys):
        code = main(
            ["regrind", "--n", "128", "--m", "4", "--r", "0.75", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profitable" in out
        assert "expected attempts" in out


class TestDeterrence:
    def test_reports_m_star(self, capsys):
        assert main(["deterrence", "--q", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "deterrent" in out

    def test_undeterrable_exits_nonzero(self, capsys):
        assert main(["deterrence", "--q", "1.0"]) == 1


class TestDemo:
    def test_honest_and_cheater_rows(self, capsys):
        assert main(["demo", "--n", "512", "--m", "15"]) == 0
        out = capsys.readouterr().out
        assert "honest" in out and "cheater" in out
        assert "exposed at sample" in out


class TestLoadgen:
    def test_self_contained_run_with_check(self, capsys):
        code = main([
            "loadgen", "--n", "256", "--participants", "8",
            "--m", "16", "--check",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "submissions_per_s" in out
        assert "loadgen --check passed" in out

    def test_cbs_protocol_round_trip(self, capsys):
        code = main([
            "loadgen", "--n", "256", "--participants", "4",
            "--m", "16", "--protocol", "cbs", "--check",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "service:cbs(m=16)" in out

    def test_host_without_port_is_usage_error(self, capsys):
        assert main(["loadgen", "--host", "127.0.0.1"]) == 2
