"""Integration tests: the whole system composed, plus a scheme contract
suite every verification scheme must satisfy."""

import pytest

from repro.baselines import (
    DoubleCheckScheme,
    HardenedProbeScheme,
    NaiveSamplingScheme,
    RingerScheme,
)
from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme, NICBSScheme
from repro.grid import (
    FlakyParticipant,
    GridResourceBroker,
    Network,
    ParticipantNode,
    RetryingScheme,
    SupervisorNode,
)
from repro.grid.simulation import run_population
from repro.tasks import (
    FactoringTask,
    MatchScreener,
    PasswordSearch,
    RangeDomain,
    TaskAssignment,
)

ALL_SCHEMES = [
    CBSScheme(20),
    CBSScheme(20, batch_proofs=True),
    CBSScheme(20, subtree_height=3),
    NICBSScheme(20),
    NaiveSamplingScheme(20),
    DoubleCheckScheme(2),
    RingerScheme(20),
    HardenedProbeScheme(20),
]


@pytest.fixture
def task():
    return TaskAssignment("contract", RangeDomain(0, 400), PasswordSearch())


class TestSchemeContract:
    """Invariants every scheme in the library must satisfy."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_honest_accepted(self, scheme, task):
        result = scheme.run(task, HonestBehavior(), seed=3)
        assert result.outcome.accepted
        assert not result.cheated

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_blatant_cheater_caught(self, scheme, task):
        result = scheme.run(task, SemiHonestCheater(0.3), seed=3)
        assert result.true_detection

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_participant_work_metered(self, scheme, task):
        result = scheme.run(task, HonestBehavior(), seed=3)
        # At least the full sweep; the §3.3 partial-tree variant also
        # recomputes leaves when rebuilding subtrees for proofs.
        assert result.participant_ledger.evaluations >= 400

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_some_bytes_flow(self, scheme, task):
        result = scheme.run(task, HonestBehavior(), seed=3)
        assert result.total_bytes_on_wire > 0
        assert result.participant_ledger.messages_sent >= 1

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_deterministic_outcomes(self, scheme, task):
        a = scheme.run(task, SemiHonestCheater(0.8), seed=11)
        b = scheme.run(task, SemiHonestCheater(0.8), seed=11)
        assert a.outcome.accepted == b.outcome.accepted
        assert (
            a.participant_ledger.bytes_sent == b.participant_ledger.bytes_sent
        )

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_ground_truth_attached(self, scheme, task):
        result = scheme.run(task, SemiHonestCheater(0.5), seed=1)
        assert result.work is not None
        assert result.work.honesty_ratio == pytest.approx(0.5)


class TestFullPipelineScenario:
    """The whole stack at once: broker topology, churny mixed
    population, screener reporting and storage-optimized cheap-verify
    workload."""

    def test_brokered_grid_with_mixed_population(self):
        fn = PasswordSearch()
        domain = RangeDomain(0, 2048)
        parts = domain.partition(4)
        secret = 777
        target = fn.target_for(secret)
        catalogue = {
            f"wu-{i}": TaskAssignment(
                f"wu-{i}", parts[i], fn, screener=MatchScreener(target)
            )
            for i in range(4)
        }

        net = Network()
        supervisor = SupervisorNode("sup", net, protocol="ni-cbs", n_samples=24)
        broker = GridResourceBroker("grb", net, supervisor_name="sup")
        behaviors = [
            HonestBehavior(),
            SemiHonestCheater(0.6),
            HonestBehavior(),
            SemiHonestCheater(0.2),
        ]
        for i, behavior in enumerate(behaviors):
            ParticipantNode(
                f"w{i}",
                net,
                behavior,
                catalogue.__getitem__,
                protocol="ni-cbs",
                n_samples=24,
            )
            broker.register_worker(f"w{i}")
        for task_id in catalogue:
            supervisor.assign(catalogue[task_id], "grb")
        net.deliver_all()

        verdicts = [supervisor.outcomes[f"wu-{i}"].accepted for i in range(4)]
        assert verdicts == [True, False, True, False]
        # Broker relayed everything; supervisor touched no worker.
        assert broker.ledger.counters["assignments_routed"] == 4
        assert all("sup" not in link or "grb" in link for link in net.links)

    def test_storage_optimized_factoring_with_retries(self):
        # Cheap-verify workload + §3.3 partial trees + churn + retry.
        fn = FactoringTask(bits=12, cost=500.0, verify_cost=1.0)
        task = TaskAssignment("deep", RangeDomain(0, 128), fn)
        scheme = RetryingScheme(
            CBSScheme(n_samples=8, subtree_height=3, with_replacement=False),
            max_retries=20,
        )
        flaky_honest = FlakyParticipant(HonestBehavior(), dropout_rate=0.3)
        result = scheme.run(task, flaky_honest, seed=5)
        assert result.outcome.accepted
        # Supervisor verified cheaply (8 × 1.0), never re-factored.
        assert result.supervisor_ledger.verification_cost == 8.0
        # Participant paid the full sweep plus subtree rebuilds.
        assert result.participant_ledger.evaluations >= 128

        flaky_cheater = FlakyParticipant(
            SemiHonestCheater(0.5), dropout_rate=0.3
        )
        result = scheme.run(task, flaky_cheater, seed=6)
        assert not result.outcome.accepted

    def test_population_simulation_with_batched_cbs(self):
        report = run_population(
            RangeDomain(0, 1200),
            PasswordSearch(),
            CBSScheme(15, batch_proofs=True),
            behaviors=[HonestBehavior(), SemiHonestCheater(0.5)],
            n_participants=6,
            seed=3,
        )
        assert report.n_cheaters == 3
        assert report.cheaters_caught == 3
        assert report.honest_rejected == 0

    def test_end_to_end_report_of_interest_survives(self):
        # The actual point of the grid: the honest hit is reported and
        # the verification machinery never eats it.
        fn = PasswordSearch()
        domain = RangeDomain(0, 256)
        target = fn.target_for(97)
        task = TaskAssignment("hit", domain, fn, screener=MatchScreener(target))
        from repro.core import CBSParticipant, CBSSupervisor

        participant = CBSParticipant(task, HonestBehavior())
        supervisor = CBSSupervisor(task, n_samples=12, seed=0)
        supervisor.receive_commitment(participant.compute_and_commit())
        bundle = participant.prove(supervisor.make_challenge())
        assert supervisor.verify(bundle).accepted
        assert participant.reports().reports == ("match:97",)
