"""Unit tests for outcome dataclasses and run-result classification."""

from repro.accounting import CostLedger
from repro.cheating.strategies import ComputedWork
from repro.core.scheme import (
    RejectReason,
    SampleVerdict,
    SchemeRunResult,
    VerificationOutcome,
)


def make_result(honest_fraction: float, accepted: bool) -> SchemeRunResult:
    n = 10
    n_honest = round(honest_fraction * n)
    work = ComputedWork(
        leaf_payloads=[bytes([i]) for i in range(n)],
        honest_indices=set(range(n_honest)),
    )
    return SchemeRunResult(
        outcome=VerificationOutcome(task_id="t", accepted=accepted),
        participant_ledger=CostLedger(),
        supervisor_ledger=CostLedger(),
        work=work,
    )


class TestVerificationOutcome:
    def test_first_failure_none_when_clean(self):
        outcome = VerificationOutcome(task_id="t", accepted=True)
        outcome.verdicts = [SampleVerdict(index=1, accepted=True)]
        assert outcome.first_failure is None

    def test_first_failure_returns_earliest(self):
        outcome = VerificationOutcome(task_id="t", accepted=False)
        outcome.verdicts = [
            SampleVerdict(index=1, accepted=True),
            SampleVerdict(
                index=5, accepted=False, reason=RejectReason.WRONG_RESULT
            ),
            SampleVerdict(
                index=9, accepted=False, reason=RejectReason.ROOT_MISMATCH
            ),
        ]
        failure = outcome.first_failure
        assert failure is not None
        assert failure.index == 5
        assert failure.reason == RejectReason.WRONG_RESULT


class TestRunClassification:
    def test_true_detection(self):
        result = make_result(honest_fraction=0.5, accepted=False)
        assert result.cheated
        assert result.true_detection
        assert not result.false_alarm
        assert not result.undetected_cheat

    def test_undetected_cheat(self):
        result = make_result(honest_fraction=0.5, accepted=True)
        assert result.undetected_cheat
        assert not result.true_detection
        assert not result.false_alarm

    def test_false_alarm(self):
        result = make_result(honest_fraction=1.0, accepted=False)
        assert result.false_alarm
        assert not result.cheated
        assert not result.true_detection

    def test_clean_accept(self):
        result = make_result(honest_fraction=1.0, accepted=True)
        assert not result.cheated
        assert not result.false_alarm
        assert not result.undetected_cheat

    def test_no_work_means_not_cheated(self):
        result = make_result(1.0, True)
        result.work = None
        assert not result.cheated

    def test_total_bytes_spans_all_parties(self):
        result = make_result(1.0, True)
        result.participant_ledger.record_send(100)
        result.supervisor_ledger.record_send(30)
        result.other_ledger.record_send(7)
        assert result.total_bytes_on_wire == 137


class TestComputedWork:
    def test_honesty_ratio(self):
        work = ComputedWork(
            leaf_payloads=[b"a", b"b", b"c", b"d"],
            honest_indices={0, 2},
        )
        assert work.honesty_ratio == 0.5

    def test_empty_work_counts_honest(self):
        assert ComputedWork(leaf_payloads=[]).honesty_ratio == 1.0
