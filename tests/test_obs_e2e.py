"""End-to-end observability: wire-propagated traces, stats frames.

Three acceptance properties of the observability plane:

* **one trace across three record types** — a population mapped on a
  cluster with a trace bound produces coordinator dispatch, worker
  execution, and coordinator acceptance records all carrying the same
  ``trace_id`` (and the same ``span_id`` per chunk), reconstructed
  here from log records alone;
* **the stats frame rides the authenticated path** — a secured
  supervisor serves its registry snapshot to an authenticated client
  and refuses an unkeyed one before decoding anything;
* **trace fields are policed at the codec** — junk ``tid``/``sid``
  values are protocol errors, absent ones are fine (old peers).
"""

import asyncio
import json
import logging
import socket
import threading

import pytest

from repro.engine import ClusterExecutor
from repro.engine.cluster.worker import run_worker
from repro.exceptions import ProtocolError, ReproError
from repro.net.transport import SecurityConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, SpanBuffer, render_waterfall
from repro.obs.trace import bind_trace, new_trace_id
from repro.service.client import ServiceClient
from repro.service.codec import (
    JobFrame,
    StatsReply,
    StatsRequest,
    TaskRequest,
    decode_frame,
    decode_frame_payload,
    encode_frame,
)
from repro.service.server import ServiceConfig, SupervisorServer
from repro.tasks import RangeDomain
from test_engine_cluster import PRELOAD, _square


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


# ----------------------------------------------------------------------
# Trace context through a cluster population
# ----------------------------------------------------------------------


class TestClusterTraceEndToEnd:
    def test_one_chunk_timeline_reconstructable_from_logs(self, caplog):
        """Dispatch, execution and acceptance share trace + span ids."""
        port = _free_port()
        executor = ClusterExecutor(
            workers=1, port=port, spawn_local=False, startup_timeout=30.0
        )

        def worker_thread() -> None:
            async def dial() -> None:
                for _ in range(200):  # coordinator may not be bound yet
                    try:
                        await run_worker("127.0.0.1", port, engine="serial")
                        return
                    except (ConnectionError, OSError):
                        await asyncio.sleep(0.05)

            asyncio.run(dial())

        thread = threading.Thread(target=worker_thread, daemon=True)
        thread.start()
        trace_id = new_trace_id()
        try:
            with caplog.at_level(logging.DEBUG, logger="repro"):
                with bind_trace(trace_id):
                    assert executor.map(_square, range(8)) == [
                        i * i for i in range(8)
                    ]
        finally:
            executor.close()
        thread.join(timeout=10)

        by_event: dict[str, list] = {}
        for record in caplog.records:
            event = getattr(record, "event", None)
            if event is not None:
                by_event.setdefault(event, []).append(record)
        # The worker ran in-process (run_worker in a thread), so all
        # three legs of the timeline landed in this process's records.
        assert by_event.get("chunk_dispatched"), "coordinator dispatch"
        assert by_event.get("chunk_executed"), "worker execution"
        assert by_event.get("chunk_completed"), "result acceptance"
        for event in ("chunk_dispatched", "chunk_executed", "chunk_completed"):
            for record in by_event[event]:
                assert record.trace_id == trace_id, event
        # Spans correlate per chunk: every accepted chunk's span was
        # both dispatched and executed under the same id.
        dispatched = {r.span_id for r in by_event["chunk_dispatched"]}
        executed = {r.span_id for r in by_event["chunk_executed"]}
        for record in by_event["chunk_completed"]:
            assert record.span_id in dispatched
            assert record.span_id in executed

    def test_untraced_run_emits_no_ids(self, caplog):
        with ClusterExecutor(workers=1, worker_preload=PRELOAD) as executor:
            with caplog.at_level(logging.DEBUG, logger="repro"):
                executor.map(_square, range(4))
        for record in caplog.records:
            if getattr(record, "event", None) == "chunk_dispatched":
                assert getattr(record, "trace_id", None) is None


# ----------------------------------------------------------------------
# Stats frame over the service protocol
# ----------------------------------------------------------------------


def _service_config() -> ServiceConfig:
    return ServiceConfig(
        domain=RangeDomain(0, 1 << 8),
        protocol="cbs",
        n_samples=8,
        n_participants=4,
        seed=7,
    )


class TestStatsFrame:
    def test_authenticated_client_fetches_snapshot(self, secret_file):
        async def scenario():
            security = SecurityConfig.from_options(secret_file=secret_file)
            server = SupervisorServer(
                _service_config(), engine="serial", security=security
            )
            host, port = await server.start()
            try:
                client = await ServiceClient.open_tcp(
                    host, port, security=security
                )
                try:
                    await client.request_task(participant=0)
                    snap = await client.stats()
                finally:
                    await client.close()
            finally:
                await server.stop()
            return snap

        snap = asyncio.run(asyncio.wait_for(scenario(), timeout=60))
        # The snapshot is the JSON-ready registry dump.
        json.dumps(snap)
        assert snap["repro_connections_total"]["values"][0]["value"] >= 1
        assert snap["repro_frames_total"]["type"] == "counter"
        assert "repro_sessions_total" in snap

    def test_unkeyed_client_cannot_fetch_stats(self, secret_file):
        async def scenario():
            security = SecurityConfig.from_options(secret_file=secret_file)
            server = SupervisorServer(
                _service_config(), engine="serial", security=security
            )
            host, port = await server.start()
            try:
                client = await ServiceClient.open_tcp(host, port)
                with pytest.raises((ReproError, ConnectionError, OSError)):
                    await asyncio.wait_for(client.stats(), timeout=20)
                await client.close()
                assert server.stats.auth_failures >= 1
            finally:
                await server.stop()

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))

    def test_stats_round_trip_over_memory_transport(self):
        async def scenario():
            server = SupervisorServer(_service_config(), engine="serial")
            try:
                reader, writer = server.connect_memory()
                client = ServiceClient(reader, writer)
                try:
                    return await client.stats()
                finally:
                    await client.close()
            finally:
                await server.stop()

        snap = asyncio.run(asyncio.wait_for(scenario(), timeout=60))
        assert "repro_verifications_total" in snap


# ----------------------------------------------------------------------
# Codec policing of the new optional fields
# ----------------------------------------------------------------------


class TestTraceFieldCodec:
    def test_task_request_round_trips_trace_ids(self):
        frame = TaskRequest(participant=3, trace_id="a" * 16, span_id="b" * 8)
        out = decode_frame(encode_frame(frame))
        assert (out.trace_id, out.span_id) == ("a" * 16, "b" * 8)

    def test_absent_fields_decode_as_none(self):
        raw = json.dumps({"t": "task_request"}).encode()
        out = decode_frame_payload(raw)
        assert out.trace_id is None and out.span_id is None

    @pytest.mark.parametrize("junk", [7, [], {}, True, 1.5])
    def test_non_string_tid_rejected(self, junk):
        raw = json.dumps({"t": "task_request", "tid": junk}).encode()
        with pytest.raises(ProtocolError):
            decode_frame_payload(raw)

    def test_empty_and_oversized_ids_rejected(self):
        for bad in ("", "x" * 65):
            raw = json.dumps({"t": "task_request", "sid": bad}).encode()
            with pytest.raises(ProtocolError):
                decode_frame_payload(raw)

    def test_job_frame_carries_trace_ids(self):
        frame = JobFrame(
            job_id=1, payload=b"p", trace_id="t" * 16, span_id="s" * 8
        )
        out = decode_frame(encode_frame(frame))
        assert (out.trace_id, out.span_id) == ("t" * 16, "s" * 8)

    def test_stats_frames_round_trip(self):
        assert decode_frame(encode_frame(StatsRequest())) == StatsRequest()
        reply = StatsReply(stats={"repro_x_total": {"type": "counter"}})
        assert decode_frame(encode_frame(reply)) == reply

    def test_stats_reply_requires_object(self):
        for bad in (None, 3, "x", []):
            raw = json.dumps({"t": "stats", "stats": bad}).encode()
            with pytest.raises(ProtocolError):
                decode_frame_payload(raw)


# ----------------------------------------------------------------------
# Distributed span timelines over the trace_get frame
# ----------------------------------------------------------------------


class TestDistributedTraceFrame:
    def test_cluster_waterfall_served_over_one_authenticated_frame(
        self, secret_file
    ):
        """The PR's acceptance path end to end: a traced cluster map
        records coordinator dispatch, worker execution, and result
        acceptance as real spans; a single authenticated ``trace_get``
        frame returns the assembled timeline; ``render_waterfall``
        draws it."""
        buffer = SpanBuffer(registry=MetricsRegistry())
        port = _free_port()
        executor = ClusterExecutor(
            workers=1, port=port, spawn_local=False,
            startup_timeout=30.0, span_buffer=buffer,
        )

        def worker_thread() -> None:
            async def dial() -> None:
                for _ in range(200):
                    try:
                        await run_worker("127.0.0.1", port, engine="serial")
                        return
                    except (ConnectionError, OSError):
                        await asyncio.sleep(0.05)

            asyncio.run(dial())

        thread = threading.Thread(target=worker_thread, daemon=True)
        thread.start()
        trace_id = new_trace_id()
        try:
            with bind_trace(trace_id):
                assert executor.map(_square, range(8)) == [
                    i * i for i in range(8)
                ]
        finally:
            executor.close()
        thread.join(timeout=10)

        # The worker's spans crossed the wire and the coordinator
        # assembled them under the chunk's span id.
        spans = buffer.trace(trace_id)
        by_name = {s.name: s for s in spans}
        assert {"coordinator.chunk", "worker.execute",
                "coordinator.accept"} <= set(by_name)
        chunk = by_name["coordinator.chunk"]
        assert by_name["worker.execute"].parent_id == chunk.span_id
        assert by_name["coordinator.accept"].parent_id == chunk.span_id
        assert chunk.parent_id is None

        async def scenario() -> list:
            security = SecurityConfig.from_options(secret_file=secret_file)
            server = SupervisorServer(
                _service_config(), engine="serial", security=security,
                span_buffer=buffer,
            )
            host, sport = await server.start()
            try:
                client = await ServiceClient.open_tcp(
                    host, sport, security=security
                )
                try:
                    return await client.trace(trace_id)
                finally:
                    await client.close()
            finally:
                await server.stop()

        wire = asyncio.run(asyncio.wait_for(scenario(), timeout=60))
        json.dumps(wire)  # the reply is JSON-clean wire dicts
        fetched = [Span.from_wire(w) for w in wire]
        assert {s.name for s in fetched} >= {
            "coordinator.chunk", "worker.execute", "coordinator.accept"
        }
        text = render_waterfall(fetched)
        assert trace_id in text.splitlines()[0]
        assert any(
            line.lstrip().startswith("worker.execute") and "#" in line
            for line in text.splitlines()
        )

    def test_unknown_trace_id_returns_empty_reply(self):
        async def scenario():
            server = SupervisorServer(
                _service_config(), engine="serial",
                span_buffer=SpanBuffer(registry=MetricsRegistry()),
            )
            try:
                reader, writer = server.connect_memory()
                client = ServiceClient(reader, writer)
                try:
                    return await client.trace("no-such-trace")
                finally:
                    await client.close()
            finally:
                await server.stop()

        assert asyncio.run(asyncio.wait_for(scenario(), timeout=60)) == []
