"""Codec roundtrips and wire sizes for all protocol messages."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import (
    AssignMsg,
    CommitmentMsg,
    FullResultsMsg,
    NICBSSubmissionMsg,
    ProofBundleMsg,
    ReportsMsg,
    SampleChallengeMsg,
    SampleProof,
    VerdictMsg,
)
from repro.merkle import MerkleTree


def sample_proofs(n: int = 8, count: int = 3) -> tuple[SampleProof, ...]:
    leaves = [f"r{i}".encode() for i in range(n)]
    tree = MerkleTree(leaves)
    return tuple(
        SampleProof(
            index=i, claimed_result=leaves[i], path=tree.auth_path(i)
        )
        for i in range(count)
    )


class TestCommitmentMsg:
    def test_roundtrip(self):
        msg = CommitmentMsg(task_id="job-7", root=bytes(range(32)), n_leaves=1000)
        assert CommitmentMsg.decode(msg.encode()) == msg

    def test_wire_size_matches_encoding(self):
        msg = CommitmentMsg(task_id="t", root=b"\x00" * 32, n_leaves=5)
        assert msg.wire_size() == len(msg.encode())

    @given(st.text(max_size=30), st.binary(min_size=1, max_size=64),
           st.integers(min_value=1, max_value=1 << 40))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, task_id, root, n):
        msg = CommitmentMsg(task_id=task_id, root=root, n_leaves=n)
        assert CommitmentMsg.decode(msg.encode()) == msg


class TestSampleChallengeMsg:
    def test_roundtrip(self):
        msg = SampleChallengeMsg(task_id="t", indices=(4, 99, 0, 4))
        assert SampleChallengeMsg.decode(msg.encode()) == msg

    def test_empty_indices(self):
        msg = SampleChallengeMsg(task_id="t", indices=())
        assert SampleChallengeMsg.decode(msg.encode()) == msg

    def test_size_linear_in_m(self):
        small = SampleChallengeMsg("t", tuple(range(10))).wire_size()
        large = SampleChallengeMsg("t", tuple(range(100))).wire_size()
        assert large > small


class TestProofBundle:
    def test_roundtrip_preserves_proofs(self):
        bundle = ProofBundleMsg(task_id="t", proofs=sample_proofs())
        decoded = ProofBundleMsg.decode(bundle.encode())
        assert decoded.task_id == "t"
        assert len(decoded.proofs) == 3
        for orig, got in zip(bundle.proofs, decoded.proofs):
            assert got.index == orig.index
            assert got.claimed_result == orig.claimed_result
            assert got.path.siblings == orig.path.siblings

    def test_decoded_proofs_still_verify(self):
        leaves = [f"r{i}".encode() for i in range(8)]
        tree = MerkleTree(leaves)
        bundle = ProofBundleMsg(task_id="t", proofs=sample_proofs())
        decoded = ProofBundleMsg.decode(bundle.encode())
        for proof in decoded.proofs:
            assert proof.path.verify(
                proof.claimed_result, tree.root, tree.hash_fn
            )

    def test_wire_size(self):
        bundle = ProofBundleMsg(task_id="t", proofs=sample_proofs())
        assert bundle.wire_size() == len(bundle.encode())


class TestNICBSSubmission:
    def test_roundtrip(self):
        tree = MerkleTree([f"r{i}".encode() for i in range(8)])
        msg = NICBSSubmissionMsg(
            task_id="t", root=tree.root, n_leaves=8, proofs=sample_proofs()
        )
        decoded = NICBSSubmissionMsg.decode(msg.encode())
        assert decoded.root == tree.root
        assert decoded.n_leaves == 8
        assert len(decoded.proofs) == 3


class TestFullResultsMsg:
    def test_roundtrip(self):
        msg = FullResultsMsg(task_id="t", results=(b"a", b"", b"ccc"))
        assert FullResultsMsg.decode(msg.encode()) == msg

    def test_size_linear_in_n(self):
        small = FullResultsMsg("t", tuple(b"x" * 16 for _ in range(10)))
        large = FullResultsMsg("t", tuple(b"x" * 16 for _ in range(1000)))
        assert large.wire_size() > 90 * small.wire_size()


class TestReportsMsg:
    def test_roundtrip(self):
        msg = ReportsMsg(task_id="t", reports=("match:5", "match:9"))
        assert ReportsMsg.decode(msg.encode()) == msg

    def test_unicode_reports(self):
        msg = ReportsMsg(task_id="τ", reports=("héllo",))
        assert ReportsMsg.decode(msg.encode()) == msg


class TestVerdictMsg:
    def test_roundtrip_accept(self):
        msg = VerdictMsg(task_id="t", accepted=True)
        assert VerdictMsg.decode(msg.encode()) == msg

    def test_roundtrip_reject_with_reason(self):
        msg = VerdictMsg(task_id="t", accepted=False, reason="root_mismatch")
        assert VerdictMsg.decode(msg.encode()) == msg


class TestAssignMsg:
    def test_roundtrip(self):
        msg = AssignMsg(task_id="t-9", n_inputs=4096, workload="PasswordSearch")
        assert AssignMsg.decode(msg.encode()) == msg

    def test_small_constant_size(self):
        # Assignments are O(1) on the wire regardless of n.
        small = AssignMsg("t", 10, "W").wire_size()
        large = AssignMsg("t", 1 << 40, "W").wire_size()
        assert large - small <= 8
