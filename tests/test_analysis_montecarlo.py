"""Tests for the empirical estimators (Eq. 2 validation machinery)."""

import pytest

from repro.analysis import cheat_success_probability
from repro.analysis.montecarlo import (
    RateEstimate,
    estimate_detection_rate,
    estimate_escape_rate,
    wilson_interval,
)
from repro.cheating import BernoulliGuess, HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment


@pytest.fixture
def task():
    return TaskAssignment("mc", RangeDomain(0, 200), PasswordSearch())


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_narrows_with_trials(self):
        low1, high1 = wilson_interval(30, 100)
        low2, high2 = wilson_interval(300, 1000)
        assert (high2 - low2) < (high1 - low1)

    def test_extremes_clamped(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        low, high = wilson_interval(50, 50)
        assert high == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(10, 5)


class TestRateEstimate:
    def test_rate(self):
        est = RateEstimate(successes=25, trials=100, low=0.2, high=0.35)
        assert est.rate == 0.25
        assert est.contains(0.3)
        assert not est.contains(0.5)


class TestEstimators:
    def test_eq2_inside_interval(self, task):
        # The headline validation: measured escape rate brackets the
        # analytic (r + (1-r)q)^m.
        r, q, m = 0.5, 0.5, 3
        est = estimate_escape_rate(
            CBSScheme(n_samples=m),
            task,
            lambda trial: SemiHonestCheater(r, BernoulliGuess(q)),
            n_trials=300,
            seed0=17,
        )
        assert est.contains(cheat_success_probability(r, q, m))

    def test_honest_never_rejected(self, task):
        est = estimate_detection_rate(
            CBSScheme(n_samples=10),
            task,
            lambda trial: HonestBehavior(),
            n_trials=50,
        )
        # detection here = rejection; honest participants: zero.
        assert est.successes == 0

    def test_blatant_cheater_always_caught(self, task):
        est = estimate_escape_rate(
            CBSScheme(n_samples=40),
            task,
            lambda trial: SemiHonestCheater(0.2),
            n_trials=50,
        )
        assert est.successes == 0

    def test_validation(self, task):
        with pytest.raises(ValueError):
            estimate_escape_rate(
                CBSScheme(4), task, lambda t: HonestBehavior(), n_trials=0
            )


class TestSweepAndTables:
    def test_sweep_cartesian(self):
        from repro.analysis import sweep

        rows = sweep(
            {"a": [1, 2], "b": [10, 20]},
            lambda a, b: {"product": a * b},
        )
        assert len(rows) == 4
        assert rows[0] == {"a": 1, "b": 10, "product": 10}

    def test_sweep_skip(self):
        from repro.analysis import sweep

        rows = sweep(
            {"a": [1, 2, 3]},
            lambda a: None if a == 2 else {"sq": a * a},
        )
        assert [r["a"] for r in rows] == [1, 3]

    def test_sweep_empty_grid_rejected(self):
        from repro.analysis import sweep

        with pytest.raises(ValueError):
            sweep({}, lambda: {})

    def test_format_table(self):
        from repro.analysis import format_table

        text = format_table(
            [
                {"r": 0.5, "m": 33, "ok": True},
                {"r": 0.9, "m": 176, "ok": False},
            ],
            title="Fig. 2",
        )
        assert "Fig. 2" in text
        assert "0.5" in text and "33" in text
        assert "yes" in text and "no" in text

    def test_format_table_empty(self):
        from repro.analysis import format_table

        assert "(no rows)" in format_table([])

    def test_format_table_missing_cells(self):
        from repro.analysis import format_table

        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "a" in text and "b" in text
