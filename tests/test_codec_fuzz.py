"""Fuzz tests: decoders must reject garbage with CodecError, never crash.

A production wire layer faces hostile bytes; every ``decode`` in the
protocol either returns a valid message or raises a codec/Merkle error
— no ``IndexError``/``OverflowError``/silent nonsense.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import (
    AssignMsg,
    BatchProofMsg,
    CommitmentMsg,
    FullResultsMsg,
    NICBSSubmissionMsg,
    ProofBundleMsg,
    ReportsMsg,
    SampleChallengeMsg,
    VerdictMsg,
)
from repro.exceptions import ReproError
from repro.merkle.multiproof import MerkleMultiProof
from repro.merkle.serialize import decode_auth_path

DECODERS = [
    CommitmentMsg.decode,
    SampleChallengeMsg.decode,
    ProofBundleMsg.decode,
    BatchProofMsg.decode,
    NICBSSubmissionMsg.decode,
    FullResultsMsg.decode,
    ReportsMsg.decode,
    VerdictMsg.decode,
    AssignMsg.decode,
    MerkleMultiProof.decode,
    decode_auth_path,
]


def _try_decode(decoder, data: bytes) -> None:
    try:
        decoder(data)
    except ReproError:
        pass  # the contract: a library error, nothing else
    except UnicodeDecodeError:
        pytest.fail(f"{decoder}: unicode error leaked for {data!r}")


class TestGarbageRejection:
    @pytest.mark.parametrize("decoder", DECODERS, ids=lambda d: repr(d)[:40])
    def test_empty_input(self, decoder):
        _try_decode(decoder, b"")

    @pytest.mark.parametrize("decoder", DECODERS, ids=lambda d: repr(d)[:40])
    @given(data=st.binary(max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_random_bytes(self, decoder, data):
        _try_decode(decoder, data)

    @given(data=st.binary(min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_truncated_valid_messages(self, data):
        # Encode a real message, truncate at every prefix: decoder must
        # reject every strict prefix.
        msg = CommitmentMsg(task_id="fuzz", root=data, n_leaves=max(len(data), 1))
        encoded = msg.encode()
        for cut in range(len(encoded)):
            with pytest.raises(ReproError):
                CommitmentMsg.decode(encoded[:cut])

    def test_bit_flips_never_crash(self):
        msg = SampleChallengeMsg(task_id="fuzz", indices=(1, 2, 300, 4))
        encoded = bytearray(msg.encode())
        for i in range(len(encoded)):
            mutated = bytearray(encoded)
            mutated[i] ^= 0xFF
            _try_decode(SampleChallengeMsg.decode, bytes(mutated))


class TestUnicodeHostility:
    def test_non_utf8_task_id_rejected_cleanly(self):
        # A hostile peer can put invalid UTF-8 where a task id belongs;
        # the decoder surface must not explode with UnicodeDecodeError
        # escaping as-is... we accept either clean CodecError or the
        # documented ValueError subclass.
        from repro.utils.encoding import encode_bytes, encode_uint

        hostile = encode_bytes(b"\xff\xfe") + encode_uint(1) + encode_bytes(b"")
        try:
            VerdictMsg.decode(hostile)
        except (ReproError, UnicodeDecodeError):
            pass
