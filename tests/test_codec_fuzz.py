"""Fuzz tests: decoders must reject garbage with CodecError, never crash.

A production wire layer faces hostile bytes; every ``decode`` in the
protocol either returns a valid message or raises a codec/Merkle error
— no ``IndexError``/``OverflowError``/silent nonsense.  The same
contract covers the service layer's length-prefixed JSON frames
(:mod:`repro.service.codec`): a listening supervisor socket must shrug
off truncation, corruption and arbitrary bytes with a clean
:class:`~repro.exceptions.ProtocolError`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import (
    AssignMsg,
    BatchProofMsg,
    CommitmentMsg,
    FullResultsMsg,
    NICBSSubmissionMsg,
    ProofBundleMsg,
    ReportsMsg,
    SampleChallengeMsg,
    SampleProof,
    VerdictMsg,
)
from repro.exceptions import ProtocolError, ReproError
from repro.merkle.multiproof import MerkleMultiProof
from repro.merkle.proof import AuthenticationPath
from repro.merkle.serialize import decode_auth_path
from repro.merkle.tree import LeafEncoding
from repro.exceptions import CodecError
from repro.service.codec import (
    CLUSTER_WIRE_VERSION,
    COMPAT_CLUSTER_WIRE_VERSIONS,
    ByeFrame,
    ChallengeFrame,
    CommitmentFrame,
    ErrorFrame,
    HeartbeatFrame,
    JobFrame,
    ProofsFrame,
    ResultEndFrame,
    ResultFrame,
    ResultPartFrame,
    StatsReply,
    StatsRequest,
    SubmissionFrame,
    TaskAssign,
    TaskRequest,
    TraceGetRequest,
    TraceReply,
    VerdictFrame,
    WorkerHello,
    decode_cluster_chunk,
    decode_cluster_outcomes,
    decode_cluster_payload,
    decode_frame,
    decode_frame_payload,
    encode_cluster_chunk,
    encode_cluster_outcomes,
    encode_cluster_payload,
    encode_frame,
)

DECODERS = [
    CommitmentMsg.decode,
    SampleChallengeMsg.decode,
    ProofBundleMsg.decode,
    BatchProofMsg.decode,
    NICBSSubmissionMsg.decode,
    FullResultsMsg.decode,
    ReportsMsg.decode,
    VerdictMsg.decode,
    AssignMsg.decode,
    MerkleMultiProof.decode,
    decode_auth_path,
]


def _try_decode(decoder, data: bytes) -> None:
    try:
        decoder(data)
    except ReproError:
        pass  # the contract: a library error, nothing else
    except UnicodeDecodeError:
        pytest.fail(f"{decoder}: unicode error leaked for {data!r}")


class TestGarbageRejection:
    @pytest.mark.parametrize("decoder", DECODERS, ids=lambda d: repr(d)[:40])
    def test_empty_input(self, decoder):
        _try_decode(decoder, b"")

    @pytest.mark.parametrize("decoder", DECODERS, ids=lambda d: repr(d)[:40])
    @given(data=st.binary(max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_random_bytes(self, decoder, data):
        _try_decode(decoder, data)

    @given(data=st.binary(min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_truncated_valid_messages(self, data):
        # Encode a real message, truncate at every prefix: decoder must
        # reject every strict prefix.
        msg = CommitmentMsg(task_id="fuzz", root=data, n_leaves=max(len(data), 1))
        encoded = msg.encode()
        for cut in range(len(encoded)):
            with pytest.raises(ReproError):
                CommitmentMsg.decode(encoded[:cut])

    def test_bit_flips_never_crash(self):
        msg = SampleChallengeMsg(task_id="fuzz", indices=(1, 2, 300, 4))
        encoded = bytearray(msg.encode())
        for i in range(len(encoded)):
            mutated = bytearray(encoded)
            mutated[i] ^= 0xFF
            _try_decode(SampleChallengeMsg.decode, bytes(mutated))


_task_ids = st.text(max_size=12)
_digests = st.binary(min_size=8, max_size=8)


@st.composite
def _auth_paths(draw):
    height = draw(st.integers(min_value=0, max_value=4))
    n_leaves = 1 << height
    return AuthenticationPath(
        leaf_index=draw(st.integers(min_value=0, max_value=n_leaves - 1)),
        siblings=draw(
            st.lists(_digests, min_size=height, max_size=height)
        ),
        n_leaves=n_leaves,
        leaf_encoding=draw(st.sampled_from(list(LeafEncoding))),
    )


@st.composite
def _sample_proofs(draw):
    return SampleProof(
        index=draw(st.integers(min_value=0, max_value=1 << 20)),
        claimed_result=draw(st.binary(max_size=16)),
        path=draw(_auth_paths()),
    )


# Optional trace/span ids: absent (None) or 1..64 chars of printable
# text — the codec's validity window for the tid/sid wire fields.
_required_ids = st.text(
    min_size=1,
    max_size=64,
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
)
_trace_ids = st.one_of(st.none(), _required_ids)

# Scalar attribute values inside the wire-span validity window.
_span_attr_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 30), max_value=1 << 30),
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    st.text(max_size=32),
)


@st.composite
def _wire_span_dicts(draw):
    """One valid ``sp`` element (wire v4's optional span payload)."""
    item = {
        "tid": draw(_required_ids),
        "sid": draw(_required_ids),
        "name": draw(st.text(min_size=1, max_size=120)),
        "ts": draw(st.floats(min_value=0, max_value=2e9, allow_nan=False)),
        "dur": draw(st.floats(min_value=0, max_value=1e6, allow_nan=False)),
    }
    if draw(st.booleans()):
        item["pid"] = draw(_required_ids)
    if draw(st.booleans()):
        item["st"] = draw(st.text(min_size=1, max_size=120))
    if draw(st.booleans()):
        item["attrs"] = draw(
            st.dictionaries(
                st.text(max_size=32), _span_attr_values, max_size=4
            )
        )
    return item


_wire_span_lists = st.lists(_wire_span_dicts(), max_size=3).map(tuple)


@st.composite
def _wire_frames(draw):
    kind = draw(st.integers(min_value=0, max_value=18))
    task_id = draw(_task_ids)
    if kind == 13:
        return ResultPartFrame(
            job_id=draw(st.integers(min_value=0, max_value=1 << 32)),
            seq=draw(st.integers(min_value=0, max_value=1 << 16)),
            payload=draw(st.binary(max_size=64)),
        )
    if kind == 14:
        return ResultEndFrame(
            job_id=draw(st.integers(min_value=0, max_value=1 << 32)),
            parts=draw(st.integers(min_value=1, max_value=1 << 16)),
            spans=draw(_wire_span_lists),
        )
    if kind == 8:
        return WorkerHello(
            worker_id=draw(st.text(max_size=16)),
            capacity=draw(st.integers(min_value=1, max_value=256)),
        )
    if kind == 9:
        return HeartbeatFrame(worker_id=draw(st.text(max_size=16)))
    if kind == 10:
        return JobFrame(
            job_id=draw(st.integers(min_value=0, max_value=1 << 32)),
            payload=draw(st.binary(max_size=64)),
            trace_id=draw(_trace_ids),
            span_id=draw(_trace_ids),
        )
    if kind == 15:
        return StatsRequest()
    if kind == 16:
        return StatsReply(
            stats=draw(
                st.dictionaries(
                    st.text(max_size=12),
                    st.one_of(
                        st.integers(min_value=-(1 << 30), max_value=1 << 30),
                        st.text(max_size=12),
                    ),
                    max_size=4,
                )
            )
        )
    if kind == 11:
        return ResultFrame(
            job_id=draw(st.integers(min_value=0, max_value=1 << 32)),
            ok=draw(st.booleans()),
            payload=draw(st.binary(max_size=64)),
            spans=draw(_wire_span_lists),
        )
    if kind == 17:
        return TraceGetRequest(trace_id=draw(_required_ids))
    if kind == 18:
        return TraceReply(
            trace_id=draw(_required_ids),
            spans=draw(_wire_span_lists),
        )
    if kind == 12:
        return ByeFrame(reason=draw(st.text(max_size=30)))
    if kind == 0:
        return TaskRequest(
            participant=draw(
                st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 20))
            ),
            trace_id=draw(_trace_ids),
            span_id=draw(_trace_ids),
        )
    if kind == 1:
        start = draw(st.integers(min_value=0, max_value=1 << 16))
        size = draw(st.integers(min_value=1, max_value=1 << 10))
        return TaskAssign(
            assign=AssignMsg(
                task_id=task_id,
                n_inputs=size,
                workload=draw(st.text(max_size=20)),
            ),
            participant=draw(st.integers(min_value=0, max_value=1 << 16)),
            domain_start=start,
            domain_stop=start + size,
            protocol=draw(st.sampled_from(["cbs", "ni-cbs"])),
            n_samples=draw(st.integers(min_value=1, max_value=64)),
            hash_name=draw(st.sampled_from(["sha256", "sha512", "md5"])),
            sample_hash_name=draw(st.sampled_from(["sha256", "md5^3"])),
            leaf_encoding=draw(st.sampled_from(["hashed", "raw"])),
            seed=draw(st.integers(min_value=0, max_value=1 << 40)),
        )
    if kind == 2:
        return CommitmentFrame(
            msg=CommitmentMsg(
                task_id=task_id,
                root=draw(st.binary(max_size=40)),
                n_leaves=draw(st.integers(min_value=0, max_value=1 << 20)),
            )
        )
    if kind == 3:
        return ChallengeFrame(
            msg=SampleChallengeMsg(
                task_id=task_id,
                indices=tuple(
                    draw(
                        st.lists(
                            st.integers(min_value=0, max_value=1 << 20),
                            max_size=8,
                        )
                    )
                ),
            )
        )
    if kind == 4:
        return ProofsFrame(
            msg=ProofBundleMsg(
                task_id=task_id,
                proofs=tuple(draw(st.lists(_sample_proofs(), max_size=4))),
            )
        )
    if kind == 5:
        return SubmissionFrame(
            msg=NICBSSubmissionMsg(
                task_id=task_id,
                root=draw(st.binary(max_size=40)),
                n_leaves=draw(st.integers(min_value=0, max_value=1 << 20)),
                proofs=tuple(draw(st.lists(_sample_proofs(), max_size=4))),
            )
        )
    if kind == 6:
        return VerdictFrame(
            msg=VerdictMsg(
                task_id=task_id,
                accepted=draw(st.booleans()),
                reason=draw(st.text(max_size=20)),
            )
        )
    return ErrorFrame(message=draw(st.text(max_size=40)))


class TestServiceFrames:
    """The service's JSON frame layer honours the same contract."""

    @given(frame=_wire_frames())
    @settings(max_examples=80, deadline=None)
    def test_round_trip_identity(self, frame):
        assert decode_frame(encode_frame(frame)) == frame

    @given(data=st.binary(max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_random_bytes_rejected_cleanly(self, data):
        try:
            decode_frame(data)
        except ReproError:
            pass

    @given(frame=_wire_frames())
    @settings(max_examples=30, deadline=None)
    def test_every_truncation_rejected(self, frame):
        encoded = encode_frame(frame)
        for cut in range(len(encoded)):
            with pytest.raises(ProtocolError):
                decode_frame(encoded[:cut])

    @given(frame=_wire_frames(), data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_bit_flips_never_crash(self, frame, data):
        encoded = bytearray(encode_frame(frame))
        position = data.draw(
            st.integers(min_value=0, max_value=len(encoded) - 1)
        )
        encoded[position] ^= 0xFF
        try:
            decode_frame(bytes(encoded))
        except ReproError:
            pass  # rejection is fine; crashing is not

    def test_payload_fuzz_without_header(self):
        for payload in (b"", b"{", b"null", b"[]", b'{"t": 1}',
                        b'{"t": "nope"}', b'{"t": "commitment"}',
                        b'{"t": "commitment", "m": "!!!"}',
                        b'{"t": "assign", "m": 3}',
                        b'\xff\xfe{"t": "error"}'):
            with pytest.raises(ReproError):
                decode_frame_payload(payload)


class TestClusterEnvelope:
    """The typed job/result envelope: corrupted, truncated, oversized
    and wrong-version frames must raise CodecError/ProtocolError —
    both ReproError — and never crash a worker with anything else."""

    @given(data=st.binary(max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_corrupted_payload_bytes(self, data):
        try:
            decode_cluster_payload(data)
        except CodecError:
            pass  # rejection is the contract; any other crash is a bug

    def test_truncated_payload_every_prefix(self):
        encoded = encode_cluster_payload({"chunk": list(range(50))})
        for cut in range(len(encoded)):
            with pytest.raises(CodecError):
                decode_cluster_payload(encoded[:cut])

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_bit_flipped_payload(self, data):
        encoded = bytearray(encode_cluster_payload(("fn", (1, 2), {})))
        position = data.draw(
            st.integers(min_value=0, max_value=len(encoded) - 1)
        )
        encoded[position] ^= 0xFF
        try:
            decode_cluster_payload(bytes(encoded))
        except ReproError:
            pass  # CodecError expected; a changed-but-valid value is fine

    def test_oversized_payload_rejected_both_ways(self):
        with pytest.raises(CodecError):
            encode_cluster_payload(b"\x00" * 129, max_bytes=64)
        with pytest.raises(CodecError):
            decode_cluster_payload(b"\x00" * 129, max_bytes=64)

    def test_unregistered_callable_rejected_at_encode(self):
        # Jobs are data, never code: a callable that was never
        # register_callable()'d cannot even leave the coordinator.
        with pytest.raises(CodecError):
            encode_cluster_payload(lambda: None)

    @pytest.mark.parametrize(
        "tag", ["job", "result", "result_part", "result_end"]
    )
    def test_wrong_version_rejected(self, tag):
        import base64
        import json

        obj = {
            "t": tag,
            "id": 0,
            "p": base64.b64encode(b"x").decode("ascii"),
            "v": CLUSTER_WIRE_VERSION + 1,
        }
        if tag == "result":
            obj["ok"] = True
        if tag == "result_part":
            obj["seq"] = 0
        if tag == "result_end":
            del obj["p"]
            obj["parts"] = 1
        with pytest.raises(CodecError):
            decode_frame_payload(json.dumps(obj).encode("utf-8"))

    def test_oversized_job_frame_rejected_at_encode(self):
        from repro.service.codec import MAX_CLUSTER_PAYLOAD_BYTES

        frame = JobFrame(
            job_id=0, payload=b"\x00" * (MAX_CLUSTER_PAYLOAD_BYTES + 1)
        )
        with pytest.raises(CodecError):
            encode_frame(frame, max_frame=1 << 62)

    def test_truncated_job_frames_rejected(self):
        encoded = encode_frame(
            JobFrame(job_id=3, payload=encode_cluster_payload((1, 2, 3)))
        )
        for cut in range(len(encoded)):
            with pytest.raises(ProtocolError):
                decode_frame(encoded[:cut])

    def test_malformed_cluster_json_rejected(self):
        v = CLUSTER_WIRE_VERSION
        for payload in (
            b'{"t": "job"}',
            b'{"t": "job", "id": -1, "p": "", "v": %d}' % v,
            b'{"t": "job", "id": 0, "p": "!!", "v": %d}' % v,
            b'{"t": "result", "id": 0, "p": "", "v": %d}' % v,
            b'{"t": "result", "id": 0, "p": "", "ok": "yes", "v": %d}' % v,
            b'{"t": "hello", "worker": "w", "capacity": 0, "v": %d}' % v,
            b'{"t": "hello", "worker": "w", "capacity": 1}',
            b'{"t": "heartbeat"}',
            b'{"t": "bye"}',
            b'{"t": "result_part"}',
            b'{"t": "result_part", "id": 0, "p": "", "v": %d}' % v,
            b'{"t": "result_part", "id": 0, "seq": -1, "p": "", "v": %d}' % v,
            b'{"t": "result_part", "id": -1, "seq": 0, "p": "", "v": %d}' % v,
            b'{"t": "result_part", "id": 0, "seq": 0, "p": "!!", "v": %d}' % v,
            b'{"t": "result_part", "id": 0, "seq": true, "p": "", "v": %d}' % v,
            b'{"t": "result_end"}',
            b'{"t": "result_end", "id": 0, "v": %d}' % v,
            b'{"t": "result_end", "id": 0, "parts": 0, "v": %d}' % v,
            b'{"t": "result_end", "id": -3, "parts": 1, "v": %d}' % v,
            b'{"t": "result_end", "id": 0, "parts": "many", "v": %d}' % v,
        ):
            with pytest.raises(ReproError):
                decode_frame_payload(payload)

    def test_pre_v5_payload_frames_rejected(self):
        """Wire v5 replaced the job payload encoding wholesale (typed
        codec instead of pickle), so there is no cross-version payload
        compatibility: v3/v4 job and result frames must be refused —
        accepting one would hand pickle bytes to a typed decoder."""
        import base64
        import json

        assert COMPAT_CLUSTER_WIRE_VERSIONS == frozenset(
            {CLUSTER_WIRE_VERSION}
        )
        assert CLUSTER_WIRE_VERSION == 5
        payload = base64.b64encode(b"x").decode("ascii")
        for old in (3, 4):
            with pytest.raises(CodecError):
                decode_frame_payload(json.dumps(
                    {"t": "result", "id": 7, "ok": True,
                     "p": payload, "v": old}
                ).encode())
            with pytest.raises(CodecError):
                decode_frame_payload(json.dumps(
                    {"t": "job", "id": 7, "p": payload, "v": old}
                ).encode())
            with pytest.raises(CodecError):
                decode_frame_payload(json.dumps(
                    {"t": "result_end", "id": 7, "parts": 2, "v": old}
                ).encode())

    def test_pre_v5_hello_still_parses_for_polite_rejection(self):
        """The ``hello`` version field is shape-checked but not gated
        at decode: the coordinator must be able to *read* a v4 peer's
        hello so it can answer with a clear upgrade message instead of
        a silent parse error (the gate lives in ``_serve_worker``)."""
        import json

        hello = decode_frame_payload(json.dumps(
            {"t": "hello", "worker": "w-old", "capacity": 2, "v": 4}
        ).encode())
        assert isinstance(hello, WorkerHello)
        assert hello.version == 4
        assert hello.version not in COMPAT_CLUSTER_WIRE_VERSIONS

    def test_result_spans_round_trip(self):
        spans = (
            {"tid": "t1", "sid": "s1", "name": "worker.execute",
             "ts": 1.5, "dur": 0.25, "pid": "p1",
             "attrs": {"worker": "w-0", "jobs": 3}},
        )
        for frame in (
            ResultFrame(job_id=1, ok=True, payload=b"x", spans=spans),
            ResultEndFrame(job_id=1, parts=2, spans=spans),
        ):
            assert decode_frame(encode_frame(frame)) == frame

    @pytest.mark.parametrize(
        "sp",
        [
            "not-a-list",
            {"tid": "t"},
            [{"tid": "t1", "sid": "s1", "name": "n", "ts": 0, "dur": 0,
              "evil": 1}],
            [{"tid": "t1", "sid": "s1", "name": "", "ts": 0, "dur": 0}],
            [{"tid": "t1", "sid": "s1", "name": "n", "ts": "x", "dur": 0}],
            [{"tid": "t1", "sid": "s1", "name": "n", "ts": 0, "dur": -1}],
            [{"tid": "t" * 200, "sid": "s1", "name": "n", "ts": 0, "dur": 0}],
            [{"tid": "t1", "sid": "s1", "name": "n", "ts": 0, "dur": 0,
              "attrs": {"k": {"nested": 1}}}],
            [{"tid": "t1", "sid": "s1", "name": "n", "ts": 0, "dur": 0}] * 64,
        ],
    )
    def test_junk_span_payloads_rejected(self, sp):
        """Hostile ``sp`` values are ProtocolErrors — same policy as
        junk ``tid``/``sid``: reject the frame, never crash."""
        import base64
        import json

        obj = {
            "t": "result", "id": 0, "ok": True,
            "p": base64.b64encode(b"x").decode("ascii"),
            "v": CLUSTER_WIRE_VERSION, "sp": sp,
        }
        with pytest.raises(ProtocolError):
            decode_frame_payload(json.dumps(obj).encode("utf-8"))

    def test_trace_frames_round_trip_and_reject_junk(self):
        import json

        frame = TraceReply(
            trace_id="t1",
            spans=({"tid": "t1", "sid": "s1", "name": "n",
                    "ts": 0.0, "dur": 0.0},),
        )
        assert decode_frame(encode_frame(frame)) == frame
        request = TraceGetRequest(trace_id="t1")
        assert decode_frame(encode_frame(request)) == request
        for payload in (
            {"t": "trace_get"},                      # tid required
            {"t": "trace_get", "tid": ""},
            {"t": "trace_get", "tid": "t" * 200},
            {"t": "trace", "sp": []},                # tid required
            {"t": "trace", "tid": "t1", "sp": "x"},  # junk span list
        ):
            with pytest.raises(ProtocolError):
                decode_frame_payload(json.dumps(payload).encode("utf-8"))

    def test_oversized_result_part_rejected_at_encode(self):
        from repro.service.codec import MAX_CLUSTER_PAYLOAD_BYTES

        frame = ResultPartFrame(
            job_id=0, seq=0,
            payload=b"\x00" * (MAX_CLUSTER_PAYLOAD_BYTES + 1),
        )
        with pytest.raises(CodecError):
            encode_frame(frame, max_frame=1 << 62)


class TestChunkAndOutcomeEnvelopes:
    """The multi-job chunk and per-job outcome envelopes under hostile
    bytes: truncated, corrupted, mis-shaped and oversized inputs must
    raise CodecError, never crash either side of the cluster plane."""

    @given(data=st.binary(max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_random_bytes_rejected(self, data):
        for decoder in (decode_cluster_chunk, decode_cluster_outcomes):
            try:
                decoder(data)
            except CodecError:
                pass

    def test_truncated_chunk_every_prefix(self):
        encoded = encode_cluster_chunk(
            [encode_cluster_payload((i, i)) for i in range(8)]
        )
        for cut in range(len(encoded)):
            with pytest.raises(CodecError):
                decode_cluster_chunk(encoded[:cut])

    def test_truncated_outcomes_every_prefix(self):
        encoded = encode_cluster_outcomes(
            [(True, b"abc" * 5), (False, b"err")]
        )
        for cut in range(len(encoded)):
            with pytest.raises(CodecError):
                decode_cluster_outcomes(encoded[:cut])

    def test_round_trips(self):
        payloads = [encode_cluster_payload(("x", i)) for i in range(5)]
        assert decode_cluster_chunk(
            encode_cluster_chunk(payloads)
        ) == tuple(payloads)
        entries = [(True, b"one"), (False, b"two"), (True, b"")]
        assert decode_cluster_outcomes(
            encode_cluster_outcomes(entries)
        ) == entries

    def test_wrong_shapes_rejected(self):
        # Typed *value* payloads are junk to the chunk/outcome span
        # framers: the envelopes have their own byte layout, so a
        # payload-encoded object of any shape must be refused.
        for obj in ("chunk", [1, 2], [(True, "not-bytes")],
                    [(1, b"x")], [("True", b"x")], [(True,)],
                    {1: b"x"}, ()):
            raw = encode_cluster_payload(obj)
            with pytest.raises(CodecError):
                decode_cluster_chunk(raw)
            with pytest.raises(CodecError):
                decode_cluster_outcomes(raw)
        # An empty outcome list IS legal (a zero-entry part would be
        # odd but harmless); an empty chunk is not (see
        # test_chunk_entries_must_be_bytes_at_encode).
        assert decode_cluster_outcomes(encode_cluster_outcomes([])) == []

    def test_chunk_entries_must_be_bytes_at_encode(self):
        with pytest.raises(CodecError):
            encode_cluster_chunk(["not-bytes"])
        with pytest.raises(CodecError):
            encode_cluster_chunk([])

    def test_outcome_entries_validated_at_encode(self):
        with pytest.raises(CodecError):
            encode_cluster_outcomes([(True, "not-bytes")])
        with pytest.raises(CodecError):
            encode_cluster_outcomes([("yes", b"x")])

    def test_oversized_envelopes_rejected_both_ways(self):
        with pytest.raises(CodecError):
            encode_cluster_chunk([b"\x00" * 256], max_bytes=64)
        with pytest.raises(CodecError):
            decode_cluster_chunk(b"\x00" * 129, max_bytes=64)
        with pytest.raises(CodecError):
            encode_cluster_outcomes([(True, b"\x00" * 256)], max_bytes=64)
        with pytest.raises(CodecError):
            decode_cluster_outcomes(b"\x00" * 129, max_bytes=64)


class TestTypedCodecLimits:
    """The typed value codec's size caps fire on the *declared* sizes,
    before allocation: a hostile peer lying in a length field cannot
    make the decoder reserve memory it never received bytes for."""

    def test_lying_field_lengths_rejected(self):
        from repro.service.jobcodec import MAX_FIELD_BYTES, Tag
        from repro.utils.encoding import encode_uint

        for tag in (Tag.STR, Tag.BYTES):
            raw = bytes([tag]) + encode_uint(MAX_FIELD_BYTES + 1)
            with pytest.raises(CodecError, match="exceeds limit"):
                decode_cluster_payload(raw)

    def test_lying_container_counts_rejected(self):
        from repro.service.jobcodec import MAX_CONTAINER_ITEMS, Tag
        from repro.utils.encoding import encode_uint

        for tag in (Tag.TUPLE, Tag.LIST, Tag.DICT, Tag.SET):
            raw = bytes([tag]) + encode_uint(MAX_CONTAINER_ITEMS + 1)
            with pytest.raises(CodecError, match="exceeds limit"):
                decode_cluster_payload(raw)

    def test_depth_bomb_rejected_both_ways(self):
        from repro.service.jobcodec import MAX_DEPTH, Tag

        # [[[…[None]…]]] crafted directly: LIST(count=1) nested past
        # the cap, with a real terminator so depth is the only fault.
        raw = bytes([Tag.LIST, 1]) * (MAX_DEPTH + 2) + bytes([Tag.NONE])
        with pytest.raises(CodecError, match="depth"):
            decode_cluster_payload(raw)
        nested = None
        for _ in range(MAX_DEPTH + 2):
            nested = [nested]
        with pytest.raises(CodecError, match="depth"):
            encode_cluster_payload(nested)

    def test_oversized_name_rejected(self):
        from repro.service.jobcodec import MAX_NAME_BYTES, Tag
        from repro.utils.encoding import encode_uint

        name = b"x" * (MAX_NAME_BYTES + 1)
        raw = (
            bytes([Tag.CALLABLE]) + encode_uint(0)
            + encode_uint(len(name)) + name
        )
        with pytest.raises(CodecError, match="exceeds limit"):
            decode_cluster_payload(raw)

    def test_dangling_name_reference_rejected(self):
        from repro.service.jobcodec import Tag
        from repro.utils.encoding import encode_uint

        raw = bytes([Tag.CALLABLE]) + encode_uint(7)
        with pytest.raises(CodecError, match="out of range"):
            decode_cluster_payload(raw)

    def test_every_unknown_tag_byte_rejected(self):
        from repro.service.jobcodec import Tag

        for byte in range(Tag.REF + 1, 256):
            with pytest.raises(CodecError):
                decode_cluster_payload(bytes([byte]))

    def test_oversized_field_rejected_at_encode(self):
        from repro.service.jobcodec import MAX_FIELD_BYTES

        with pytest.raises(CodecError, match="exceeds limit"):
            encode_cluster_payload(b"x" * (MAX_FIELD_BYTES + 1))


def _registered_scheme_instances():
    """One representative instance per registered scheme struct."""
    from repro.baselines.double_check import DoubleCheckScheme
    from repro.baselines.hardening import HardenedProbeScheme
    from repro.baselines.naive_sampling import NaiveSamplingScheme
    from repro.baselines.ringer import RingerScheme
    from repro.cheating.strategies import HonestBehavior, SemiHonestCheater
    from repro.core.cbs import CBSScheme
    from repro.core.ni_cbs import NICBSScheme
    from repro.merkle.tree import LeafEncoding

    return [
        CBSScheme(
            n_samples=24,
            hash_name="sha256",
            leaf_encoding=LeafEncoding.RAW,
            with_replacement=False,
            include_reports=False,
            stop_on_first_failure=False,
            batch_proofs=True,
        ),
        NICBSScheme(
            n_samples=12,
            sample_hash_name="md5^3",
            hash_name="sha256",
            subtree_height=2,
            stop_on_first_failure=False,
        ),
        NaiveSamplingScheme(8, with_replacement=False),
        DoubleCheckScheme(
            replication=3,
            replica_behaviors=[HonestBehavior(), SemiHonestCheater(0.5)],
        ),
        RingerScheme(5, require_all=False),
        HardenedProbeScheme(7),
    ]


class TestRegisteredSchemeRoundTrip:
    """Every registered verification scheme crosses the wire losslessly
    — encode → decode → re-encode is byte-identical.  That canonical-
    bytes property is what the worker's scheme cache keys on, so a
    break here silently degrades the cache, not just one payload."""

    def test_registry_covers_every_scheme_struct(self):
        from repro.service.jobcodec import (
            ensure_default_registry,
            registered_structs,
        )

        ensure_default_registry()
        scheme_names = {
            name for name in registered_structs() if name.endswith("_scheme")
        }
        assert scheme_names == {
            "cbs_scheme",
            "nicbs_scheme",
            "naive_sampling_scheme",
            "double_check_scheme",
            "ringer_scheme",
            "hardened_probe_scheme",
        }

    @pytest.mark.parametrize(
        "scheme",
        _registered_scheme_instances(),
        ids=lambda s: type(s).__name__,
    )
    def test_scheme_round_trips_canonically(self, scheme):
        raw = encode_cluster_payload(scheme)
        back = decode_cluster_payload(raw)
        assert type(back) is type(scheme)
        assert encode_cluster_payload(back) == raw

    @pytest.mark.parametrize(
        "scheme",
        _registered_scheme_instances(),
        ids=lambda s: type(s).__name__,
    )
    def test_scheme_cache_returns_shared_instance(self, scheme):
        from repro.service.jobcodec import SchemeCache

        cache = SchemeCache()
        raw = encode_cluster_payload(scheme)
        first = decode_cluster_payload(raw, cache=cache)
        second = decode_cluster_payload(raw, cache=cache)
        assert second is first  # one construction per canonical params
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_scheme_jobs_round_trip_through_batch(self):
        from repro.cheating.strategies import HonestBehavior
        from repro.core.cbs import CBSScheme
        from repro.engine.jobs import SchemeBatch, SchemeJob
        from repro.tasks.domain import RangeDomain
        from repro.tasks.result import TaskAssignment
        from repro.tasks.workloads import PasswordSearch

        assignment = TaskAssignment(
            "t-0", RangeDomain(0, 64), PasswordSearch()
        )
        batch = SchemeBatch(
            scheme=CBSScheme(n_samples=4),
            jobs=tuple(
                SchemeJob(assignment, HonestBehavior(), seed=i)
                for i in range(3)
            ),
        )
        raw = encode_cluster_payload(batch)
        back = decode_cluster_payload(raw)
        assert type(back) is SchemeBatch
        assert len(back.jobs) == 3
        assert encode_cluster_payload(back) == raw


class TestVersionSkewHandshake:
    """Live version gate: a v4 (pickle-era) peer dialing a v5
    coordinator is turned away at ``hello`` with a clear upgrade
    message, and a worker refused this way exits loudly instead of
    retrying forever."""

    def test_v4_worker_turned_away_with_upgrade_message(self):
        import asyncio
        import contextlib
        import socket
        import threading

        from repro.engine.cluster import run_worker
        from repro.engine.cluster.coordinator import ClusterExecutor
        from repro.service.codec import read_frame, write_frame
        from repro.service.jobcodec import register_callable

        def _triple(x: int) -> int:
            return x * 3

        register_callable("tests.fuzz_triple", _triple)

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        executor = ClusterExecutor(
            workers=1, port=port, spawn_local=False, startup_timeout=30.0
        )

        def worker_thread() -> None:
            async def dial() -> None:
                for _ in range(200):  # coordinator may not be bound yet
                    try:
                        await run_worker("127.0.0.1", port, engine="serial")
                        return
                    except (ConnectionError, OSError):
                        await asyncio.sleep(0.05)

            asyncio.run(dial())

        thread = threading.Thread(target=worker_thread, daemon=True)
        thread.start()
        replies = []
        try:
            # A genuine v5 worker registers and serves jobs...
            assert executor.map(_triple, range(4)) == [0, 3, 6, 9]

            async def v4_dial() -> None:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                try:
                    await write_frame(
                        writer,
                        WorkerHello(
                            worker_id="w-v4", capacity=1, version=4
                        ),
                    )
                    replies.append(
                        await asyncio.wait_for(read_frame(reader), 10)
                    )
                finally:
                    writer.close()
                    with contextlib.suppress(Exception):
                        await writer.wait_closed()

            # ...while a v4 peer is refused at hello...
            asyncio.run(v4_dial())
            # ...without disturbing the registered v5 worker.
            assert executor.map(_triple, range(4)) == [0, 3, 6, 9]
        finally:
            executor.close()
        thread.join(timeout=10)
        (bye,) = replies
        assert isinstance(bye, ByeFrame)
        assert bye.reason.startswith("incompatible cluster wire version 4")
        assert "upgrade the worker" in bye.reason

    def test_refused_worker_exits_loudly(self):
        import asyncio

        from repro.engine.cluster import run_worker
        from repro.exceptions import EngineError
        from repro.service.codec import read_frame, write_frame

        async def scenario() -> None:
            async def refuse(reader, writer) -> None:
                await read_frame(reader)  # the hello
                await write_frame(
                    writer,
                    ByeFrame(
                        reason=(
                            "incompatible cluster wire version 5: this "
                            "coordinator speaks v6; upgrade the worker"
                        )
                    ),
                )
                writer.close()

            server = await asyncio.start_server(refuse, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(
                    EngineError, match="coordinator refused worker"
                ):
                    await run_worker("127.0.0.1", port, engine="serial")
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())


class TestFramingFuzz:
    """The raw length-prefix layer under hostile bytes: every parse
    path (one-shot buffer, sync stream, asyncio stream) must raise
    ProtocolError — never IndexError/MemoryError/silent nonsense — and
    the zero-copy view paths must reject exactly what the bytes paths
    reject."""

    @given(data=st.binary(max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_split_frame_buffer_random_bytes(self, data):
        from repro.net.framing import split_frame_buffer

        for convert in (bytes, bytearray, memoryview):
            try:
                split_frame_buffer(convert(data), max_frame=4096)
            except ProtocolError:
                pass

    @given(data=st.binary(max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_sync_reader_random_bytes(self, data):
        import io

        from repro.net.framing import read_frame_bytes_sync

        stream = io.BytesIO(data)
        try:
            while read_frame_bytes_sync(stream, max_frame=4096) is not None:
                pass
        except ProtocolError:
            pass

    @given(payload=st.binary(max_size=100), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_bit_flipped_header_never_crashes(self, payload, data):
        import io

        from repro.net.framing import frame_buffer, read_frame_bytes_sync

        encoded = bytearray(frame_buffer(payload))
        position = data.draw(
            st.integers(min_value=0, max_value=len(encoded) - 1)
        )
        encoded[position] ^= 0xFF
        stream = io.BytesIO(bytes(encoded))
        try:
            read_frame_bytes_sync(stream, max_frame=4096)
        except ProtocolError:
            pass  # a flipped length prefix truncates or overflows

    @given(data=st.binary(max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_async_reader_random_bytes(self, data):
        import asyncio

        from repro.net.framing import read_frame_bytes

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            try:
                while await read_frame_bytes(reader, max_frame=4096) is not None:
                    pass
            except ProtocolError:
                pass

        asyncio.run(scenario())


class TestAuthHandshakeFuzz:
    """The repro.net auth handshake under hostile input: garbage,
    truncation and bit flips must raise AuthError (a ReproError) on
    both planes' gatekeepers — never hang, never crash with anything
    else, and never fall through to a pickle or JSON decode."""

    def _decoders(self):
        from repro.net import auth

        return [auth.decode_challenge, auth.decode_response, auth.decode_confirm]

    @given(data=st.binary(max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_random_bytes_rejected(self, data):
        from repro.exceptions import AuthError

        for decoder in self._decoders():
            with pytest.raises(AuthError):
                decoder(data)
            # A hostile peer can also prepend the real magic.
            from repro.net.auth import AUTH_MAGIC

            try:
                decoder(AUTH_MAGIC + data)
            except AuthError:
                pass

    def test_truncated_valid_frames_every_prefix(self):
        from repro.exceptions import AuthError
        from repro.net import auth

        frames = [
            (auth.decode_challenge, auth.encode_challenge(b"n" * 32)),
            (auth.decode_response, auth.encode_response(b"n" * 32, b"m" * 32)),
            (auth.decode_confirm, auth.encode_confirm(b"m" * 32)),
        ]
        for decoder, encoded in frames:
            for cut in range(len(encoded)):
                with pytest.raises(AuthError):
                    decoder(encoded[:cut])

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_bit_flipped_frames_never_crash(self, data):
        from repro.net import auth

        encoded = bytearray(auth.encode_response(b"n" * 32, b"m" * 32))
        position = data.draw(
            st.integers(min_value=0, max_value=len(encoded) - 1)
        )
        encoded[position] ^= 0xFF
        try:
            auth.decode_response(bytes(encoded))
        except ReproError:
            pass  # rejection is fine (a flipped nonce byte still decodes)

    @given(hostile=st.binary(max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_server_handshake_survives_framed_garbage(self, hostile):
        """Feed arbitrary framed bytes where the auth response belongs:
        the server side must reject within its timeout, cleanly."""
        import asyncio

        from repro.exceptions import AuthError
        from repro.net.auth import authenticate_server
        from repro.net.framing import MAX_AUTH_FRAME_BYTES, frame_buffer
        from repro.service.server import memory_duplex

        async def scenario():
            (sr, sw), (cr, cw) = memory_duplex()
            server = asyncio.ensure_future(
                authenticate_server(
                    sr, sw, b"0123456789abcdef0123456789abcdef", timeout=2.0
                )
            )
            await asyncio.sleep(0)  # let the challenge go out
            if len(hostile) <= MAX_AUTH_FRAME_BYTES:
                cw.write(frame_buffer(hostile, max_frame=MAX_AUTH_FRAME_BYTES))
            else:
                cw.write(hostile)
            cw.close()
            with pytest.raises(AuthError):
                await server

        asyncio.run(asyncio.wait_for(scenario(), timeout=30))

    @given(hostile=st.binary(max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_client_handshake_survives_framed_garbage(self, hostile):
        """A rogue listener feeding garbage where the challenge belongs
        cannot hang or crash a keyed client."""
        import asyncio

        from repro.exceptions import AuthError
        from repro.net.auth import authenticate_client
        from repro.net.framing import MAX_AUTH_FRAME_BYTES, frame_buffer
        from repro.service.server import memory_duplex

        async def scenario():
            (sr, sw), (cr, cw) = memory_duplex()
            client = asyncio.ensure_future(
                authenticate_client(
                    cr, cw, b"0123456789abcdef0123456789abcdef", timeout=2.0
                )
            )
            await asyncio.sleep(0)
            if len(hostile) <= MAX_AUTH_FRAME_BYTES:
                sw.write(frame_buffer(hostile, max_frame=MAX_AUTH_FRAME_BYTES))
            else:
                sw.write(hostile)
            sw.close()
            with pytest.raises(AuthError):
                await client

        asyncio.run(asyncio.wait_for(scenario(), timeout=30))

    def test_giant_pre_auth_length_prefix_rejected(self):
        """An unauthenticated peer claiming a huge frame is rejected at
        the tiny auth cap — before any allocation, any JSON, any pickle."""
        import asyncio

        from repro.exceptions import AuthError
        from repro.net.auth import authenticate_server
        from repro.service.server import memory_duplex

        async def scenario():
            (sr, sw), (cr, cw) = memory_duplex()
            server = asyncio.ensure_future(
                authenticate_server(
                    sr, sw, b"0123456789abcdef0123456789abcdef", timeout=2.0
                )
            )
            await asyncio.sleep(0)
            cw.write((64 * 1024 * 1024).to_bytes(4, "big"))
            with pytest.raises(AuthError):
                await server

        asyncio.run(asyncio.wait_for(scenario(), timeout=30))


class TestUnicodeHostility:
    def test_non_utf8_task_id_rejected_cleanly(self):
        # A hostile peer can put invalid UTF-8 where a task id belongs;
        # the decoder surface must not explode with UnicodeDecodeError
        # escaping as-is... we accept either clean CodecError or the
        # documented ValueError subclass.
        from repro.utils.encoding import encode_bytes, encode_uint

        hostile = encode_bytes(b"\xff\xfe") + encode_uint(1) + encode_bytes(b"")
        try:
            VerdictMsg.decode(hostile)
        except (ReproError, UnicodeDecodeError):
            pass
