"""Tests for the O(log n)-memory streaming Merkle builder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyTreeError, MerkleError
from repro.merkle import MerkleTree, StreamingMerkleBuilder, get_hash
from repro.merkle.tree import LeafEncoding


def leaves(n: int) -> list[bytes]:
    return [f"payload-{i}".encode() for i in range(n)]


class TestRootEquivalence:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 9, 31, 32, 100])
    def test_matches_in_memory_tree(self, n):
        data = leaves(n)
        builder = StreamingMerkleBuilder()
        builder.add_leaves(data)
        assert builder.finalize() == MerkleTree(data).root

    def test_matches_with_md5(self):
        data = leaves(10)
        builder = StreamingMerkleBuilder(hash_fn=get_hash("md5"))
        builder.add_leaves(data)
        assert builder.root == MerkleTree(data, hash_fn=get_hash("md5")).root

    def test_raw_encoding(self):
        h = get_hash("sha256")
        data = [h.digest(bytes([i])) for i in range(6)]
        builder = StreamingMerkleBuilder(leaf_encoding=LeafEncoding.RAW)
        builder.add_leaves(data)
        expected = MerkleTree(data, leaf_encoding=LeafEncoding.RAW).root
        assert builder.root == expected

    @given(st.lists(st.binary(max_size=24), min_size=1, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_property_equivalence(self, data):
        builder = StreamingMerkleBuilder()
        builder.add_leaves(data)
        assert builder.root == MerkleTree(data).root


class TestLifecycle:
    def test_finalize_idempotent(self):
        builder = StreamingMerkleBuilder()
        builder.add_leaves(leaves(5))
        assert builder.finalize() == builder.finalize() == builder.root

    def test_add_after_finalize_rejected(self):
        builder = StreamingMerkleBuilder()
        builder.add_leaf(b"a")
        builder.finalize()
        with pytest.raises(MerkleError):
            builder.add_leaf(b"b")

    def test_empty_finalize_rejected(self):
        with pytest.raises(EmptyTreeError):
            StreamingMerkleBuilder().finalize()

    def test_height_before_leaves_rejected(self):
        with pytest.raises(EmptyTreeError):
            StreamingMerkleBuilder().height

    def test_height(self):
        builder = StreamingMerkleBuilder()
        builder.add_leaves(leaves(9))
        assert builder.height == 4


class TestMemoryBound:
    def test_stack_stays_logarithmic(self):
        builder = StreamingMerkleBuilder()
        for i in range(1024):
            builder.add_leaf(bytes([i % 256]))
            assert len(builder._stack) <= 11
        builder.finalize()


class TestCapture:
    def test_captured_top_levels_match_tree(self):
        n, ell = 32, 2
        data = leaves(n)
        builder = StreamingMerkleBuilder(capture_above_level=ell)
        builder.add_leaves(data)
        builder.finalize()
        captured = builder.captured_levels()
        tree = MerkleTree(data)
        # Height h from leaves = tree level (tree.height - h) from root.
        for h, row in captured.items():
            level = tree.height - h
            assert row == tree._levels[level], h

    def test_capture_requires_finalize(self):
        builder = StreamingMerkleBuilder(capture_above_level=1)
        builder.add_leaf(b"x")
        with pytest.raises(MerkleError):
            builder.captured_levels()

    def test_capture_zero_includes_leaf_digests(self):
        data = leaves(4)
        builder = StreamingMerkleBuilder(capture_above_level=0)
        builder.add_leaves(data)
        builder.finalize()
        captured = builder.captured_levels()
        tree = MerkleTree(data)
        assert captured[0] == tree._levels[tree.height]
