"""Tests for the factoring workload (asymmetric verification, §3.1)."""

import pytest

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme
from repro.exceptions import TaskError
from repro.tasks import FactoringTask, RangeDomain, TaskAssignment
from repro.tasks.workloads import _is_prime


class TestFactoring:
    def test_semiprime_structure(self):
        fn = FactoringTask(bits=12)
        for k in range(20):
            n = fn.semiprime(k)
            factor = int.from_bytes(fn.evaluate(k), "big")
            assert n % factor == 0
            assert _is_prime(factor)
            assert _is_prime(n // factor)

    def test_result_is_smaller_factor(self):
        fn = FactoringTask(bits=12)
        for k in range(20):
            factor = int.from_bytes(fn.evaluate(k), "big")
            assert factor * factor <= fn.semiprime(k)

    def test_deterministic(self):
        fn = FactoringTask(bits=12)
        assert fn.evaluate(7) == fn.evaluate(7)
        assert FactoringTask(bits=12).semiprime(7) == fn.semiprime(7)

    def test_verify_accepts_truth_rejects_lies(self):
        fn = FactoringTask(bits=12)
        truth = fn.evaluate(5)
        assert fn.verify(5, truth)
        assert not fn.verify(5, b"\x00" * 8)
        assert not fn.verify(5, (1).to_bytes(8, "big"))
        n = fn.semiprime(5)
        assert not fn.verify(5, n.to_bytes(8, "big"))
        # The cofactor (larger prime) is rejected: canonical answer is
        # the smaller factor.
        small = int.from_bytes(truth, "big")
        assert not fn.verify(5, (n // small).to_bytes(8, "big"))

    def test_verify_rejects_wrong_width(self):
        fn = FactoringTask(bits=12)
        assert not fn.verify(5, b"\x01\x02")

    def test_asymmetric_costs_declared(self):
        fn = FactoringTask()
        assert fn.effective_verify_cost < fn.cost / 100

    def test_bits_validated(self):
        with pytest.raises(TaskError):
            FactoringTask(bits=4)
        with pytest.raises(TaskError):
            FactoringTask(bits=30)


class TestAsymmetricVerificationEndToEnd:
    """§3.1: the supervisor verifies without re-computing."""

    def test_supervisor_pays_verify_cost_not_compute_cost(self):
        fn = FactoringTask(bits=12, cost=500.0, verify_cost=1.0)
        task = TaskAssignment("factor", RangeDomain(0, 64), fn)
        result = CBSScheme(n_samples=10, include_reports=False).run(
            task, HonestBehavior(), seed=0
        )
        assert result.outcome.accepted
        # 10 verifications at verify_cost=1.0, not cost=500.
        assert result.supervisor_ledger.verification_cost == 10.0
        assert result.participant_ledger.evaluation_cost == 64 * 500.0

    def test_cheater_still_caught(self):
        fn = FactoringTask(bits=12)
        task = TaskAssignment("factor", RangeDomain(0, 64), fn)
        result = CBSScheme(n_samples=20).run(
            task, SemiHonestCheater(0.5), seed=1
        )
        assert not result.outcome.accepted

    def test_verification_cost_advantage_vs_recompute_workload(self):
        # Same domain, same m: the factoring supervisor is ~500x
        # cheaper per sample than one that must re-evaluate.
        from repro.tasks import PasswordSearch

        expensive_pw = PasswordSearch(cost=500.0)
        cheap_verify = FactoringTask(bits=12, cost=500.0, verify_cost=1.0)
        dom = RangeDomain(0, 64)
        m = 10
        pw_run = CBSScheme(m, include_reports=False).run(
            TaskAssignment("pw", dom, expensive_pw), HonestBehavior(), seed=0
        )
        fac_run = CBSScheme(m, include_reports=False).run(
            TaskAssignment("fa", dom, cheap_verify), HonestBehavior(), seed=0
        )
        assert (
            fac_run.supervisor_ledger.verification_cost
            < pw_run.supervisor_ledger.verification_cost / 100
        )
