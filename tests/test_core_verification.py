"""Failure-injection tests for supervisor-side sample verification.

Theorem 2's guarantee is only as good as the verifier's checks; these
tests tamper with every field of a valid proof and assert rejection
with the right reason.
"""

import pytest

from repro.core.protocol import SampleProof
from repro.core.scheme import RejectReason
from repro.core.verification import verify_sample_proof
from repro.merkle import AuthenticationPath, MerkleTree, get_hash
from repro.merkle.tree import LeafEncoding
from repro.tasks import PasswordSearch, RangeDomain


@pytest.fixture
def setup():
    fn = PasswordSearch()
    domain = RangeDomain(0, 16)
    leaves = [fn.evaluate(x) for x in domain]
    tree = MerkleTree(leaves)
    return fn, domain, leaves, tree


def proof_for(tree, leaves, index) -> SampleProof:
    return SampleProof(
        index=index, claimed_result=leaves[index], path=tree.auth_path(index)
    )


def verify(proof, index, tree, domain, fn):
    return verify_sample_proof(
        proof=proof,
        expected_index=index,
        root=tree.root,
        n_leaves=16,
        domain=domain,
        function=fn,
        hash_fn=get_hash("sha256"),
        leaf_encoding=LeafEncoding.HASHED,
    )


class TestHonestProofAccepted:
    def test_every_index(self, setup):
        fn, domain, leaves, tree = setup
        for i in range(16):
            verdict = verify(proof_for(tree, leaves, i), i, tree, domain, fn)
            assert verdict.accepted
            assert verdict.reason == RejectReason.OK


class TestTamperedProofsRejected:
    def test_wrong_claimed_result(self, setup):
        # Committed a guess: the claimed value fails the f(x) check.
        fn, domain, leaves, tree = setup
        proof = SampleProof(
            index=3, claimed_result=b"\x00" * 16, path=tree.auth_path(3)
        )
        verdict = verify(proof, 3, tree, domain, fn)
        assert not verdict.accepted
        assert verdict.reason == RejectReason.WRONG_RESULT

    def test_correct_result_wrong_commitment(self, setup):
        # The §3 attack CBS exists to stop: compute f(x) only *after*
        # learning the sample.  The value is correct but was never in
        # the tree, so root reconstruction must fail.
        fn, domain, leaves, tree = setup
        forged_leaves = list(leaves)
        forged_leaves[3] = b"\xff" * 16  # tree committed garbage at 3
        forged_tree = MerkleTree(forged_leaves)
        proof = SampleProof(
            index=3,
            claimed_result=leaves[3],  # now-correct f(x)
            path=forged_tree.auth_path(3),
        )
        verdict = verify(proof, 3, forged_tree, domain, fn)
        assert not verdict.accepted
        assert verdict.reason == RejectReason.ROOT_MISMATCH

    def test_proof_for_different_index(self, setup):
        fn, domain, leaves, tree = setup
        verdict = verify(proof_for(tree, leaves, 5), 7, tree, domain, fn)
        assert not verdict.accepted
        assert verdict.reason == RejectReason.MALFORMED_PROOF

    def test_path_index_mismatch(self, setup):
        fn, domain, leaves, tree = setup
        honest = tree.auth_path(5)
        mismatched = SampleProof(
            index=7,
            claimed_result=leaves[7],
            path=honest,  # path says leaf 5
        )
        verdict = verify(mismatched, 7, tree, domain, fn)
        assert not verdict.accepted
        assert verdict.reason == RejectReason.MALFORMED_PROOF

    def test_truncated_path(self, setup):
        fn, domain, leaves, tree = setup
        full = tree.auth_path(2)
        truncated = AuthenticationPath(
            leaf_index=2,
            siblings=list(full.siblings)[:-1],
            n_leaves=full.n_leaves,
            leaf_encoding=full.leaf_encoding,
        )
        proof = SampleProof(index=2, claimed_result=leaves[2], path=truncated)
        verdict = verify(proof, 2, tree, domain, fn)
        assert not verdict.accepted
        assert verdict.reason == RejectReason.MALFORMED_PROOF

    def test_oversized_sibling_digests(self, setup):
        fn, domain, leaves, tree = setup
        full = tree.auth_path(2)
        wrong_width = AuthenticationPath(
            leaf_index=2,
            siblings=[s + b"\x00" for s in full.siblings],
            n_leaves=full.n_leaves,
            leaf_encoding=full.leaf_encoding,
        )
        proof = SampleProof(index=2, claimed_result=leaves[2], path=wrong_width)
        verdict = verify(proof, 2, tree, domain, fn)
        assert not verdict.accepted
        assert verdict.reason == RejectReason.MALFORMED_PROOF

    def test_swapped_siblings(self, setup):
        fn, domain, leaves, tree = setup
        full = tree.auth_path(2)
        swapped = list(full.siblings)
        swapped[0], swapped[1] = swapped[1], swapped[0]
        proof = SampleProof(
            index=2,
            claimed_result=leaves[2],
            path=AuthenticationPath(
                leaf_index=2,
                siblings=swapped,
                n_leaves=full.n_leaves,
                leaf_encoding=full.leaf_encoding,
            ),
        )
        verdict = verify(proof, 2, tree, domain, fn)
        assert not verdict.accepted
        assert verdict.reason == RejectReason.ROOT_MISMATCH
