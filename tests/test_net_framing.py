"""Tests for repro.net.framing — the one length-prefix rule.

Both wire planes ride this module now, so its contract is pinned
directly: sync and asyncio variants agree byte-for-byte, caps are
enforced on both sides, and every size-cap violation names the
offending frame type and observed size.
"""

import asyncio
import io

import pytest

from repro.exceptions import CodecError, ProtocolError
from repro.net.framing import (
    FRAME_HEADER_BYTES,
    INLINE_FRAME_BYTES,
    MAX_CLUSTER_FRAME_BYTES,
    MAX_CLUSTER_PAYLOAD_BYTES,
    MAX_FRAME_BYTES,
    check_payload_size,
    frame_buffer,
    read_frame_bytes,
    read_frame_bytes_sync,
    split_frame_buffer,
    write_frame_bytes,
    write_frame_bytes_sync,
)


class TestConstants:
    def test_service_codec_reuses_these_constants(self):
        """Satellite: the old duplicated caps are gone — the codec's
        names are literally repro.net.framing's objects."""
        from repro.service import codec

        assert codec.FRAME_HEADER_BYTES is FRAME_HEADER_BYTES
        assert codec.MAX_FRAME_BYTES == MAX_FRAME_BYTES
        assert codec.MAX_CLUSTER_PAYLOAD_BYTES == MAX_CLUSTER_PAYLOAD_BYTES
        assert codec.MAX_CLUSTER_FRAME_BYTES == MAX_CLUSTER_FRAME_BYTES

    def test_cluster_frame_cap_covers_base64_expansion(self):
        assert MAX_CLUSTER_FRAME_BYTES > MAX_CLUSTER_PAYLOAD_BYTES * 4 // 3


class TestCheckPayloadSize:
    def test_names_frame_type_and_size(self):
        with pytest.raises(CodecError, match=r"job payload of 12 bytes exceeds limit 8"):
            check_payload_size("job payload", 12, 8)

    def test_at_limit_passes(self):
        check_payload_size("result payload", 8, 8)


class TestBufferRoundTrip:
    @pytest.mark.parametrize("payload", [b"", b"x", b"hello" * 100, bytes(range(256))])
    def test_round_trip(self, payload):
        assert split_frame_buffer(frame_buffer(payload)) == payload

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(ProtocolError, match="exceeds limit"):
            frame_buffer(b"x" * 65, max_frame=64)

    def test_oversized_prefix_rejected_at_decode(self):
        data = (100).to_bytes(FRAME_HEADER_BYTES, "big") + b"x" * 100
        with pytest.raises(ProtocolError, match="exceeds limit"):
            split_frame_buffer(data, max_frame=64)

    def test_every_truncation_rejected(self):
        data = frame_buffer(b"payload-bytes")
        for cut in range(len(data)):
            with pytest.raises(ProtocolError):
                split_frame_buffer(data[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ProtocolError, match="length prefix"):
            split_frame_buffer(frame_buffer(b"ok") + b"extra")


class TestBufferViews:
    """Zero-copy contract: views frame and parse byte-identically."""

    @pytest.mark.parametrize("payload", [b"", b"x", b"hello" * 100])
    def test_frame_buffer_accepts_views(self, payload):
        reference = frame_buffer(payload)
        assert frame_buffer(bytearray(payload)) == reference
        assert frame_buffer(memoryview(bytes(payload))) == reference

    def test_frame_buffer_accepts_sliced_view(self):
        blob = b"prefix|payload|suffix"
        view = memoryview(blob)[7:14]
        assert frame_buffer(view) == frame_buffer(b"payload")

    @pytest.mark.parametrize("payload", [b"", b"x", b"hello" * 100])
    def test_split_frame_buffer_accepts_views(self, payload):
        data = frame_buffer(payload)
        assert split_frame_buffer(bytearray(data)) == payload
        assert split_frame_buffer(memoryview(data)) == payload

    def test_split_returns_bytes_not_view(self):
        # Callers hold payloads past the parse; a view into a reused
        # buffer would alias future frames.
        out = split_frame_buffer(memoryview(frame_buffer(b"data")))
        assert type(out) is bytes

    def test_sync_write_accepts_views(self):
        reference = io.BytesIO()
        write_frame_bytes_sync(reference, b"view-payload")
        for convert in (bytearray, lambda b: memoryview(bytes(b))):
            stream = io.BytesIO()
            write_frame_bytes_sync(stream, convert(b"view-payload"))
            assert stream.getvalue() == reference.getvalue()

    def test_large_frame_wire_bytes_unchanged(self):
        # The >= INLINE_FRAME_BYTES split-write path must leave the
        # wire format untouched: header || payload, nothing else.
        payload = bytes(range(256)) * (INLINE_FRAME_BYTES // 256 + 1)
        assert len(payload) > INLINE_FRAME_BYTES
        stream = io.BytesIO()
        write_frame_bytes_sync(stream, payload)
        assert stream.getvalue() == frame_buffer(payload)
        stream.seek(0)
        assert read_frame_bytes_sync(stream) == payload

    def test_async_large_frame_wire_bytes_unchanged(self):
        async def scenario():
            from repro.service.server import memory_duplex

            payload = b"\xab" * (INLINE_FRAME_BYTES + 17)
            (reader, _), (_, writer) = memory_duplex()
            await write_frame_bytes(writer, payload)
            writer.close()
            assert await reader.read(-1) == frame_buffer(payload)

        asyncio.run(scenario())

    def test_async_write_accepts_views(self):
        async def scenario():
            from repro.service.server import memory_duplex

            (reader, _), (_, writer) = memory_duplex()
            await write_frame_bytes(writer, memoryview(b"async-view"))
            await write_frame_bytes(writer, bytearray(b"async-view"))
            assert await read_frame_bytes(reader) == b"async-view"
            assert await read_frame_bytes(reader) == b"async-view"

        asyncio.run(scenario())

    def test_sync_read_without_readinto_falls_back(self):
        class ReadOnly:
            def __init__(self, data):
                self._stream = io.BytesIO(data)

            def read(self, n):
                return self._stream.read(min(n, 3))  # dribble in chunks

        assert (
            read_frame_bytes_sync(ReadOnly(frame_buffer(b"fallback-path")))
            == b"fallback-path"
        )
        with pytest.raises(ProtocolError, match="mid frame"):
            read_frame_bytes_sync(ReadOnly(frame_buffer(b"truncated")[:-2]))


class TestSyncStreams:
    def test_round_trip(self):
        stream = io.BytesIO()
        write_frame_bytes_sync(stream, b"alpha")
        write_frame_bytes_sync(stream, b"")
        write_frame_bytes_sync(stream, b"beta" * 50)
        stream.seek(0)
        assert read_frame_bytes_sync(stream) == b"alpha"
        assert read_frame_bytes_sync(stream) == b""
        assert read_frame_bytes_sync(stream) == b"beta" * 50
        assert read_frame_bytes_sync(stream) is None  # clean EOF

    def test_truncated_header(self):
        stream = io.BytesIO(b"\x00\x00")
        with pytest.raises(ProtocolError, match="mid frame header"):
            read_frame_bytes_sync(stream)

    def test_truncated_body(self):
        stream = io.BytesIO(frame_buffer(b"full-payload")[:-3])
        with pytest.raises(ProtocolError, match="mid frame"):
            read_frame_bytes_sync(stream)

    def test_oversized_frame_rejected_before_read(self):
        stream = io.BytesIO((1 << 20).to_bytes(FRAME_HEADER_BYTES, "big"))
        with pytest.raises(ProtocolError, match="exceeds limit"):
            read_frame_bytes_sync(stream, max_frame=1024)

    def test_oversized_write_rejected(self):
        stream = io.BytesIO()
        with pytest.raises(ProtocolError):
            write_frame_bytes_sync(stream, b"x" * 100, max_frame=64)
        assert stream.getvalue() == b""  # nothing partial on the wire


class TestAsyncStreams:
    def run(self, coro):
        return asyncio.run(coro)

    def feed(self, *chunks: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        for chunk in chunks:
            reader.feed_data(chunk)
        if eof:
            reader.feed_eof()
        return reader

    def test_round_trip_via_memory_duplex(self):
        async def scenario():
            from repro.service.server import memory_duplex

            (reader, _), (_, writer) = memory_duplex()
            await write_frame_bytes(writer, b"ping")
            await write_frame_bytes(writer, b"pong" * 99)
            writer.close()
            assert await read_frame_bytes(reader) == b"ping"
            assert await read_frame_bytes(reader) == b"pong" * 99
            assert await read_frame_bytes(reader) is None

        self.run(scenario())

    def test_clean_eof_returns_none(self):
        async def scenario():
            assert await read_frame_bytes(self.feed()) is None

        self.run(scenario())

    def test_partial_header_raises(self):
        async def scenario():
            with pytest.raises(ProtocolError, match="mid frame header"):
                await read_frame_bytes(self.feed(b"\x00\x00"))

        self.run(scenario())

    def test_partial_body_raises(self):
        async def scenario():
            data = frame_buffer(b"twelve-bytes")
            with pytest.raises(ProtocolError, match="mid frame"):
                await read_frame_bytes(self.feed(data[:-2]))

        self.run(scenario())

    def test_oversized_length_prefix_rejected_before_allocation(self):
        async def scenario():
            header = (1 << 30).to_bytes(FRAME_HEADER_BYTES, "big")
            with pytest.raises(ProtocolError, match="exceeds limit"):
                await read_frame_bytes(self.feed(header), max_frame=4096)

        self.run(scenario())

    def test_sync_and_async_agree_on_the_wire_bytes(self):
        async def scenario():
            from repro.service.server import memory_duplex

            (reader, _), (_, writer) = memory_duplex()
            await write_frame_bytes(writer, b"shared-format")
            return await reader.read(1024)

        wire = self.run(scenario())
        sync_stream = io.BytesIO()
        write_frame_bytes_sync(sync_stream, b"shared-format")
        assert wire == sync_stream.getvalue()
        assert read_frame_bytes_sync(io.BytesIO(wire)) == b"shared-format"
