"""Tests for cost closed forms vs measured ledgers."""

import pytest

from repro.analysis.costs import (
    cbs_participant_bytes,
    cbs_supervisor_bytes_per_task,
    honest_sample_generation_overhead,
    min_sample_hash_cost,
    naive_bytes_per_task,
    regrind_expected_cost,
    uncheatable_g_rounds,
)
from repro.baselines import NaiveSamplingScheme
from repro.cheating import HonestBehavior
from repro.core import CBSScheme
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment


class TestCommunicationModels:
    def test_naive_model_matches_measured_exactly(self):
        n = 256
        task = TaskAssignment("t" * 8, RangeDomain(0, n), PasswordSearch())
        result = NaiveSamplingScheme(5).run(task, HonestBehavior(), seed=0)
        predicted = naive_bytes_per_task(n, result_size=16, task_id_size=8)
        # Participant also receives the verdict; sent bytes are the
        # FullResultsMsg alone.
        assert result.participant_ledger.bytes_sent == predicted

    def test_cbs_model_matches_measured_for_pow2_n(self):
        n, m = 256, 8
        task = TaskAssignment("t" * 8, RangeDomain(0, n), PasswordSearch())
        scheme = CBSScheme(m, include_reports=False)
        result = scheme.run(task, HonestBehavior(), seed=0)
        predicted = cbs_participant_bytes(
            n, m, digest_size=32, result_size=16, task_id_size=8
        )
        measured = result.participant_ledger.bytes_sent
        # Index varints vary with the sampled values: the model uses
        # the worst case, so measured <= predicted within a few bytes
        # per sample.
        assert measured <= predicted
        assert predicted - measured <= 3 * m

    def test_supervisor_side_model(self):
        n, m = 256, 8
        task = TaskAssignment("t" * 8, RangeDomain(0, n), PasswordSearch())
        result = CBSScheme(m, include_reports=False).run(
            task, HonestBehavior(), seed=0
        )
        predicted = cbs_supervisor_bytes_per_task(n, m, task_id_size=8)
        measured = result.supervisor_ledger.bytes_sent
        assert measured <= predicted
        assert predicted - measured <= 2 * m

    def test_asymptotic_shapes(self):
        # Naive grows ~linearly; CBS grows ~logarithmically.
        naive_small = naive_bytes_per_task(1 << 10, 16)
        naive_large = naive_bytes_per_task(1 << 20, 16)
        assert naive_large / naive_small > 900

        cbs_small = cbs_participant_bytes(1 << 10, 32)
        cbs_large = cbs_participant_bytes(1 << 20, 32)
        assert cbs_large / cbs_small < 2.1

    def test_paper_headline_password_example(self):
        # §3: a 2^64 task would need ~16 million terabytes with O(n)
        # return traffic.  Our byte model reproduces the magnitude
        # (the paper counts 16-byte MD5 results: 2^64 × 16 B = 256 EB
        # ≈ 2.6 × 10^5 PB ≈ "16 million terabytes" within framing).
        total = naive_bytes_per_task(1 << 34, 16) * (1 << 30)  # scaled
        assert total > 1e18  # exabytes territory — infeasible
        cbs = cbs_participant_bytes(1 << 40, m=50, result_size=16) * 1
        assert cbs < 200_000  # vs kilobytes for CBS

    def test_validation(self):
        with pytest.raises(ValueError):
            naive_bytes_per_task(0, 16)
        with pytest.raises(ValueError):
            cbs_participant_bytes(0, 1)


class TestEquationFive:
    def test_threshold_formula(self):
        # C_g >= n · C_f · r^m / m.
        assert min_sample_hash_cost(1000, 2.0, 0.5, 10) == pytest.approx(
            1000 * 2.0 * 0.5**10 / 10
        )

    def test_expected_cost_formula(self):
        assert regrind_expected_cost(0.5, 10, 3.0) == pytest.approx(
            (2.0**10) * 10 * 3.0
        )

    def test_inequality_holds_at_threshold(self):
        # At the minimum C_g, expected attack cost >= honest cost.
        n, cf, r, m = 4096, 5.0, 0.8, 16
        cg = min_sample_hash_cost(n, cf, r, m)
        assert regrind_expected_cost(r, m, cg) >= n * cf - 1e-6

    def test_rounds_realize_threshold(self):
        n, cf, r, m = 1 << 20, 10.0, 0.9, 32
        k = uncheatable_g_rounds(n, cf, r, m, base_hash_cost=1.0)
        assert k * 1.0 >= min_sample_hash_cost(n, cf, r, m)
        assert (k - 1) * 1.0 < min_sample_hash_cost(n, cf, r, m) or k == 1

    def test_honest_overhead_is_r_to_m(self):
        # The paper's closing §4.2 remark: the honest participant's
        # sample-generation overhead ratio is about r^m.
        assert honest_sample_generation_overhead(0.5, 10) == pytest.approx(
            0.5**10
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            min_sample_hash_cost(0, 1.0, 0.5, 1)
        with pytest.raises(ValueError):
            regrind_expected_cost(0.0, 1, 1.0)
        with pytest.raises(ValueError):
            uncheatable_g_rounds(10, 1.0, 0.5, 1, base_hash_cost=0.0)
