"""Shared fixtures: canonical assignments, functions and behaviours."""

from __future__ import annotations

import pytest

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.tasks import (
    MoleculeScreening,
    PasswordSearch,
    RangeDomain,
    SignalSearch,
    TaskAssignment,
)


@pytest.fixture
def password_fn() -> PasswordSearch:
    """One-way workload (q ≈ 0); cheap to evaluate in tests."""
    return PasswordSearch()


@pytest.fixture
def signal_fn() -> SignalSearch:
    """Boolean-output workload with q = 0.5 (Fig. 2's hard case)."""
    return SignalSearch()


@pytest.fixture
def molecule_fn() -> MoleculeScreening:
    """Quantized-score workload with small nonzero q."""
    return MoleculeScreening(resolution=256)


@pytest.fixture
def small_domain() -> RangeDomain:
    return RangeDomain(0, 64)


@pytest.fixture
def medium_domain() -> RangeDomain:
    return RangeDomain(0, 500)


@pytest.fixture
def password_task(password_fn, medium_domain) -> TaskAssignment:
    return TaskAssignment("task-pw", medium_domain, password_fn)


@pytest.fixture
def small_password_task(password_fn, small_domain) -> TaskAssignment:
    return TaskAssignment("task-pw-small", small_domain, password_fn)


@pytest.fixture
def honest() -> HonestBehavior:
    return HonestBehavior()


@pytest.fixture
def half_cheater() -> SemiHonestCheater:
    return SemiHonestCheater(honesty_ratio=0.5)
