"""Shared fixtures: canonical assignments, functions and behaviours,
plus the transport-security material (shared secret, self-signed TLS
cert) the repro.net suites use."""

from __future__ import annotations

import secrets

import pytest

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.tasks import (
    MoleculeScreening,
    PasswordSearch,
    RangeDomain,
    SignalSearch,
    TaskAssignment,
)


@pytest.fixture
def password_fn() -> PasswordSearch:
    """One-way workload (q ≈ 0); cheap to evaluate in tests."""
    return PasswordSearch()


@pytest.fixture
def signal_fn() -> SignalSearch:
    """Boolean-output workload with q = 0.5 (Fig. 2's hard case)."""
    return SignalSearch()


@pytest.fixture
def molecule_fn() -> MoleculeScreening:
    """Quantized-score workload with small nonzero q."""
    return MoleculeScreening(resolution=256)


@pytest.fixture
def small_domain() -> RangeDomain:
    return RangeDomain(0, 64)


@pytest.fixture
def medium_domain() -> RangeDomain:
    return RangeDomain(0, 500)


@pytest.fixture
def password_task(password_fn, medium_domain) -> TaskAssignment:
    return TaskAssignment("task-pw", medium_domain, password_fn)


@pytest.fixture
def small_password_task(password_fn, small_domain) -> TaskAssignment:
    return TaskAssignment("task-pw-small", small_domain, password_fn)


@pytest.fixture
def honest() -> HonestBehavior:
    return HonestBehavior()


@pytest.fixture
def half_cheater() -> SemiHonestCheater:
    return SemiHonestCheater(honesty_ratio=0.5)


# ----------------------------------------------------------------------
# Transport security material (repro.net)
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def secret_file(tmp_path_factory) -> str:
    """A high-entropy shared secret on disk, as operators deploy it."""
    path = tmp_path_factory.mktemp("auth") / "secret"
    path.write_text(secrets.token_hex(32) + "\n")
    return str(path)


@pytest.fixture(scope="session")
def wrong_secret_file(tmp_path_factory) -> str:
    """A different (equally valid-looking) secret: the impostor's."""
    path = tmp_path_factory.mktemp("auth-wrong") / "secret"
    path.write_text(secrets.token_hex(32) + "\n")
    return str(path)


def make_self_signed_cert(directory) -> tuple[str, str]:
    """One self-signed cert + key via the shared repro.net helper.

    Returns ``(cert_path, key_path)``; skips the requesting test when
    no ``openssl`` binary is available.
    """
    from repro.exceptions import ProtocolError
    from repro.net.transport import generate_self_signed_cert

    cert, key = directory / "cert.pem", directory / "key.pem"
    try:
        generate_self_signed_cert(
            str(cert), str(key), common_name="repro-coordinator", days=1
        )
    except ProtocolError as exc:
        pytest.skip(f"cannot generate TLS material: {exc}")
    return str(cert), str(key)


@pytest.fixture(scope="session")
def tls_material(tmp_path_factory) -> tuple[str, str]:
    """Session-wide ``(cert, key)`` pair for TLS-enabled suites."""
    return make_self_signed_cert(tmp_path_factory.mktemp("tls"))
