"""Tests for Merkle wire serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CodecError
from repro.merkle import MerkleTree
from repro.merkle.serialize import (
    decode_auth_path,
    decode_digest,
    encode_auth_path,
    encode_digest,
)
from repro.merkle.tree import LeafEncoding


class TestAuthPathRoundtrip:
    def test_roundtrip_preserves_fields(self):
        tree = MerkleTree([bytes([i]) for i in range(20)])
        path = tree.auth_path(13)
        decoded, pos = decode_auth_path(encode_auth_path(path))
        assert pos == len(encode_auth_path(path))
        assert decoded.leaf_index == path.leaf_index
        assert decoded.siblings == path.siblings
        assert decoded.n_leaves == path.n_leaves
        assert decoded.leaf_encoding == path.leaf_encoding

    def test_decoded_path_still_verifies(self):
        leaves = [f"v{i}".encode() for i in range(10)]
        tree = MerkleTree(leaves)
        decoded, _ = decode_auth_path(encode_auth_path(tree.auth_path(7)))
        assert decoded.verify(leaves[7], tree.root, tree.hash_fn)

    def test_raw_encoding_survives(self):
        h_leaves = [
            MerkleTree([b"x"]).hash_fn.digest(bytes([i])) for i in range(4)
        ]
        tree = MerkleTree(h_leaves, leaf_encoding=LeafEncoding.RAW)
        decoded, _ = decode_auth_path(encode_auth_path(tree.auth_path(1)))
        assert decoded.leaf_encoding == LeafEncoding.RAW

    def test_unknown_encoding_code_rejected(self):
        tree = MerkleTree([b"a", b"b"])
        data = bytearray(encode_auth_path(tree.auth_path(0)))
        # Byte layout: leaf_index varint (1B for 0), n_leaves varint,
        # then the encoding code.
        data[2] = 9
        with pytest.raises(CodecError):
            decode_auth_path(bytes(data))

    @given(st.integers(min_value=1, max_value=64), st.data())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, n, data):
        tree = MerkleTree([bytes([i % 256, 1]) for i in range(n)])
        index = data.draw(st.integers(min_value=0, max_value=n - 1))
        path = tree.auth_path(index)
        decoded, _ = decode_auth_path(encode_auth_path(path))
        assert decoded.siblings == path.siblings
        assert decoded.leaf_index == index


class TestDigest:
    def test_roundtrip(self):
        digest = bytes(range(32))
        decoded, pos = decode_digest(encode_digest(digest))
        assert decoded == digest
        assert pos == len(encode_digest(digest))
