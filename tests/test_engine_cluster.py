"""Tests for the distributed cluster engine (repro.engine.cluster).

The acceptance property mirrors the other backends, raised to
distributed systems: a :class:`ClusterExecutor` sharding chunks across
remote worker processes must produce **byte-identical**
:class:`~repro.grid.report.DetectionReport`'s to the serial backend —
including when a worker is SIGKILLed mid-population (requeue +
at-most-once result acceptance).  Alongside parity: ordering, error
propagation (a failing job surfaces as :class:`EngineError`, never a
worker crash), payload hygiene and the external-worker topology.
"""

import os
import signal
import threading
import time

import pytest

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme, NICBSScheme
from repro.engine import ClusterExecutor, get_executor
from repro.engine.cluster.worker import execute_payload, run_worker
from repro.exceptions import CodecError, EngineError
from repro.grid.simulation import run_population
from repro.service.codec import encode_cluster_payload
from repro.tasks import PasswordSearch, RangeDomain


def report_fingerprint(report) -> bytes:
    """Value-level canonical encoding (same rule as test_engine)."""
    return repr(
        {
            "scheme": report.scheme,
            "participants": [
                (
                    p.participant,
                    p.behavior,
                    p.honesty_ratio,
                    p.accepted,
                    p.reason.value,
                    sorted(p.participant_ledger.as_dict().items()),
                    sorted(p.supervisor_ledger_delta.as_dict().items()),
                )
                for p in report.participants
            ],
            "supervisor": sorted(report.supervisor_ledger.as_dict().items()),
        }
    ).encode("utf-8")


def population(scheme, engine, n=1 << 10, participants=8, **kwargs):
    return run_population(
        RangeDomain(0, n),
        PasswordSearch(),
        scheme,
        behaviors=[HonestBehavior(), SemiHonestCheater(0.6)],
        n_participants=participants,
        seed=3,
        engine=engine,
        **kwargs,
    )


@pytest.fixture(scope="module")
def cluster():
    """One warm 2-worker cluster shared across this module's tests."""
    with ClusterExecutor(workers=2) as executor:
        yield executor


# Module-level so job payloads pickle.
def _square(x: int) -> int:
    return x * x


def _sleepy_square(args: tuple) -> int:
    delay, x = args
    time.sleep(delay)
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom {x}")


def _boom_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("boom 3")
    return x * x


class TestRegistry:
    def test_cluster_in_engine_names(self):
        from repro.engine import ENGINE_NAMES

        assert "cluster" in ENGINE_NAMES

    def test_get_executor_builds_cluster(self):
        executor = get_executor("cluster", 2)
        try:
            assert isinstance(executor, ClusterExecutor)
            assert executor.name == "cluster"
            # Construction is lazy: no workers spawned until first use.
            assert executor.local_worker_pids == []
        finally:
            executor.close()

    def test_bad_worker_count_rejected(self):
        with pytest.raises(EngineError):
            ClusterExecutor(workers=0)

    def test_worker_engine_cannot_recurse(self):
        with pytest.raises(EngineError):
            ClusterExecutor(worker_engine="cluster")

    def test_map_after_close_rejected(self):
        executor = ClusterExecutor(workers=1)
        executor.close()
        with pytest.raises(EngineError):
            executor.map(_square, [1])

    def test_close_is_idempotent(self):
        executor = ClusterExecutor(workers=1)
        executor.close()
        executor.close()


class TestMapSemantics:
    def test_map_preserves_order(self, cluster):
        assert cluster.map(_square, range(50)) == [i * i for i in range(50)]

    def test_empty_map_without_spawning(self):
        executor = ClusterExecutor(workers=1)
        try:
            assert executor.map(_square, []) == []
            assert executor.local_worker_pids == []
        finally:
            executor.close()

    def test_remote_failure_raises_engine_error(self, cluster):
        with pytest.raises(EngineError, match="boom"):
            cluster.map(_boom, [7])
        # The survival contract: the pool keeps serving afterwards.
        assert cluster.map(_square, [3]) == [9]

    def test_failed_map_leaves_no_job_bookkeeping_behind(self, cluster):
        # A failing chunk cancels its siblings; a long-lived pool must
        # drain their coordinator entries instead of leaking them.
        with pytest.raises(EngineError, match="boom"):
            cluster.map(_boom_on_three, range(6))
        deadline = time.monotonic() + 10.0
        while cluster._co.jobs and time.monotonic() < deadline:
            time.sleep(0.05)
        assert cluster._co.jobs == {}
        assert cluster.map(_square, [4]) == [16]

    def test_unpicklable_job_rejected_before_dispatch(self, cluster):
        with pytest.raises(CodecError):
            cluster.map(lambda x: x, [1])  # lambdas do not pickle

    def test_futures_pool_submits_single_calls(self, cluster):
        future = cluster.futures_pool.submit(_square, 12)
        assert future.result(timeout=30) == 144

    def test_workers_property_reports_capacity(self, cluster):
        cluster.map(_square, [1])  # ensure both workers registered
        assert cluster.workers == 2


class TestWorkerPayloadHygiene:
    """Garbage must come back as CodecError, never kill a worker."""

    def test_garbage_bytes(self):
        with pytest.raises(CodecError):
            execute_payload(b"\x00\x01 not a pickle")

    def test_non_triple_payload(self):
        with pytest.raises(CodecError):
            execute_payload(encode_cluster_payload({"not": "a triple"}))

    def test_non_callable_fn(self):
        with pytest.raises(CodecError):
            execute_payload(encode_cluster_payload((42, (), {})))

    def test_oversized_payload_rejected_at_submit(self):
        with pytest.raises(CodecError):
            encode_cluster_payload(b"\x00" * 128, max_bytes=64)


class TestPopulationParity:
    @pytest.mark.parametrize(
        "scheme",
        [CBSScheme(n_samples=8), NICBSScheme(n_samples=8)],
        ids=lambda s: s.name,
    )
    def test_byte_identical_reports(self, cluster, scheme):
        serial = report_fingerprint(population(scheme, engine="serial"))
        clustered = report_fingerprint(population(scheme, engine=cluster))
        assert serial == clustered

    def test_batch_size_never_changes_results(self, cluster):
        scheme = CBSScheme(n_samples=6)
        fingerprints = {
            report_fingerprint(
                population(scheme, engine=cluster, batch_size=bs)
            )
            for bs in (1, 3, 8)
        }
        assert len(fingerprints) == 1


class TestFaultTolerance:
    def test_sigkill_one_worker_mid_population(self):
        """The ISSUE acceptance test: requeue keeps the report identical."""
        scheme = CBSScheme(n_samples=16)
        serial = report_fingerprint(
            population(scheme, engine="serial", n=1 << 16, participants=32)
        )
        with ClusterExecutor(workers=2) as executor:
            executor.map(_square, [0])  # force startup; pids known
            victim = executor.local_worker_pids[0]
            report_box: list = []

            def run() -> None:
                report_box.append(
                    population(
                        scheme,
                        engine=executor,
                        n=1 << 16,
                        participants=32,
                        batch_size=1,  # many small chunks: kill lands mid-run
                    )
                )

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.35)  # let the first chunks reach the workers
            os.kill(victim, signal.SIGKILL)
            thread.join(timeout=120)
            assert not thread.is_alive()
            stats = executor.stats
        assert stats["workers_lost"] >= 1
        assert report_fingerprint(report_box[0]) == serial

    def test_slow_worker_chunk_requeued(self):
        """job_timeout requeues a stuck chunk; first result wins."""
        with ClusterExecutor(workers=2, job_timeout=0.3) as executor:
            items = [(0.9, 1)] + [(0.0, x) for x in range(2, 8)]
            assert executor.map(_sleepy_square, items) == [
                x * x for _delay, x in items
            ]
            assert executor.stats["jobs_requeued"] >= 1


class TestExternalWorkers:
    def test_worker_dialing_a_fixed_port(self):
        """spawn_local=False serves operator-started remote workers."""
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        executor = ClusterExecutor(
            workers=1, port=port, spawn_local=False, startup_timeout=30.0
        )

        def worker_thread() -> None:
            import asyncio

            async def dial() -> None:
                for _ in range(200):  # coordinator may not be bound yet
                    try:
                        await run_worker("127.0.0.1", port, engine="serial")
                        return
                    except (ConnectionError, OSError):
                        await asyncio.sleep(0.05)

            asyncio.run(dial())

        thread = threading.Thread(target=worker_thread, daemon=True)
        thread.start()
        try:
            assert executor.map(_square, range(10)) == [
                i * i for i in range(10)
            ]
            assert executor.stats["workers_live"] == 1
        finally:
            executor.close()
        # close() sends bye; the external worker exits cleanly.
        thread.join(timeout=10)
        assert not thread.is_alive()
