"""Tests for the distributed cluster engine (repro.engine.cluster).

The acceptance property mirrors the other backends, raised to
distributed systems: a :class:`ClusterExecutor` sharding chunks across
remote worker processes must produce **byte-identical**
:class:`~repro.grid.report.DetectionReport`'s to the serial backend —
including when a worker is SIGKILLed mid-population (requeue +
at-most-once result acceptance).  Alongside parity: ordering, error
propagation (a failing job surfaces as :class:`EngineError`, never a
worker crash), payload hygiene and the external-worker topology.
"""

import asyncio
import os
import signal
import threading
import time

import pytest

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme, NICBSScheme
from repro.engine import ClusterExecutor, get_executor
from repro.engine.cluster.coordinator import _Coordinator, _WorkerLink
from repro.engine.cluster.worker import (
    execute_chunk,
    execute_payload,
    pack_outcome_parts,
    run_worker,
)
from repro.exceptions import CodecError, EngineError
from repro.grid.simulation import run_population
from repro.service.codec import (
    MAX_CLUSTER_FRAME_BYTES,
    ResultEndFrame,
    ResultFrame,
    ResultPartFrame,
    decode_cluster_chunk,
    decode_frame,
    encode_cluster_chunk,
    encode_cluster_outcomes,
    encode_cluster_payload,
)
from repro.service.jobcodec import encode_job
from repro.tasks import PasswordSearch, RangeDomain

from cluster_helpers import (
    _boom,
    _boom_on_three,
    _sleepy_square,
    _square,
    _worker_pid,
)


def report_fingerprint(report) -> bytes:
    """Value-level canonical encoding (same rule as test_engine)."""
    return repr(
        {
            "scheme": report.scheme,
            "participants": [
                (
                    p.participant,
                    p.behavior,
                    p.honesty_ratio,
                    p.accepted,
                    p.reason.value,
                    sorted(p.participant_ledger.as_dict().items()),
                    sorted(p.supervisor_ledger_delta.as_dict().items()),
                )
                for p in report.participants
            ],
            "supervisor": sorted(report.supervisor_ledger.as_dict().items()),
        }
    ).encode("utf-8")


def population(scheme, engine, n=1 << 10, participants=8, **kwargs):
    return run_population(
        RangeDomain(0, n),
        PasswordSearch(),
        scheme,
        behaviors=[HonestBehavior(), SemiHonestCheater(0.6)],
        n_participants=participants,
        seed=3,
        engine=engine,
        **kwargs,
    )


#: Worker-side registration hook for this module's job functions: the
#: daemons import ``cluster_helpers`` (tests/ rides the coordinator's
#: PYTHONPATH propagation) so the typed codec can resolve the names.
PRELOAD = ("cluster_helpers",)


@pytest.fixture(scope="module")
def cluster():
    """One warm 2-worker cluster shared across this module's tests."""
    with ClusterExecutor(workers=2, worker_preload=PRELOAD) as executor:
        yield executor


class TestRegistry:
    def test_cluster_in_engine_names(self):
        from repro.engine import ENGINE_NAMES

        assert "cluster" in ENGINE_NAMES

    def test_get_executor_builds_cluster(self):
        executor = get_executor("cluster", 2)
        try:
            assert isinstance(executor, ClusterExecutor)
            assert executor.name == "cluster"
            # Construction is lazy: no workers spawned until first use.
            assert executor.local_worker_pids == []
        finally:
            executor.close()

    def test_bad_worker_count_rejected(self):
        with pytest.raises(EngineError):
            ClusterExecutor(workers=0)

    def test_worker_engine_cannot_recurse(self):
        with pytest.raises(EngineError):
            ClusterExecutor(worker_engine="cluster")

    def test_map_after_close_rejected(self):
        executor = ClusterExecutor(workers=1)
        executor.close()
        with pytest.raises(EngineError):
            executor.map(_square, [1])

    def test_close_is_idempotent(self):
        executor = ClusterExecutor(workers=1)
        executor.close()
        executor.close()


class TestMapSemantics:
    def test_map_preserves_order(self, cluster):
        assert cluster.map(_square, range(50)) == [i * i for i in range(50)]

    def test_empty_map_without_spawning(self):
        executor = ClusterExecutor(workers=1)
        try:
            assert executor.map(_square, []) == []
            assert executor.local_worker_pids == []
        finally:
            executor.close()

    def test_remote_failure_raises_engine_error(self, cluster):
        with pytest.raises(EngineError, match="boom"):
            cluster.map(_boom, [7])
        # The survival contract: the pool keeps serving afterwards.
        assert cluster.map(_square, [3]) == [9]

    def test_failed_map_leaves_no_job_bookkeeping_behind(self, cluster):
        # A failing chunk cancels its siblings; a long-lived pool must
        # drain their coordinator entries instead of leaking them.
        with pytest.raises(EngineError, match="boom"):
            cluster.map(_boom_on_three, range(6))
        deadline = time.monotonic() + 10.0
        while cluster._co.jobs and time.monotonic() < deadline:
            time.sleep(0.05)
        assert cluster._co.jobs == {}
        assert cluster.map(_square, [4]) == [16]

    def test_unregistered_job_rejected_before_dispatch(self, cluster):
        with pytest.raises(CodecError):
            cluster.map(lambda x: x, [1])  # not a registered callable

    def test_futures_pool_submits_single_calls(self, cluster):
        future = cluster.futures_pool.submit(_square, 12)
        assert future.result(timeout=30) == 144

    def test_workers_property_reports_capacity(self, cluster):
        cluster.map(_square, [1])  # ensure both workers registered
        assert cluster.workers == 2


class TestWorkerPayloadHygiene:
    """Garbage must come back as CodecError, never kill a worker."""

    def test_garbage_bytes(self):
        with pytest.raises(CodecError):
            execute_payload(b"\x00\x01 not a typed payload")

    def test_non_triple_payload(self):
        with pytest.raises(CodecError):
            execute_payload(encode_cluster_payload({"not": "a triple"}))

    def test_non_callable_fn(self):
        with pytest.raises(CodecError):
            execute_payload(encode_cluster_payload((42, (), {})))

    def test_oversized_payload_rejected_at_submit(self):
        with pytest.raises(CodecError):
            encode_cluster_payload(b"\x00" * 128, max_bytes=64)


class TestPopulationParity:
    @pytest.mark.parametrize(
        "scheme",
        [CBSScheme(n_samples=8), NICBSScheme(n_samples=8)],
        ids=lambda s: s.name,
    )
    def test_byte_identical_reports(self, cluster, scheme):
        serial = report_fingerprint(population(scheme, engine="serial"))
        clustered = report_fingerprint(population(scheme, engine=cluster))
        assert serial == clustered

    def test_batch_size_never_changes_results(self, cluster):
        scheme = CBSScheme(n_samples=6)
        fingerprints = {
            report_fingerprint(
                population(scheme, engine=cluster, batch_size=bs)
            )
            for bs in (1, 3, 8)
        }
        assert len(fingerprints) == 1

    def test_scheme_cache_reused_across_chunks(self, cluster):
        """One population, many chunks: the scheme is constructed once
        per worker (misses) and reused for every later chunk (hits),
        with the workers' deltas aggregated into coordinator stats."""
        population(CBSScheme(n_samples=6), engine=cluster, batch_size=1)
        stats = cluster.stats
        assert stats["scheme_cache_hits"] > 0
        assert stats["scheme_cache_misses"] > 0
        assert stats["scheme_cache_hits"] > stats["scheme_cache_misses"]


class TestFaultTolerance:
    def test_sigkill_one_worker_mid_population(self):
        """The ISSUE acceptance test: requeue keeps the report identical."""
        scheme = CBSScheme(n_samples=16)
        serial = report_fingerprint(
            population(scheme, engine="serial", n=1 << 16, participants=32)
        )
        with ClusterExecutor(workers=2, worker_preload=PRELOAD) as executor:
            executor.map(_square, [0])  # force startup; pids known
            victim = executor.local_worker_pids[0]
            report_box: list = []

            def run() -> None:
                report_box.append(
                    population(
                        scheme,
                        engine=executor,
                        n=1 << 16,
                        participants=32,
                        batch_size=1,  # many small chunks: kill lands mid-run
                    )
                )

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.35)  # let the first chunks reach the workers
            os.kill(victim, signal.SIGKILL)
            thread.join(timeout=120)
            assert not thread.is_alive()
            stats = executor.stats
        assert stats["workers_lost"] >= 1
        assert report_fingerprint(report_box[0]) == serial

    def test_slow_worker_chunk_requeued(self):
        """job_timeout requeues a stuck chunk; first result wins."""
        with ClusterExecutor(
            workers=2, job_timeout=0.3, worker_preload=PRELOAD
        ) as executor:
            items = [(0.9, 1)] + [(0.0, x) for x in range(2, 8)]
            assert executor.map(_sleepy_square, items) == [
                x * x for _delay, x in items
            ]
            assert executor.stats["jobs_requeued"] >= 1


class TestWarmPoolLifecycle:
    """The worker daemon's local pool is prewarmed at startup and
    reused across every chunk it serves — never respawned between
    chunks — and a signalled worker drains cleanly."""

    def test_process_pool_reused_across_consecutive_chunks(self):
        with ClusterExecutor(
            workers=1,
            worker_engine="processes",
            worker_processes=2,
            worker_preload=PRELOAD,
        ) as executor:
            first = set(executor.map(_worker_pid, range(16)))
            second = set(executor.map(_worker_pid, range(16)))
        assert first and second
        # One warm pool of 2 processes serving both maps: a pool
        # respawn between chunks would surface fresh pids here.
        assert len(first | second) <= 2

    @pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
    def test_signalled_worker_drains_cleanly(self, sig):
        import socket
        import subprocess
        import sys

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        # Same path-injection rule as the coordinator's spawn-local
        # mode: the daemon must import cluster_helpers' registrations.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        with ClusterExecutor(
            workers=1, port=port, spawn_local=False, startup_timeout=30.0
        ) as executor:
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.engine.cluster.worker",
                    "--port", str(port), "--engine", "processes",
                    "--workers", "2", "--connect-retry", "10",
                    "--preload", "cluster_helpers",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            try:
                assert executor.map(_square, range(6)) == [
                    i * i for i in range(6)
                ]
                proc.send_signal(sig)
                out, err = proc.communicate(timeout=30)
            finally:
                if proc.poll() is None:
                    # Don't communicate() here: the daemon's forked
                    # pool children hold the pipes open after a kill.
                    proc.kill()
                    proc.wait(timeout=10)
                    proc.stdout.close()
                    proc.stderr.close()
        assert proc.returncode == 0, err
        assert "cluster worker done" in out


class TestExternalWorkers:
    def test_worker_dialing_a_fixed_port(self):
        """spawn_local=False serves operator-started remote workers."""
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        executor = ClusterExecutor(
            workers=1, port=port, spawn_local=False, startup_timeout=30.0
        )

        def worker_thread() -> None:
            import asyncio

            async def dial() -> None:
                for _ in range(200):  # coordinator may not be bound yet
                    try:
                        await run_worker("127.0.0.1", port, engine="serial")
                        return
                    except (ConnectionError, OSError):
                        await asyncio.sleep(0.05)

            asyncio.run(dial())

        thread = threading.Thread(target=worker_thread, daemon=True)
        thread.start()
        try:
            assert executor.map(_square, range(10)) == [
                i * i for i in range(10)
            ]
            assert executor.stats["workers_live"] == 1
        finally:
            executor.close()
        # close() sends bye; the external worker exits cleanly.
        thread.join(timeout=10)
        assert not thread.is_alive()


# ----------------------------------------------------------------------
# Deterministic scheduler harness (no sockets, injectable clock)
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeWriter:
    """Collects frames the coordinator 'sends'; never blocks."""

    def __init__(self) -> None:
        self.raw: list[bytes] = []
        self.closed = False

    def write(self, data: bytes) -> None:
        self.raw.append(data)

    async def drain(self) -> None:
        pass

    def close(self) -> None:
        self.closed = True

    @property
    def frames(self):
        return [decode_frame(chunk) for chunk in self.raw]


def make_coordinator(clock, **overrides) -> _Coordinator:
    kwargs = dict(
        max_frame=MAX_CLUSTER_FRAME_BYTES,
        window_depth=2,
        heartbeat_timeout=10.0,
        job_timeout=0.5,
        max_attempts=3,
        chunk_min=1,
        chunk_max=32,
        chunk_target_s=0.25,
        more_workers_expected=lambda: True,
        clock=clock,
    )
    kwargs.update(overrides)
    return _Coordinator(**kwargs)


def attach_worker(co: _Coordinator, worker_id: str, capacity: int = 1):
    writer = FakeWriter()
    link = _WorkerLink(
        worker_id=worker_id,
        capacity=capacity,
        writer=writer,
        window=max(1, capacity) * co.window_depth,
        now=co.clock(),
    )
    co.workers[worker_id] = link
    return link, writer


def job_payload(value: int) -> bytes:
    return encode_job(_square, (value,), {})


def ok_outcomes(*values) -> bytes:
    return encode_cluster_outcomes(
        [(True, encode_cluster_payload(v)) for v in values]
    )


async def settle() -> None:
    """Let the coordinator's _send_chunk tasks run to completion."""
    for _ in range(5):
        await asyncio.sleep(0)


class TestLateResultRace:
    """The ISSUE regression: a job_timeout requeue racing the original
    slow worker's result.  Whichever copy arrives first wins the job;
    the loser is dropped exactly once — never a double set_result,
    never a double requeue, never leaked bookkeeping."""

    def test_requeue_then_reassigned_copy_wins_then_late_result_dropped(self):
        async def scenario():
            import concurrent.futures

            clock = FakeClock()
            co = make_coordinator(clock)
            link, writer = attach_worker(co, "a")
            future = concurrent.futures.Future()
            co.submit(job_payload(6), future)
            await settle()
            [frame_a] = writer.frames
            assert decode_cluster_chunk(frame_a.payload) == (job_payload(6),)

            # The chunk stalls past the timeout: its job requeues, the
            # chunk lingers as a zombie on the live worker.
            clock.advance(1.0)
            co._scan_timeouts(clock())
            assert co.jobs_requeued == 1 and co.chunks_requeued == 1
            assert frame_a.job_id in co.chunks  # zombie, not retired
            assert co.chunks[frame_a.job_id].requeued

            # The requeued copy is reassigned under a fresh chunk id.
            co._pump()
            await settle()
            frame_b = writer.frames[1]
            assert frame_b.job_id != frame_a.job_id

            # The reassigned copy finishes first and wins.
            co._on_result(
                link,
                ResultFrame(job_id=frame_b.job_id, ok=True,
                            payload=ok_outcomes(36)),
            )
            assert future.result(timeout=0) == 36
            assert co.jobs_completed == 1

            # The slow original's late result: dropped exactly once,
            # cleanly — the future is untouched (no InvalidStateError
            # from a second set_result), the zombie id is retired,
            # nothing is requeued again.
            co._on_result(
                link,
                ResultFrame(job_id=frame_a.job_id, ok=True,
                            payload=ok_outcomes(36)),
            )
            assert future.result(timeout=0) == 36
            assert co.jobs_completed == 1  # not double-counted
            assert co.jobs_requeued == 1  # not re-requeued
            assert co.jobs == {} and co.chunks == {}
            assert not co.pending

            # And a *third* arrival of the same retired id is inert.
            co._on_result(
                link,
                ResultFrame(job_id=frame_a.job_id, ok=True,
                            payload=ok_outcomes(36)),
            )
            assert co.jobs_completed == 1

        asyncio.run(scenario())

    def test_requeue_then_slow_original_wins_before_reassignment_lands(self):
        async def scenario():
            import concurrent.futures

            clock = FakeClock()
            co = make_coordinator(clock)
            link, writer = attach_worker(co, "a")
            future = concurrent.futures.Future()
            co.submit(job_payload(5), future)
            await settle()
            [frame_a] = writer.frames

            clock.advance(1.0)
            co._scan_timeouts(clock())
            co._pump()
            await settle()
            frame_b = writer.frames[1]  # reassigned copy in flight

            # The slow original answers first: accepted (first result
            # wins — byte-identical by purity), job resolves once.
            co._on_result(
                link,
                ResultFrame(job_id=frame_a.job_id, ok=True,
                            payload=ok_outcomes(25)),
            )
            assert future.result(timeout=0) == 25
            assert co.jobs_completed == 1

            # The reassigned copy's result is now the late duplicate.
            co._on_result(
                link,
                ResultFrame(job_id=frame_b.job_id, ok=True,
                            payload=ok_outcomes(25)),
            )
            assert co.jobs_completed == 1
            assert co.jobs == {} and co.chunks == {} and not co.pending

        asyncio.run(scenario())

    def test_zombie_error_result_cannot_fail_a_requeued_job(self):
        async def scenario():
            clock = FakeClock()
            co = make_coordinator(clock)
            link_a, writer_a = attach_worker(co, "a")
            import concurrent.futures

            future = concurrent.futures.Future()
            co.submit(job_payload(3), future)
            await settle()
            [frame_a] = writer_a.frames
            clock.advance(1.0)
            co._scan_timeouts(clock())

            # The timed-out worker eventually answers with an error —
            # that must not fail a job whose requeued copy is live.
            co._on_result(
                link_a,
                ResultFrame(job_id=frame_a.job_id, ok=False,
                            payload=encode_cluster_payload("boom")),
            )
            assert not future.done()
            assert 0 in co.jobs  # still tracked, not failed

            # The requeued copy (the pump inside _on_result already
            # reassigned it) still completes the job.
            await settle()
            frame_b = writer_a.frames[1]
            co._on_result(
                link_a,
                ResultFrame(job_id=frame_b.job_id, ok=True,
                            payload=ok_outcomes(9)),
            )
            assert future.result(timeout=0) == 9

        asyncio.run(scenario())

    def test_worker_death_retires_zombie_chunks(self):
        async def scenario():
            clock = FakeClock()
            co = make_coordinator(clock)
            link_a, writer_a = attach_worker(co, "a")
            import concurrent.futures

            future = concurrent.futures.Future()
            co.submit(job_payload(2), future)
            await settle()
            [frame_a] = writer_a.frames
            clock.advance(1.0)
            co._scan_timeouts(clock())
            assert frame_a.job_id in co.chunks  # zombie

            co._drop_worker(link_a)
            assert co.chunks == {}  # no result can arrive on a dead link
            assert co.jobs_requeued == 1  # the timeout requeue, no double
            assert list(co.pending) == [0]
            assert not future.done()

        asyncio.run(scenario())


class TestStreamedReassembly:
    """result_part/result_end reassembly and its failure modes."""

    def test_parts_reassemble_in_order(self):
        async def scenario():
            clock = FakeClock()
            co = make_coordinator(clock, chunk_min=3, chunk_max=3)
            import concurrent.futures

            futures = [concurrent.futures.Future() for _ in range(3)]
            for i, future in enumerate(futures):
                co.submit(job_payload(i), future)  # no worker yet: queued
            link, writer = attach_worker(co, "a")
            co._pump()
            await settle()
            [frame] = writer.frames
            assert len(decode_cluster_chunk(frame.payload)) == 3

            co._on_result_part(
                link,
                ResultPartFrame(job_id=frame.job_id, seq=0,
                                payload=ok_outcomes(0, 1)),
            )
            co._on_result_part(
                link,
                ResultPartFrame(job_id=frame.job_id, seq=1,
                                payload=ok_outcomes(4)),
            )
            co._on_result_end(
                link, ResultEndFrame(job_id=frame.job_id, parts=2)
            )
            assert [f.result(timeout=0) for f in futures] == [0, 1, 4]
            assert co.result_parts == 2
            assert co.jobs == {} and co.chunks == {}

        asyncio.run(scenario())

    def test_incomplete_stream_end_requeues_never_partially_accepts(self):
        async def scenario():
            clock = FakeClock()
            co = make_coordinator(clock, chunk_min=2, chunk_max=2)
            import concurrent.futures

            futures = [concurrent.futures.Future() for _ in range(2)]
            for i, future in enumerate(futures):
                co.submit(job_payload(i), future)  # no worker yet: queued
            link, writer = attach_worker(co, "a")
            co._pump()
            await settle()
            [frame] = writer.frames

            co._on_result_part(
                link,
                ResultPartFrame(job_id=frame.job_id, seq=0,
                                payload=ok_outcomes(0)),
            )
            # The worker claims the stream is over after 1 of 2 jobs.
            co._on_result_end(
                link, ResultEndFrame(job_id=frame.job_id, parts=1)
            )
            assert not futures[0].done() and not futures[1].done()
            assert co.jobs_requeued == 2  # whole chunk requeued
            assert 0 in co.jobs and 1 in co.jobs  # neither failed
            # The pump inside _on_result_end reassigned both under a
            # fresh chunk id; a complete stream then delivers them.
            await settle()
            retry = writer.frames[1]
            assert retry.job_id != frame.job_id
            assert len(decode_cluster_chunk(retry.payload)) == 2
            co._on_result_part(
                link,
                ResultPartFrame(job_id=retry.job_id, seq=0,
                                payload=ok_outcomes(0, 1)),
            )
            co._on_result_end(
                link, ResultEndFrame(job_id=retry.job_id, parts=1)
            )
            assert [f.result(timeout=0) for f in futures] == [0, 1]

        asyncio.run(scenario())

    def test_out_of_order_part_drops_the_worker_and_requeues(self):
        async def scenario():
            clock = FakeClock()
            co = make_coordinator(clock, chunk_min=2, chunk_max=2)
            import concurrent.futures

            futures = [concurrent.futures.Future() for _ in range(2)]
            for i, future in enumerate(futures):
                co.submit(job_payload(i), future)  # no worker yet: queued
            link, writer = attach_worker(co, "a")
            co._pump()
            await settle()
            [frame] = writer.frames

            co._on_result_part(
                link,
                ResultPartFrame(job_id=frame.job_id, seq=5,
                                payload=ok_outcomes(0)),
            )
            assert "a" not in co.workers  # protocol violation
            assert co.workers_lost == 1
            assert sorted(co.pending) == [0, 1]  # chunk disbanded

        asyncio.run(scenario())

    def test_death_mid_stream_discards_partial_results(self):
        async def scenario():
            clock = FakeClock()
            co = make_coordinator(clock, chunk_min=2, chunk_max=2)
            import concurrent.futures

            futures = [concurrent.futures.Future() for _ in range(2)]
            for i, future in enumerate(futures):
                co.submit(job_payload(i), future)  # no worker yet: queued
            link, writer = attach_worker(co, "a")
            co._pump()
            await settle()
            [frame] = writer.frames

            co._on_result_part(
                link,
                ResultPartFrame(job_id=frame.job_id, seq=0,
                                payload=ok_outcomes(0)),
            )
            co._drop_worker(link)  # dies mid-stream
            assert co.chunks == {}
            assert not futures[0].done()  # nothing partially accepted
            assert sorted(co.pending) == [0, 1]

            # Late frames from the dead worker's stream are inert.
            co._on_result_part(
                link,
                ResultPartFrame(job_id=frame.job_id, seq=1,
                                payload=ok_outcomes(1)),
            )
            co._on_result_end(
                link, ResultEndFrame(job_id=frame.job_id, parts=2)
            )
            assert not futures[0].done() and not futures[1].done()

        asyncio.run(scenario())


class TestAdaptiveChunkSizing:
    """EWMA throughput → per-worker chunk size, clamped and fair."""

    def test_unmeasured_worker_probes_at_chunk_min(self):
        clock = FakeClock()
        co = make_coordinator(clock, chunk_min=2, chunk_max=16)
        link, _writer = attach_worker(co, "a")
        co.pending.extend(range(100))
        assert co._chunk_size(link) == 2

    def test_fast_worker_gets_bigger_chunks_than_straggler(self):
        clock = FakeClock()
        co = make_coordinator(clock, chunk_min=1, chunk_max=16,
                              chunk_target_s=0.5)
        fast, _ = attach_worker(co, "fast")
        slow, _ = attach_worker(co, "slow")
        fast.ewma_rate = 40.0  # jobs/sec
        slow.ewma_rate = 4.0
        co.pending.extend(range(1000))
        assert co._chunk_size(fast) == 16  # 40*0.5 clamped to max
        assert co._chunk_size(slow) == 2  # 4*0.5
        assert co._chunk_size(fast) > co._chunk_size(slow)

    def test_fair_share_clamp_protects_the_tail(self):
        clock = FakeClock()
        co = make_coordinator(clock, chunk_min=1, chunk_max=32)
        fast, _ = attach_worker(co, "fast")
        attach_worker(co, "other")
        fast.ewma_rate = 1000.0
        co.pending.extend(range(6))  # 6 jobs left, 2 workers
        assert co._chunk_size(fast) == 3  # not all 6

    def test_ewma_update_blends_samples(self):
        clock = FakeClock()
        co = make_coordinator(clock)
        link, _ = attach_worker(co, "a")
        co._observe_rate(link, 10.0)
        assert link.ewma_rate == 10.0
        co._observe_rate(link, 20.0)
        assert 10.0 < link.ewma_rate < 20.0

    def test_completion_timing_feeds_the_ewma(self):
        async def scenario():
            clock = FakeClock()
            co = make_coordinator(clock, chunk_min=4, chunk_max=4)
            import concurrent.futures

            futures = [concurrent.futures.Future() for _ in range(4)]
            for i, future in enumerate(futures):
                co.submit(job_payload(i), future)  # no worker yet: queued
            link, writer = attach_worker(co, "a")
            co._pump()
            await settle()
            [frame] = writer.frames
            clock.advance(2.0)  # 4 jobs in 2s -> 2 jobs/s
            co._on_result(
                link,
                ResultFrame(job_id=frame.job_id, ok=True,
                            payload=ok_outcomes(0, 1, 4, 9)),
            )
            assert link.ewma_rate == pytest.approx(2.0)

        asyncio.run(scenario())


class TestWorkerChunkExecution:
    def test_execute_chunk_runs_jobs_in_order(self):
        raw = encode_cluster_chunk([job_payload(i) for i in range(5)])
        entries = execute_chunk(raw)
        assert [ok for ok, _ in entries] == [True] * 5
        from repro.service.codec import decode_cluster_payload

        assert [decode_cluster_payload(p) for _, p in entries] == [
            0, 1, 4, 9, 16
        ]

    def test_execute_chunk_isolates_a_failing_job(self):
        raw = encode_cluster_chunk(
            [
                job_payload(1),
                encode_job(_boom, (3,), {}),
                job_payload(2),
            ]
        )
        entries = execute_chunk(raw)
        assert [ok for ok, _ in entries] == [True, False, True]
        from repro.service.codec import decode_cluster_payload

        assert "boom 3" in decode_cluster_payload(entries[1][1])

    def test_execute_chunk_rejects_corrupt_envelope(self):
        with pytest.raises(CodecError):
            execute_chunk(b"\x00 garbage")
        with pytest.raises(CodecError):
            execute_chunk(encode_cluster_payload("not a chunk"))

    def test_pack_outcome_parts_identity_and_bounds(self):
        entries = [(True, bytes(range(10)) * k) for k in (1, 5, 2, 9, 1)]
        parts = pack_outcome_parts(entries, 60)
        assert [e for part in parts for e in part] == entries  # identity
        assert all(len(part) >= 1 for part in parts)
        big = pack_outcome_parts(entries, 10 ** 9)
        assert len(big) == 1  # everything fits in one part

    def test_pack_outcome_parts_oversized_entry_gets_own_part(self):
        entries = [(True, b"x")] * 2 + [(True, b"y" * 500)] + [(True, b"x")]
        parts = pack_outcome_parts(entries, 100)
        assert [e for part in parts for e in part] == entries
        assert [len(p) for p in parts] == [2, 1, 1]


class TestStreamedEndToEnd:
    """Real workers forced into streaming via a tiny threshold."""

    def test_streamed_map_matches_serial(self):
        with ClusterExecutor(
            workers=2,
            stream_threshold=1,
            chunk_min=4,
            chunk_max=8,
            worker_preload=PRELOAD,
        ) as executor:
            assert executor.map(_square, range(64)) == [
                i * i for i in range(64)
            ]
            assert executor.stats["result_parts"] > 0  # streaming happened

    def test_streamed_population_parity(self):
        scheme = CBSScheme(n_samples=8)
        serial = report_fingerprint(population(scheme, engine="serial"))
        with ClusterExecutor(
            workers=2,
            stream_threshold=1,
            chunk_min=2,
            chunk_max=4,
            worker_preload=PRELOAD,
        ) as executor:
            streamed = report_fingerprint(
                population(scheme, engine=executor, batch_size=1)
            )
            assert executor.stats["result_parts"] > 0
        assert serial == streamed

    def test_sigkill_mid_streaming_population_stays_byte_identical(self):
        """The ISSUE acceptance: death mid-stream requeues cleanly."""
        scheme = CBSScheme(n_samples=8)
        serial = report_fingerprint(
            population(scheme, engine="serial", n=1 << 15, participants=32)
        )
        with ClusterExecutor(
            workers=2,
            stream_threshold=1,
            chunk_min=4,
            chunk_max=8,
            worker_preload=PRELOAD,
        ) as executor:
            executor.map(_square, [0])  # force startup; pids known
            victim = executor.local_worker_pids[0]
            report_box: list = []

            def run() -> None:
                report_box.append(
                    population(
                        scheme,
                        engine=executor,
                        n=1 << 15,
                        participants=32,
                        batch_size=1,
                    )
                )

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.15)  # let the first streams start
            os.kill(victim, signal.SIGKILL)
            thread.join(timeout=120)
            assert not thread.is_alive()
            # The EOF for the killed worker may still be in flight
            # right after the map returns; give the loop a moment.
            deadline = time.monotonic() + 10.0
            while (
                executor.stats["workers_lost"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            stats = executor.stats
        assert stats["workers_lost"] >= 1
        assert report_fingerprint(report_box[0]) == serial


class TestTuningValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_min": 0},
            {"chunk_min": 8, "chunk_max": 4},
            {"chunk_target_s": 0.0},
            {"stream_threshold": 0},
            {"job_timeout": 0.0},
            {"heartbeat_interval": 0.0},
            {"heartbeat_timeout": -1.0},
            {"startup_timeout": 0.0},
            {"min_workers": 0},
        ],
    )
    def test_bad_tuning_rejected(self, kwargs):
        with pytest.raises(EngineError):
            ClusterExecutor(workers=1, **kwargs)

    def test_get_executor_forwards_cluster_options(self):
        executor = get_executor(
            "cluster", 1, chunk_min=2, chunk_max=4, stream_threshold=128
        )
        try:
            assert isinstance(executor, ClusterExecutor)
            assert executor._chunk_min == 2
            assert executor._chunk_max == 4
            assert executor._stream_threshold == 128
        finally:
            executor.close()

    def test_get_executor_rejects_unknown_cluster_option(self):
        with pytest.raises(EngineError):
            get_executor("cluster", 1, warp_factor=9)

    def test_get_executor_rejects_options_for_inprocess_engines(self):
        with pytest.raises(EngineError):
            get_executor("serial", chunk_min=2)
        with pytest.raises(EngineError):
            get_executor("threads", 2, stream_threshold=1)

    def test_get_executor_rejects_options_on_instances(self):
        executor = get_executor("serial")
        with pytest.raises(EngineError):
            get_executor(executor, chunk_min=2)


from cluster_helpers import _megabyte  # noqa: E402


class TestAnswerPathSurvival:
    """Review fix: a result that cannot encode or frame must come back
    as a chunk-level error — never an unanswered chunk that hangs the
    caller on a worker that still heartbeats."""

    def test_unframeable_result_fails_fast_instead_of_hanging(self):
        """Worker max_frame too small for the 1 MiB result: the send
        fails on the worker, the fallback error frame (which fits)
        arrives, and map() raises promptly instead of blocking."""
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        executor = ClusterExecutor(
            workers=1, port=port, spawn_local=False, startup_timeout=30.0
        )

        def worker_thread() -> None:
            async def dial() -> None:
                await run_worker(
                    "127.0.0.1",
                    port,
                    engine="serial",
                    connect_retry_s=30.0,
                    max_frame=64 * 1024,  # cannot frame a 1 MiB result
                )

            asyncio.run(dial())

        thread = threading.Thread(target=worker_thread, daemon=True)
        thread.start()
        try:
            with pytest.raises(EngineError, match="exceeds limit"):
                executor.map(_megabyte, [1])
            # The worker survived its own answer failure.
            assert executor.map(_square, [5]) == [25]
        finally:
            executor.close()
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_zombie_count_mismatch_cannot_fail_requeued_jobs(self):
        async def scenario():
            import concurrent.futures

            clock = FakeClock()
            co = make_coordinator(clock, chunk_min=2, chunk_max=2)
            futures = [concurrent.futures.Future() for _ in range(2)]
            for i, future in enumerate(futures):
                co.submit(job_payload(i), future)  # no worker yet: queued
            link, writer = attach_worker(co, "a")
            co._pump()
            await settle()
            [frame] = writer.frames

            clock.advance(2.5)  # past the size-scaled budget (0.5 * 2)
            co._scan_timeouts(clock())  # zombie; jobs requeued
            assert co.chunks[frame.job_id].requeued

            # The slow worker answers with the wrong outcome count —
            # the requeued copies own these jobs now; nothing fails.
            co._on_result(
                link,
                ResultFrame(job_id=frame.job_id, ok=True,
                            payload=ok_outcomes(0)),  # 1 of 2
            )
            assert not futures[0].done() and not futures[1].done()
            assert 0 in co.jobs and 1 in co.jobs

            # The reassigned copy (pumped by _on_result) delivers.
            await settle()
            retry = writer.frames[1]
            co._on_result(
                link,
                ResultFrame(job_id=retry.job_id, ok=True,
                            payload=ok_outcomes(0, 1)),
            )
            assert [f.result(timeout=0) for f in futures] == [0, 1]

        asyncio.run(scenario())

    def test_min_workers_cannot_exceed_spawn_local_count(self):
        with pytest.raises(EngineError, match="min_workers"):
            ClusterExecutor(workers=2, min_workers=4)
        # External mode has no spawn target; any floor is legal.
        ClusterExecutor(workers=2, min_workers=4, spawn_local=False).close()
