"""Tests for population-level simulations and detection reports."""

import pytest

from repro.baselines import NaiveSamplingScheme
from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme
from repro.exceptions import TaskError
from repro.grid import GridSimulation, SimulationConfig
from repro.grid.simulation import run_population
from repro.tasks import MatchScreener, PasswordSearch, RangeDomain


@pytest.fixture
def fn():
    return PasswordSearch()


@pytest.fixture
def domain():
    return RangeDomain(0, 800)


class TestGridSimulation:
    def test_all_honest_population(self, fn, domain):
        report = run_population(
            domain,
            fn,
            CBSScheme(n_samples=10),
            behaviors=[HonestBehavior()],
            n_participants=8,
        )
        assert len(report.participants) == 8
        assert report.n_cheaters == 0
        assert report.detection_rate == 1.0  # vacuous
        assert report.false_alarm_rate == 0.0

    def test_mixed_population(self, fn, domain):
        report = run_population(
            domain,
            fn,
            CBSScheme(n_samples=25),
            behaviors=[HonestBehavior(), SemiHonestCheater(0.5)],
            n_participants=8,
        )
        assert report.n_cheaters == 4
        assert report.n_honest == 4
        assert report.cheaters_caught == 4
        assert report.honest_rejected == 0
        assert report.detection_rate == 1.0

    def test_partition_covers_domain(self, fn, domain):
        report = run_population(
            domain,
            fn,
            CBSScheme(n_samples=5),
            behaviors=[HonestBehavior()],
            n_participants=7,
        )
        total_evals = sum(
            p.participant_ledger.evaluations for p in report.participants
        )
        assert total_evals == 800

    def test_supervisor_ledger_aggregated(self, fn, domain):
        report = run_population(
            domain,
            fn,
            CBSScheme(n_samples=10),
            behaviors=[HonestBehavior()],
            n_participants=4,
        )
        assert report.supervisor_ledger.verifications == 4 * 10
        assert report.supervisor_bytes_received > 0

    def test_works_with_baselines(self, fn, domain):
        report = run_population(
            domain,
            fn,
            NaiveSamplingScheme(20),
            behaviors=[SemiHonestCheater(0.3)],
            n_participants=4,
        )
        assert report.detection_rate == 1.0

    def test_screener_passed_through(self, fn, domain):
        target = fn.target_for(123)
        report = run_population(
            domain,
            fn,
            CBSScheme(n_samples=5),
            behaviors=[HonestBehavior()],
            n_participants=4,
            screener=MatchScreener(target),
        )
        assert len(report.participants) == 4

    def test_deterministic(self, fn, domain):
        def run(seed):
            return run_population(
                domain,
                fn,
                CBSScheme(n_samples=10),
                behaviors=[SemiHonestCheater(0.6)],
                n_participants=4,
                seed=seed,
            )

        a, b = run(5), run(5)
        assert [p.accepted for p in a.participants] == [
            p.accepted for p in b.participants
        ]
        assert a.supervisor_ledger.as_dict() == b.supervisor_ledger.as_dict()

    def test_summary_row(self, fn, domain):
        report = run_population(
            domain,
            fn,
            CBSScheme(n_samples=10),
            behaviors=[HonestBehavior()],
            n_participants=2,
        )
        row = report.summary()
        assert row["scheme"] == "cbs(m=10)"
        assert row["participants"] == 2
        assert row["cheaters"] == 0

    def test_config_validation(self, fn, domain):
        with pytest.raises(TaskError):
            SimulationConfig(
                domain=domain,
                function=fn,
                scheme=CBSScheme(4),
                n_participants=0,
            )
        with pytest.raises(TaskError):
            SimulationConfig(
                domain=domain,
                function=fn,
                scheme=CBSScheme(4),
                behaviors=[],
            )

    def test_behavior_cycling(self, fn, domain):
        report = run_population(
            domain,
            fn,
            CBSScheme(n_samples=8),
            behaviors=[HonestBehavior(), SemiHonestCheater(0.5), HonestBehavior()],
            n_participants=6,
        )
        kinds = [p.behavior for p in report.participants]
        assert kinds[0] == kinds[3] == "honest"
        assert "semi-honest" in kinds[1] and "semi-honest" in kinds[4]
