"""Tests for the deterministic PRF helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.prf import prf_bytes, prf_coin, prf_float, prf_gauss, prf_int


class TestPrfBytes:
    def test_deterministic(self):
        assert prf_bytes(b"a", b"b") == prf_bytes(b"a", b"b")

    def test_part_boundaries_matter(self):
        # Length-prefixing: ("ab", "c") != ("a", "bc").
        assert prf_bytes(b"ab", b"c") != prf_bytes(b"a", b"bc")

    def test_requested_length(self):
        for n in (1, 16, 32, 33, 100, 1000):
            assert len(prf_bytes(b"seed", n_bytes=n)) == n

    def test_long_output_extends_prefix_free(self):
        short = prf_bytes(b"x", n_bytes=16)
        long = prf_bytes(b"x", n_bytes=64)
        assert long[:16] == short

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_distinct_inputs_distinct_outputs(self, a, b):
        if a != b:
            assert prf_bytes(a) != prf_bytes(b)


class TestPrfInt:
    def test_in_range(self):
        for bound in (1, 2, 7, 100, 1 << 32):
            v = prf_int(b"k", bound=bound)
            assert 0 <= v < bound

    def test_bound_one_always_zero(self):
        assert prf_int(b"any", bound=1) == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            prf_int(b"k", bound=0)

    def test_roughly_uniform(self):
        bound = 10
        counts = [0] * bound
        for i in range(5000):
            counts[prf_int(i.to_bytes(4, "big"), bound=bound)] += 1
        # Each bucket should be within 5 sigma of 500.
        sigma = math.sqrt(5000 * 0.1 * 0.9)
        assert all(abs(c - 500) < 5 * sigma for c in counts), counts


class TestPrfFloat:
    def test_unit_interval(self):
        for i in range(100):
            v = prf_float(i.to_bytes(4, "big"))
            assert 0.0 <= v < 1.0

    def test_mean_near_half(self):
        values = [prf_float(i.to_bytes(4, "big")) for i in range(2000)]
        assert abs(sum(values) / len(values) - 0.5) < 0.02


class TestPrfCoin:
    def test_extremes(self):
        assert not prf_coin(b"x", probability=0.0)
        assert prf_coin(b"x", probability=1.0)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            prf_coin(b"x", probability=1.5)

    def test_empirical_rate(self):
        hits = sum(
            prf_coin(i.to_bytes(4, "big"), probability=0.3) for i in range(3000)
        )
        assert abs(hits / 3000 - 0.3) < 0.03


class TestPrfGauss:
    def test_moments(self):
        values = [prf_gauss(i.to_bytes(4, "big")) for i in range(3000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert abs(mean) < 0.07
        assert abs(var - 1.0) < 0.1

    def test_shift_and_scale(self):
        v0 = prf_gauss(b"s")
        v1 = prf_gauss(b"s", mean=10.0, stdev=2.0)
        assert v1 == pytest.approx(10.0 + 2.0 * v0)
