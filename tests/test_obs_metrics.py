"""Unit tests for the observability plane: registry, trace, logging.

The metrics registry is the substrate every plane records into
(README "Observability"), so its semantics are pinned here in
isolation: instrument identity, label validation, cardinality
overflow, histogram bucketing, Prometheus rendering, and thread
safety under concurrent recording.
"""

import json
import logging
import threading
import urllib.request

import pytest

from repro.obs.http import MetricsServer
from repro.obs.logging import (
    JsonFormatter,
    TraceContextFilter,
    configure_logging,
    get_logger,
    log_event,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MAX_LABEL_SETS_PER_METRIC,
    OVERFLOW_LABEL_VALUE,
    MetricsRegistry,
    default_registry,
    log_buckets,
)
from repro.obs.trace import (
    bind_trace,
    current_span,
    current_trace,
    new_span_id,
    new_trace_id,
)


class TestCounters:
    def test_counts_up_and_snapshots(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        snap = reg.snapshot()
        assert snap["repro_test_total"]["type"] == "counter"
        assert snap["repro_test_total"]["values"] == [
            {"labels": {}, "value": 3.5}
        ]

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_evt_total", "", ("event",))
        c.labels(event="a").inc()
        c.labels(event="a").inc()
        c.labels(event="b").inc(5)
        assert reg.value("repro_evt_total", event="a") == 2
        assert reg.value("repro_evt_total", event="b") == 5
        assert reg.sum_values("repro_evt_total") == 7

    def test_labelled_metric_rejects_direct_record(self):
        c = MetricsRegistry().counter("repro_evt_total", "", ("event",))
        with pytest.raises(ValueError, match="has labels"):
            c.inc()

    def test_wrong_label_names_rejected(self):
        c = MetricsRegistry().counter("repro_evt_total", "", ("event",))
        with pytest.raises(ValueError, match="do not match"):
            c.labels(evnt="typo")

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_x_total") is reg.counter("repro_x_total")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered as"):
            reg.gauge("repro_x_total")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "", ("a",))
        with pytest.raises(ValueError, match="already registered with"):
            reg.counter("repro_x_total", "", ("b",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("0bad")
        with pytest.raises(ValueError):
            reg.counter("repro_ok_total", "", ("bad-label",))

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("repro_x_total")
        c.inc(100)
        assert c.value == 0


class TestGauges:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("repro_live")
        g.set(10)
        g.inc(3)
        g.dec()
        assert g.value == 12


class TestCardinalityCap:
    def test_overflow_collapses_into_one_series(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_ids_total", "", ("task",))
        for i in range(MAX_LABEL_SETS_PER_METRIC + 50):
            c.labels(task=f"task-{i}").inc()
        series = c.series()
        assert len(series) == MAX_LABEL_SETS_PER_METRIC + 1
        overflow = reg.value(
            "repro_ids_total", task=OVERFLOW_LABEL_VALUE
        )
        assert overflow == 50
        # Existing series keep recording normally after the cap.
        c.labels(task="task-0").inc()
        assert reg.value("repro_ids_total", task="task-0") == 2


class TestHistograms:
    def test_log_buckets_shape(self):
        bounds = log_buckets(0.001, 1.0, per_decade=1)
        assert bounds == (0.001, 0.01, 0.1, 1.0)
        with pytest.raises(ValueError):
            log_buckets(0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 0.5)

    def test_observations_land_in_correct_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = reg.snapshot()["repro_lat_seconds"]["values"][0]
        assert snap["buckets"] == [
            [0.1, 1], [1.0, 2], [10.0, 1], ["+Inf", 1]
        ]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_prometheus_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.render_prometheus()
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text

    def test_bucket_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one"):
            reg.histogram("repro_h", buckets=())
        with pytest.raises(ValueError, match="duplicate"):
            reg.histogram("repro_h2", buckets=(1.0, 1.0))

    def test_default_latency_buckets_span_expected_range(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert LATENCY_BUCKETS[-1] == pytest.approx(10.0)


class TestPrometheusRendering:
    def test_labels_escaped_and_types_declared(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "a help line", ("site",))
        c.labels(site='we"ird\\path\n').inc()
        text = reg.render_prometheus()
        assert "# HELP repro_x_total a help line" in text
        assert "# TYPE repro_x_total counter" in text
        assert 'site="we\\"ird\\\\path\\n"' in text
        assert text.endswith("\n")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total", "", ("x",)).labels(x="1").inc()
        reg.gauge("repro_b").set(2)
        reg.histogram("repro_c", buckets=(1.0,)).observe(0.5)
        json.dumps(reg.snapshot())


class TestThreadSafety:
    def test_concurrent_increments_are_not_lost(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_hot_total", "", ("t",))
        h = reg.histogram("repro_hot_seconds", buckets=(0.5,))
        n, threads = 2000, 8

        def hammer(tid):
            child = c.labels(t=str(tid % 2))
            for _ in range(n):
                child.inc()
                h.observe(0.1)

        pool = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert reg.sum_values("repro_hot_total") == n * threads
        assert reg.snapshot()["repro_hot_seconds"]["values"][0]["count"] == (
            n * threads
        )

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


class TestTraceContext:
    def test_id_shapes(self):
        assert len(new_trace_id()) == 16
        assert len(new_span_id()) == 8
        int(new_trace_id(), 16)  # valid hex

    def test_bind_nests_and_restores(self):
        assert current_trace() is None
        with bind_trace("t1", "s1"):
            assert (current_trace(), current_span()) == ("t1", "s1")
            with bind_trace("t2"):
                assert (current_trace(), current_span()) == ("t2", None)
            assert (current_trace(), current_span()) == ("t1", "s1")
        assert current_trace() is None

    def test_bind_is_per_thread(self):
        seen = {}

        def worker():
            seen["other"] = current_trace()

        with bind_trace("t1"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["other"] is None


class TestStructuredLogging:
    def test_log_event_stamps_trace_ids(self, caplog):
        logger = get_logger("obs_test")
        with caplog.at_level(logging.INFO, logger="repro.obs_test"):
            with bind_trace("tid123", "sid45"):
                log_event(logger, "thing_happened", detail=7)
        [record] = caplog.records
        assert record.event == "thing_happened"
        assert record.trace_id == "tid123"
        assert record.span_id == "sid45"
        assert record.detail == 7

    def test_json_formatter_emits_one_object_per_line(self):
        handler = logging.Handler()
        captured = []
        handler.emit = lambda r: captured.append(
            JsonFormatter().format(r)
        )
        handler.addFilter(TraceContextFilter())
        logger = get_logger("obs_json_test")
        logger.addHandler(handler)
        logger.setLevel(logging.DEBUG)
        try:
            with bind_trace("tidX"):
                log_event(
                    logger, "evt", level=logging.DEBUG, jobs=3
                )
        finally:
            logger.removeHandler(handler)
        payload = json.loads(captured[0])
        assert payload["event"] == "evt"
        assert payload["jobs"] == 3
        assert payload["trace_id"] == "tidX"
        assert payload["level"] == "DEBUG"

    def test_configure_logging_is_idempotent(self):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        try:
            h1 = configure_logging(json=True, level=logging.WARNING)
            h2 = configure_logging(json=False, level=logging.WARNING)
            ours = [
                h for h in root.handlers
                if getattr(h, "_repro_obs_handler", False)
            ]
            assert ours == [h2]
            assert h1 not in root.handlers
        finally:
            for h in list(root.handlers):
                if getattr(h, "_repro_obs_handler", False):
                    root.removeHandler(h)
            assert [
                h for h in root.handlers if h not in before
            ] == []


class TestMetricsHttp:
    def test_scrape_and_stats_endpoints(self):
        reg = MetricsRegistry()
        reg.counter("repro_scraped_total").inc(4)
        with MetricsServer(reg, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as resp:
                text = resp.read().decode()
                assert resp.headers["Content-Type"].startswith("text/plain")
            assert "repro_scraped_total 4" in text
            with urllib.request.urlopen(f"{base}/stats") as resp:
                snap = json.loads(resp.read())
            assert snap["repro_scraped_total"]["values"][0]["value"] == 4
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{base}/nope")
