"""Tests for the supervisor service's session store."""

import pytest

from repro.core.protocol import CommitmentMsg, SampleChallengeMsg
from repro.core.scheme import VerificationOutcome
from repro.exceptions import ProtocolError
from repro.service import SessionState, SessionStore
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def jump_to(self, seconds: float) -> None:
        """Set absolute time — backwards jumps included (clock skew)."""
        self.now = seconds


def assignment(task_id: str = "task-0") -> TaskAssignment:
    return TaskAssignment(task_id, RangeDomain(0, 32), PasswordSearch())


def commitment(task_id: str = "task-0") -> CommitmentMsg:
    return CommitmentMsg(task_id=task_id, root=b"\x01" * 32, n_leaves=32)


def challenge(task_id: str = "task-0") -> SampleChallengeMsg:
    return SampleChallengeMsg(task_id=task_id, indices=(1, 2))


def outcome(task_id: str = "task-0", accepted: bool = True) -> VerificationOutcome:
    return VerificationOutcome(task_id=task_id, accepted=accepted)


class TestLifecycle:
    def test_create_get_and_states(self):
        store = SessionStore()
        session = store.create("task-0", 0, assignment(), seed=7, protocol="cbs")
        assert session.state is SessionState.ASSIGNED
        assert store.get("task-0") is session
        assert "task-0" in store and store.active == 1

        store.record_commitment("task-0", commitment(), challenge())
        assert session.state is SessionState.COMMITTED
        store.record_outcome("task-0", outcome())
        assert session.state is SessionState.DONE
        assert store.active == 0
        assert store.outcomes == {"task-0": outcome()}

    def test_duplicate_task_id_rejected(self):
        store = SessionStore()
        store.create("task-0", 0, assignment(), seed=7, protocol="cbs")
        with pytest.raises(ProtocolError):
            store.create("task-0", 1, assignment(), seed=8, protocol="cbs")
        assert store.stats.rejected_duplicates == 1
        assert len(store) == 1  # the original survives

    def test_unknown_task_rejected(self):
        with pytest.raises(ProtocolError):
            SessionStore().get("task-404")

    def test_duplicate_commitment_rejected(self):
        store = SessionStore()
        store.create("task-0", 0, assignment(), seed=7, protocol="cbs")
        store.record_commitment("task-0", commitment(), challenge())
        with pytest.raises(ProtocolError):
            store.record_commitment("task-0", commitment(), challenge())

    def test_outcome_twice_rejected(self):
        store = SessionStore()
        store.create("task-0", 0, assignment(), seed=7, protocol="ni-cbs")
        store.record_outcome("task-0", outcome())
        with pytest.raises(ProtocolError):
            store.record_outcome("task-0", outcome(accepted=False))

    def test_begin_verification_claims_the_session_once(self):
        # The anti-replay guard: the VERIFYING transition happens
        # before the expensive work, so a concurrent duplicate fails
        # fast instead of burning a second worker slot.
        store = SessionStore()
        store.create("task-0", 0, assignment(), seed=7, protocol="ni-cbs")
        session = store.begin_verification("task-0", SessionState.ASSIGNED)
        assert session.state is SessionState.VERIFYING
        with pytest.raises(ProtocolError):
            store.begin_verification("task-0", SessionState.ASSIGNED)
        store.record_outcome("task-0", outcome())
        assert store.outcomes == {"task-0": outcome()}

    def test_begin_verification_enforces_expected_state(self):
        store = SessionStore()
        store.create("task-0", 0, assignment(), seed=7, protocol="cbs")
        # CBS proofs require a prior commitment.
        with pytest.raises(ProtocolError):
            store.begin_verification("task-0", SessionState.COMMITTED)

    def test_bad_ttl_rejected(self):
        with pytest.raises(ProtocolError):
            SessionStore(ttl=0)


class TestEviction:
    def test_abandoned_sessions_evicted_after_ttl(self):
        clock = FakeClock()
        store = SessionStore(ttl=10.0, clock=clock)
        store.create("task-0", 0, assignment("task-0"), seed=1, protocol="cbs")
        clock.advance(5)
        store.create("task-1", 1, assignment("task-1"), seed=2, protocol="cbs")

        clock.advance(6)  # task-0 idle 11s, task-1 idle 6s
        assert store.evict_stale() == ["task-0"]
        assert "task-0" not in store and "task-1" in store
        assert store.stats.evicted == 1
        # A participant returning after eviction looks brand new.
        with pytest.raises(ProtocolError):
            store.get("task-0")

    def test_touch_refreshes_the_ttl(self):
        clock = FakeClock()
        store = SessionStore(ttl=10.0, clock=clock)
        store.create("task-0", 0, assignment(), seed=1, protocol="cbs")
        clock.advance(8)
        store.get("task-0")  # activity resets the idle timer
        clock.advance(8)
        assert store.evict_stale() == []

    def test_completed_sessions_never_evicted(self):
        clock = FakeClock()
        store = SessionStore(ttl=10.0, clock=clock)
        store.create("task-0", 0, assignment(), seed=1, protocol="ni-cbs")
        store.record_outcome("task-0", outcome())
        clock.advance(1000)
        assert store.evict_stale() == []
        assert store.outcomes == {"task-0": outcome()}

    def test_mid_protocol_sessions_evicted_too(self):
        clock = FakeClock()
        store = SessionStore(ttl=10.0, clock=clock)
        store.create("task-0", 0, assignment(), seed=1, protocol="cbs")
        store.record_commitment("task-0", commitment(), challenge())
        clock.advance(11)
        assert store.evict_stale() == ["task-0"]
        # The slot can be re-assigned afterwards (fresh session).
        store.create("task-0", 0, assignment(), seed=1, protocol="cbs")


class TestEvictionRacingVerification:
    """TTL eviction racing in-flight work: every post-eviction touch
    must be a clean ProtocolError, never a KeyError."""

    def test_evict_then_proofs_is_clean_protocol_error(self):
        # A committed session idles past the TTL; when the proofs
        # finally arrive, begin_verification must reject them exactly
        # like an unknown task.
        clock = FakeClock()
        store = SessionStore(ttl=10.0, clock=clock)
        store.create("task-0", 0, assignment(), seed=1, protocol="cbs")
        store.record_commitment("task-0", commitment(), challenge())
        clock.advance(11)
        assert store.evict_stale() == ["task-0"]
        with pytest.raises(ProtocolError, match="unknown task"):
            store.begin_verification("task-0", SessionState.COMMITTED)

    def test_evict_while_verifying_then_outcome_is_clean(self):
        # Slow off-loop verification: the session is claimed, the
        # sweeper evicts it mid-verify, and the worker's verdict lands
        # on a session that no longer exists.
        clock = FakeClock()
        store = SessionStore(ttl=10.0, clock=clock)
        store.create("task-0", 0, assignment(), seed=1, protocol="ni-cbs")
        store.begin_verification("task-0", SessionState.ASSIGNED)
        clock.advance(11)
        assert store.evict_stale() == ["task-0"]
        with pytest.raises(ProtocolError, match="unknown task"):
            store.record_outcome("task-0", outcome())
        assert store.stats.completed == 0
        assert store.outcomes == {}


class TestBackwardJumpingClock:
    """Clock skew hardening: a clock that jumps backwards must never
    evict a live session — negative ages clamp, and a touch at an
    earlier timestamp never rewinds ``touched_at``."""

    def test_negative_age_never_evicts(self):
        clock = FakeClock()
        clock.jump_to(100.0)
        store = SessionStore(ttl=10.0, clock=clock)
        store.create("task-0", 0, assignment(), seed=1, protocol="cbs")
        clock.jump_to(0.0)  # the clock falls over
        assert store.evict_stale() == []
        assert "task-0" in store
        assert store.stats.evicted == 0

    def test_touch_during_backward_jump_does_not_rewind(self):
        # The dangerous interleaving: create at t=100, clock jumps to
        # t=0, the participant touches the session (which must NOT
        # rewind touched_at to 0), clock recovers to t=105.  The
        # session was touched 5 "real" seconds ago — evicting it would
        # kick a live participant mid-protocol.
        clock = FakeClock()
        clock.jump_to(100.0)
        store = SessionStore(ttl=10.0, clock=clock)
        store.create("task-0", 0, assignment(), seed=1, protocol="cbs")
        clock.jump_to(0.0)
        store.get("task-0")  # touch at the skewed time
        clock.jump_to(105.0)
        assert store.evict_stale() == []
        assert "task-0" in store

    def test_eviction_resumes_once_clock_recovers(self):
        # The clamp grants grace, not immortality: once real time
        # advances past the TTL from the last forward-time touch, an
        # abandoned session still goes.
        clock = FakeClock()
        clock.jump_to(100.0)
        store = SessionStore(ttl=10.0, clock=clock)
        store.create("task-0", 0, assignment(), seed=1, protocol="cbs")
        clock.jump_to(0.0)
        store.get("task-0")
        clock.jump_to(111.0)  # 11s after the surviving touched_at=100
        assert store.evict_stale() == ["task-0"]

    def test_forward_touch_still_refreshes(self):
        clock = FakeClock()
        store = SessionStore(ttl=10.0, clock=clock)
        store.create("task-0", 0, assignment(), seed=1, protocol="cbs")
        clock.advance(8.0)
        store.get("task-0")  # normal monotone touch
        clock.advance(8.0)
        assert store.evict_stale() == []  # only 8s idle, not 16
