"""Unit tests for the service frame codec (repro.service.codec)."""

import asyncio

import pytest

from repro.core.protocol import (
    AssignMsg,
    CommitmentMsg,
    SampleChallengeMsg,
    VerdictMsg,
)
from repro.exceptions import ProtocolError, ReproError
from repro.service import (
    FRAME_HEADER_BYTES,
    WORKLOADS,
    ChallengeFrame,
    CommitmentFrame,
    ErrorFrame,
    TaskAssign,
    TaskRequest,
    VerdictFrame,
    decode_frame,
    decode_frame_payload,
    encode_frame,
    memory_duplex,
    read_frame,
    resolve_workload,
    write_frame,
)
from repro.tasks import PasswordSearch


def sample_assign() -> TaskAssign:
    return TaskAssign(
        assign=AssignMsg(task_id="task-3", n_inputs=64, workload="PasswordSearch"),
        participant=3,
        domain_start=192,
        domain_stop=256,
        protocol="ni-cbs",
        n_samples=16,
        hash_name="sha256",
        sample_hash_name="sha256",
        leaf_encoding="hashed",
        seed=3_000_012,
    )


class TestRoundTrips:
    def test_task_request_with_and_without_slot(self):
        for frame in (TaskRequest(), TaskRequest(participant=7)):
            assert decode_frame(encode_frame(frame)) == frame

    def test_assign_round_trip(self):
        frame = sample_assign()
        assert decode_frame(encode_frame(frame)) == frame

    def test_wrapped_binary_messages(self):
        frames = [
            CommitmentFrame(
                msg=CommitmentMsg(task_id="t", root=b"\x01" * 32, n_leaves=8)
            ),
            ChallengeFrame(
                msg=SampleChallengeMsg(task_id="t", indices=(1, 2, 3))
            ),
            VerdictFrame(
                msg=VerdictMsg(task_id="t", accepted=False, reason="wrong_result")
            ),
            ErrorFrame(message="nope"),
        ]
        for frame in frames:
            assert decode_frame(encode_frame(frame)) == frame

    def test_header_is_big_endian_payload_length(self):
        encoded = encode_frame(TaskRequest())
        length = int.from_bytes(encoded[:FRAME_HEADER_BYTES], "big")
        assert length == len(encoded) - FRAME_HEADER_BYTES


class TestRejection:
    def test_oversized_frame_rejected_on_encode(self):
        big = ErrorFrame(message="x" * 1000)
        with pytest.raises(ProtocolError):
            encode_frame(big, max_frame=100)

    def test_oversized_length_prefix_rejected_on_decode(self):
        encoded = encode_frame(TaskRequest())
        with pytest.raises(ProtocolError):
            decode_frame(encoded, max_frame=4)

    def test_length_mismatch_rejected(self):
        encoded = encode_frame(TaskRequest())
        with pytest.raises(ProtocolError):
            decode_frame(encoded + b"x")
        with pytest.raises(ProtocolError):
            decode_frame(encoded[:-1])

    def test_non_object_payloads_rejected(self):
        for payload in (b"null", b"[]", b'"t"', b"3"):
            with pytest.raises(ProtocolError):
                decode_frame_payload(payload)

    def test_unknown_type_tag_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame_payload(b'{"t": "teapot"}')

    def test_assign_value_validation(self):
        # Legal JSON, illegal values: a hostile supervisor must not be
        # able to crash a client with ValueError/OverflowError later.
        base = sample_assign()
        encoded = encode_frame(base)
        import json

        payload = json.loads(encoded[FRAME_HEADER_BYTES:])
        for key, value in [
            ("leaf_encoding", "bogus"),
            ("protocol", "pigeon"),
            ("n_samples", 0),
            ("seed", -1),
            ("seed", 1 << 70),
            ("participant", -2),
            ("domain", [5, 5]),
        ]:
            mutated = dict(payload, **{key: value})
            with pytest.raises(ProtocolError):
                decode_frame_payload(
                    json.dumps(mutated).encode("utf-8")
                )

    def test_bad_base64_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame_payload(b'{"t": "commitment", "m": "%%%"}')

    def test_wrong_field_types_rejected(self):
        # The assign case trips the inner binary decoder (CodecError);
        # the rest fail frame-level validation (ProtocolError).  Both
        # honour the one contract that matters: a ReproError, never an
        # uncaught TypeError/KeyError.
        bad_payloads = [
            b'{"t": "task_request", "participant": "zero"}',
            b'{"t": "task_request", "participant": -1}',
            b'{"t": "task_request", "participant": true}',
            b'{"t": "error", "message": 5}',
            b'{"t": "assign", "m": "", "participant": 0, "domain": "x",'
            b' "protocol": "cbs", "n_samples": 1, "hash": "sha256",'
            b' "sample_hash": "sha256", "leaf_encoding": "hashed", "seed": 0}',
        ]
        for payload in bad_payloads:
            with pytest.raises(ReproError):
                decode_frame_payload(payload)


class TestWorkloadCatalogue:
    def test_catalogue_builds_every_kernel(self):
        for name in WORKLOADS:
            assert resolve_workload(name) is not None

    def test_password_search_is_canonical(self):
        fn = resolve_workload("PasswordSearch")
        reference = PasswordSearch()
        assert fn.evaluate(17) == reference.evaluate(17)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ProtocolError):
            resolve_workload("MiningRig")


class TestAsyncStreamHelpers:
    def run(self, coro):
        return asyncio.run(coro)

    def test_write_then_read_over_memory_duplex(self):
        async def scenario():
            (a_reader, a_writer), (b_reader, _b_writer) = memory_duplex()
            frame = sample_assign()
            await write_frame(a_writer, frame)
            await write_frame(a_writer, ErrorFrame(message="done"))
            assert await read_frame(b_reader) == frame
            assert await read_frame(b_reader) == ErrorFrame(message="done")
            a_writer.close()
            assert await read_frame(b_reader) is None

        self.run(scenario())

    def test_truncated_stream_raises(self):
        async def scenario():
            (_a_reader, a_writer), (b_reader, _b_writer) = memory_duplex()
            a_writer.write(encode_frame(TaskRequest())[:-2])
            a_writer.close()
            with pytest.raises(ProtocolError):
                await read_frame(b_reader)

        self.run(scenario())

    def test_partial_header_raises(self):
        async def scenario():
            (_a_reader, a_writer), (b_reader, _b_writer) = memory_duplex()
            a_writer.write(b"\x00\x00")
            a_writer.close()
            with pytest.raises(ProtocolError):
                await read_frame(b_reader)

        self.run(scenario())

    def test_oversized_frame_rejected_before_body_read(self):
        async def scenario():
            (_a_reader, a_writer), (b_reader, _b_writer) = memory_duplex()
            a_writer.write((1 << 30).to_bytes(4, "big"))
            with pytest.raises(ProtocolError):
                await read_frame(b_reader, max_frame=1024)

        self.run(scenario())
