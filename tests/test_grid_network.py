"""Tests for the simulated network fabric."""

import pytest

from repro.accounting import CostLedger
from repro.core.protocol import VerdictMsg
from repro.exceptions import ProtocolError
from repro.grid import Network


class Recorder:
    """Minimal node: records everything it receives."""

    def __init__(self, name: str, network: Network, reply_to: str | None = None):
        self.name = name
        self.ledger = CostLedger()
        self.network = network
        self.reply_to = reply_to
        self.received: list[tuple[str, object]] = []
        network.attach(self)

    def receive(self, sender: str, message: object) -> None:
        self.received.append((sender, message))
        if self.reply_to is not None:
            self.network.send(self.name, self.reply_to, message)
            self.reply_to = None  # reply once


def msg() -> VerdictMsg:
    return VerdictMsg(task_id="t", accepted=True)


class TestAttachment:
    def test_duplicate_name_rejected(self):
        net = Network()
        Recorder("a", net)
        with pytest.raises(ProtocolError):
            Recorder("a", net)

    def test_unknown_endpoints_rejected(self):
        net = Network()
        Recorder("a", net)
        with pytest.raises(ProtocolError):
            net.send("a", "ghost", msg())
        with pytest.raises(ProtocolError):
            net.send("ghost", "a", msg())

    def test_node_lookup(self):
        net = Network()
        node = Recorder("a", net)
        assert net.node("a") is node
        assert net.node_names == ["a"]


class TestDelivery:
    def test_fifo_order(self):
        net = Network()
        a = Recorder("a", net)
        b = Recorder("b", net)
        m1 = VerdictMsg(task_id="first", accepted=True)
        m2 = VerdictMsg(task_id="second", accepted=True)
        net.send("a", "b", m1)
        net.send("a", "b", m2)
        assert net.pending == 2
        delivered = net.deliver_all()
        assert delivered == 2
        assert [m.task_id for _, m in b.received] == ["first", "second"]

    def test_cascading_sends_delivered(self):
        net = Network()
        a = Recorder("a", net)
        b = Recorder("b", net, reply_to="a")
        net.send("a", "b", msg())
        assert net.deliver_all() == 2
        assert len(a.received) == 1

    def test_loop_guard(self):
        net = Network()

        class Echo(Recorder):
            def receive(self, sender, message):
                self.network.send(self.name, sender, message)

        Echo("a", net)
        Echo("b", net)
        net.send("a", "b", msg())
        with pytest.raises(ProtocolError, match="cap"):
            net.deliver_all(max_messages=50)


class TestAccounting:
    def test_ledgers_charged_both_ends(self):
        net = Network()
        a = Recorder("a", net)
        b = Recorder("b", net)
        m = msg()
        net.send("a", "b", m)
        assert a.ledger.bytes_sent == m.wire_size()
        assert b.ledger.bytes_received == m.wire_size()

    def test_link_stats(self):
        net = Network()
        Recorder("a", net)
        Recorder("b", net)
        net.send("a", "b", msg())
        net.send("a", "b", msg())
        stats = net.links[("a", "b")]
        assert stats.messages == 2
        assert stats.bytes == 2 * msg().wire_size()

    def test_directional_aggregates(self):
        net = Network()
        Recorder("sup", net)
        Recorder("p1", net)
        Recorder("p2", net)
        net.send("p1", "sup", msg())
        net.send("p2", "sup", msg())
        net.send("sup", "p1", msg())
        assert net.bytes_into("sup") == 2 * msg().wire_size()
        assert net.bytes_out_of("sup") == msg().wire_size()
        assert net.total_messages == 3

    def test_latency_model(self):
        net = Network(latency_per_message=1.0, latency_per_byte=0.5)
        Recorder("a", net)
        Recorder("b", net)
        net.send("a", "b", msg())
        stats = net.links[("a", "b")]
        assert stats.transfer_time == pytest.approx(1.0 + 0.5 * msg().wire_size())
