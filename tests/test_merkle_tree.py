"""Tests for the full Merkle tree (paper §3.1, Eq. 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyTreeError, LeafIndexError, MerkleError
from repro.merkle import MerkleTree, get_hash
from repro.merkle.tree import (
    LeafEncoding,
    combine,
    empty_leaf_digest,
    encode_leaf,
)


def payloads(n: int) -> list[bytes]:
    return [f"result-{i}".encode() for i in range(n)]


class TestConstruction:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert tree.n_leaves == 1
        assert tree.height == 0
        assert tree.root == encode_leaf(b"only", tree.hash_fn, LeafEncoding.HASHED)

    def test_two_leaves_match_manual(self):
        h = get_hash("sha256")
        tree = MerkleTree([b"a", b"b"], hash_fn=h)
        left = encode_leaf(b"a", h, LeafEncoding.HASHED)
        right = encode_leaf(b"b", h, LeafEncoding.HASHED)
        assert tree.root == combine(h, left, right)

    def test_empty_rejected(self):
        with pytest.raises(EmptyTreeError):
            MerkleTree([])

    def test_padding_to_power_of_two(self):
        tree = MerkleTree(payloads(5))
        assert tree.n_leaves == 5
        assert tree.n_padded_leaves == 8
        assert tree.height == 3

    def test_padding_changes_root_vs_truncation(self):
        # A 5-leaf tree is not the same as an 8-leaf tree of the first
        # 5 payloads plus arbitrary junk: padding is domain-separated.
        h = get_hash("sha256")
        five = MerkleTree(payloads(5), hash_fn=h)
        pad = empty_leaf_digest(h)
        assert pad != encode_leaf(b"", h, LeafEncoding.HASHED)
        assert five.n_padded_leaves == 8

    def test_node_count(self):
        tree = MerkleTree(payloads(8))
        # 8 + 4 + 2 + 1
        assert tree.n_nodes == 15

    def test_deterministic_roots(self):
        assert MerkleTree(payloads(10)).root == MerkleTree(payloads(10)).root

    def test_leaf_order_matters(self):
        a = MerkleTree([b"x", b"y"])
        b = MerkleTree([b"y", b"x"])
        assert a.root != b.root

    def test_different_hashes_different_roots(self):
        a = MerkleTree(payloads(4), hash_fn=get_hash("sha256"))
        b = MerkleTree(payloads(4), hash_fn=get_hash("md5"))
        assert a.root != b.root
        assert len(a.root) == 32
        assert len(b.root) == 16


class TestLeafEncoding:
    def test_raw_requires_digest_size(self):
        with pytest.raises(MerkleError, match="RAW leaf encoding"):
            MerkleTree([b"short"], leaf_encoding=LeafEncoding.RAW)

    def test_raw_uses_payload_verbatim(self):
        # Paper-faithful mode: Φ(L_i) = f(x_i) directly.
        h = get_hash("sha256")
        leaves = [h.digest(bytes([i])) for i in range(4)]
        tree = MerkleTree(leaves, hash_fn=h, leaf_encoding=LeafEncoding.RAW)
        assert tree.leaf_digest(2) == leaves[2]

    def test_hashed_differs_from_raw(self):
        h = get_hash("sha256")
        leaves = [h.digest(bytes([i])) for i in range(4)]
        raw = MerkleTree(leaves, hash_fn=h, leaf_encoding=LeafEncoding.RAW)
        hashed = MerkleTree(leaves, hash_fn=h, leaf_encoding=LeafEncoding.HASHED)
        assert raw.root != hashed.root


class TestInspection:
    def test_phi_root_is_level_zero(self):
        tree = MerkleTree(payloads(4))
        assert tree.phi(0, 0) == tree.root

    def test_phi_leaf_level(self):
        tree = MerkleTree(payloads(4))
        assert tree.phi(tree.height, 1) == tree.leaf_digest(1)

    def test_phi_bounds(self):
        tree = MerkleTree(payloads(4))
        with pytest.raises(MerkleError):
            tree.phi(5, 0)
        with pytest.raises(MerkleError):
            tree.phi(0, 1)

    def test_leaf_digest_bounds(self):
        tree = MerkleTree(payloads(5))
        with pytest.raises(LeafIndexError):
            tree.leaf_digest(5)  # padding leaves are not addressable
        with pytest.raises(LeafIndexError):
            tree.leaf_digest(-1)

    def test_len(self):
        assert len(MerkleTree(payloads(9))) == 9


class TestEquationOne:
    def test_internal_node_rule(self):
        # Φ(V) = hash(Φ(left) || Φ(right)) per Eq. (1), with node tag.
        h = get_hash("sha256")
        tree = MerkleTree(payloads(4), hash_fn=h)
        left = tree.phi(2, 0)
        right = tree.phi(2, 1)
        assert tree.phi(1, 0) == combine(h, left, right)

    def test_figure1_shape(self):
        # Fig. 1's example: n leaves, root reconstructible from any
        # leaf plus its siblings (exercised via auth paths elsewhere);
        # here: every level halves.
        tree = MerkleTree(payloads(16))
        for level in range(tree.height + 1):
            assert len(tree._levels[level]) == 1 << level


class TestPropertyBased:
    @given(st.lists(st.binary(min_size=0, max_size=40), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_every_leaf_proves_against_root(self, leaves):
        tree = MerkleTree(leaves)
        for i in range(len(leaves)):
            path = tree.auth_path(i)
            assert path.verify(leaves[i], tree.root, tree.hash_fn)

    @given(
        st.lists(st.binary(min_size=1, max_size=16), min_size=2, max_size=32),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_modified_leaf_changes_root(self, leaves, data):
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        original = MerkleTree(leaves).root
        mutated = list(leaves)
        mutated[index] = mutated[index] + b"!"
        assert MerkleTree(mutated).root != original
