"""Tests for repro.net.transport — SecurityConfig, retrying connects,
TLS contexts and the heartbeat helper."""

import asyncio
import ssl

import pytest

from repro.exceptions import AuthError, ProtocolError
from repro.net.transport import (
    SecurityConfig,
    close_writer,
    heartbeat_loop,
    open_connection,
)

SECRET = b"0123456789abcdef0123456789abcdef"


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


class TestSecurityConfig:
    def test_from_options_all_unset_is_none(self):
        assert SecurityConfig.from_options() is None

    def test_from_options_loads_secret(self, secret_file):
        config = SecurityConfig.from_options(secret_file=secret_file)
        assert config is not None and len(config.secret) >= 32

    def test_tls_key_without_cert_rejected(self):
        with pytest.raises(ProtocolError, match="without --tls-cert"):
            SecurityConfig(tls_key="/tmp/key.pem")

    def test_bad_handshake_timeout_rejected(self):
        with pytest.raises(ProtocolError, match="handshake timeout"):
            SecurityConfig(secret=SECRET, handshake_timeout=0.0)

    def test_no_tls_means_no_contexts(self):
        config = SecurityConfig(secret=SECRET)
        assert config.server_ssl_context() is None
        assert config.client_ssl_context() is None

    def test_server_context_needs_the_key(self, tls_material):
        cert, _key = tls_material
        with pytest.raises(ProtocolError, match="--tls-key"):
            SecurityConfig(tls_cert=cert).server_ssl_context()

    def test_contexts_built_from_real_material(self, tls_material):
        cert, key = tls_material
        config = SecurityConfig(tls_cert=cert, tls_key=key)
        server_ctx = config.server_ssl_context()
        client_ctx = config.client_ssl_context()
        assert server_ctx.minimum_version >= ssl.TLSVersion.TLSv1_2
        assert client_ctx.verify_mode == ssl.CERT_REQUIRED
        assert client_ctx.check_hostname is False

    def test_unreadable_material_raises_protocol_error(self, tmp_path):
        missing = str(tmp_path / "nope.pem")
        with pytest.raises(ProtocolError, match="cannot load"):
            SecurityConfig(tls_cert=missing, tls_key=missing).server_ssl_context()
        with pytest.raises(ProtocolError, match="cannot load"):
            SecurityConfig(tls_cert=missing).client_ssl_context()

    def test_from_options_propagates_secret_errors(self, tmp_path):
        with pytest.raises(AuthError):
            SecurityConfig.from_options(secret_file=str(tmp_path / "nope"))

    def test_repr_never_leaks_the_secret(self):
        """A logged/raised SecurityConfig must not print the secret."""
        config = SecurityConfig(secret=SECRET, tls_cert="/tmp/cert.pem")
        assert SECRET.decode() not in repr(config)
        assert "cert.pem" in repr(config)  # non-sensitive fields stay

    def test_client_ssl_context_is_cached_per_config(self, tls_material):
        cert, key = tls_material
        config = SecurityConfig(tls_cert=cert, tls_key=key)
        assert config.client_ssl_context() is config.client_ssl_context()

    def test_generate_self_signed_cert_yields_loadable_material(
        self, tmp_path
    ):
        from repro.net.transport import generate_self_signed_cert

        cert = str(tmp_path / "c.pem")
        key = str(tmp_path / "k.pem")
        try:
            generate_self_signed_cert(cert, key, common_name="t", days=1)
        except Exception as exc:  # no openssl in this environment
            pytest.skip(f"cannot generate cert: {exc}")
        config = SecurityConfig(tls_cert=cert, tls_key=key)
        assert config.server_ssl_context() is not None
        assert config.client_ssl_context() is not None


class TestOpenConnection:
    def test_negative_retry_rejected(self):
        async def scenario():
            with pytest.raises(ProtocolError, match="connect retry"):
                await open_connection("127.0.0.1", 1, connect_retry_s=-1.0)

        run(scenario())

    def test_no_retry_fails_fast_on_refused(self):
        async def scenario():
            import socket

            with socket.socket() as probe:  # grab a port nobody serves
                probe.bind(("127.0.0.1", 0))
                port = probe.getsockname()[1]
            with pytest.raises(OSError):
                await open_connection("127.0.0.1", port)

        run(scenario())

    def test_retry_budget_eventually_gives_up(self):
        async def scenario():
            import socket

            with socket.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                port = probe.getsockname()[1]
            start = asyncio.get_running_loop().time()
            with pytest.raises(OSError):
                await open_connection(
                    "127.0.0.1", port, connect_retry_s=0.4
                )
            assert asyncio.get_running_loop().time() - start >= 0.3

        run(scenario())

    def test_retry_absorbs_a_late_binding_listener(self):
        """The worker-races-coordinator scenario, on the shared helper."""

        async def scenario():
            import socket

            with socket.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                port = probe.getsockname()[1]

            async def bind_late():
                await asyncio.sleep(0.3)
                return await asyncio.start_server(
                    lambda r, w: w.close(), "127.0.0.1", port
                )

            server_task = asyncio.ensure_future(bind_late())
            reader, writer = await open_connection(
                "127.0.0.1", port, connect_retry_s=15.0
            )
            await close_writer(writer)
            server = await server_task
            server.close()
            await server.wait_closed()

        run(scenario())


class TestHeartbeatLoop:
    def test_bad_interval_rejected(self):
        async def scenario():
            with pytest.raises(ProtocolError, match="heartbeat interval"):
                await heartbeat_loop(lambda: None, 0.0)

        run(scenario())

    def test_beacons_fire_until_cancelled(self):
        async def scenario():
            beats = []

            async def send():
                beats.append(1)

            task = asyncio.ensure_future(heartbeat_loop(send, 0.01))
            await asyncio.sleep(0.2)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert len(beats) >= 3

        run(scenario())


class TestCloseWriter:
    def test_tolerates_a_dead_writer(self):
        class DeadWriter:
            def close(self):
                raise ConnectionResetError

            async def wait_closed(self):
                raise ConnectionResetError

        run(close_writer(DeadWriter()))
