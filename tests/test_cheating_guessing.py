"""Tests for guess models (the paper's q parameter)."""

import pytest

from repro.cheating import BernoulliGuess, UniformValueGuess, ZeroGuess
from repro.cheating.guessing import guess_model_for_q
from repro.exceptions import TaskError


def oracle(value: bytes):
    return lambda: value


class TestZeroGuess:
    def test_never_matches_wide_outputs(self):
        model = ZeroGuess()
        truth = b"\xaa" * 16
        for i in range(200):
            guess = model.guess(i, i, oracle(truth), result_size=16)
            assert guess != truth

    def test_deterministic_per_index_and_salt(self):
        model = ZeroGuess()
        a = model.guess(3, 3, oracle(b""), result_size=8, salt=b"s")
        b = model.guess(3, 3, oracle(b""), result_size=8, salt=b"s")
        assert a == b

    def test_salt_changes_guess(self):
        model = ZeroGuess()
        a = model.guess(3, 3, oracle(b""), result_size=8, salt=b"s1")
        b = model.guess(3, 3, oracle(b""), result_size=8, salt=b"s2")
        assert a != b

    def test_respects_result_size(self):
        model = ZeroGuess()
        assert len(model.guess(0, 0, oracle(b""), result_size=5)) == 5


class TestBernoulliGuess:
    def test_q_extremes(self):
        truth = b"\x42" * 8
        always = BernoulliGuess(1.0)
        never = BernoulliGuess(0.0)
        assert always.guess(1, 1, oracle(truth), result_size=8) == truth
        assert never.guess(1, 1, oracle(truth), result_size=8) != truth

    def test_empirical_rate_matches_q(self):
        q = 0.3
        model = BernoulliGuess(q)
        truth = b"\x11" * 8
        hits = sum(
            model.guess(i, i, oracle(truth), result_size=8) == truth
            for i in range(2000)
        )
        assert abs(hits / 2000 - q) < 0.04

    def test_wrong_guess_really_wrong(self):
        model = BernoulliGuess(0.5)
        truth = b"\x00"
        for i in range(300):
            guess = model.guess(i, i, oracle(truth), result_size=1)
            # Either exactly the truth (lucky) or definitely different.
            assert guess == truth or guess != truth  # tautology guard
        # At least some of each for q=0.5.
        outcomes = {
            model.guess(i, i, oracle(truth), result_size=1) == truth
            for i in range(100)
        }
        assert outcomes == {True, False}

    def test_q_validated(self):
        with pytest.raises(TaskError):
            BernoulliGuess(-0.1)
        with pytest.raises(TaskError):
            BernoulliGuess(1.1)


class TestUniformValueGuess:
    def test_draws_from_alphabet(self):
        model = UniformValueGuess([b"\x00", b"\x01"])
        for i in range(100):
            assert model.guess(i, i, oracle(b""), result_size=1) in (
                b"\x00",
                b"\x01",
            )

    def test_q_is_inverse_alphabet(self):
        assert UniformValueGuess([b"a", b"b", b"c", b"d"]).q == 0.25

    def test_never_calls_oracle(self):
        def exploding():
            raise AssertionError("oracle must not be called")

        model = UniformValueGuess([b"\x00", b"\x01"])
        model.guess(0, 0, exploding, result_size=1)

    def test_roughly_uniform(self):
        model = UniformValueGuess([b"\x00", b"\x01"])
        zeros = sum(
            model.guess(i, i, oracle(b""), result_size=1) == b"\x00"
            for i in range(2000)
        )
        assert abs(zeros / 2000 - 0.5) < 0.04

    def test_validation(self):
        with pytest.raises(TaskError):
            UniformValueGuess([])
        with pytest.raises(TaskError):
            UniformValueGuess([b"a", b"ab"])


class TestFactory:
    def test_zero_gives_zero_guess(self):
        assert isinstance(guess_model_for_q(0.0), ZeroGuess)

    def test_positive_gives_bernoulli(self):
        model = guess_model_for_q(0.4)
        assert isinstance(model, BernoulliGuess)
        assert model.q == 0.4
