"""Actor-layer integration: supervisor/participant/broker over the
network, both interactive CBS and NI-CBS-through-GRB (paper §4)."""

import pytest

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.exceptions import ProtocolError
from repro.grid import (
    GridResourceBroker,
    Network,
    ParticipantNode,
    SupervisorNode,
)
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment


def make_assignments(n_tasks: int, size: int = 64) -> dict[str, TaskAssignment]:
    fn = PasswordSearch()
    domain = RangeDomain(0, size * n_tasks)
    parts = domain.partition(n_tasks)
    return {
        f"job-{i}": TaskAssignment(f"job-{i}", parts[i], fn)
        for i in range(n_tasks)
    }


class TestInteractiveCBSOverNetwork:
    def test_honest_flow(self):
        net = Network()
        catalogue = make_assignments(1)
        supervisor = SupervisorNode("sup", net, protocol="cbs", n_samples=8)
        worker = ParticipantNode(
            "w0", net, HonestBehavior(), catalogue.__getitem__, protocol="cbs"
        )
        supervisor.assign(catalogue["job-0"], "w0")
        net.deliver_all()
        assert supervisor.outcomes["job-0"].accepted
        assert worker.verdicts["job-0"].accepted

    def test_cheater_flow(self):
        net = Network()
        catalogue = make_assignments(1)
        supervisor = SupervisorNode("sup", net, protocol="cbs", n_samples=20)
        worker = ParticipantNode(
            "w0",
            net,
            SemiHonestCheater(0.5),
            catalogue.__getitem__,
            protocol="cbs",
        )
        supervisor.assign(catalogue["job-0"], "w0")
        net.deliver_all()
        assert not supervisor.outcomes["job-0"].accepted
        assert not worker.verdicts["job-0"].accepted

    def test_four_message_exchange(self):
        net = Network()
        catalogue = make_assignments(1)
        SupervisorNode("sup", net, protocol="cbs", n_samples=4)
        ParticipantNode(
            "w0", net, HonestBehavior(), catalogue.__getitem__, protocol="cbs"
        )
        net.node("sup").assign(catalogue["job-0"], "w0")
        delivered = net.deliver_all()
        # assign, commitment, challenge, proofs, verdict.
        assert delivered == 5

    def test_multiple_workers(self):
        net = Network()
        catalogue = make_assignments(3)
        supervisor = SupervisorNode("sup", net, protocol="cbs", n_samples=16)
        behaviors = [HonestBehavior(), SemiHonestCheater(0.3), HonestBehavior()]
        for i in range(3):
            ParticipantNode(
                f"w{i}",
                net,
                behaviors[i],
                catalogue.__getitem__,
                protocol="cbs",
            )
            supervisor.assign(catalogue[f"job-{i}"], f"w{i}")
        net.deliver_all()
        assert supervisor.outcomes["job-0"].accepted
        assert not supervisor.outcomes["job-1"].accepted
        assert supervisor.outcomes["job-2"].accepted

    def test_duplicate_assignment_rejected(self):
        net = Network()
        catalogue = make_assignments(1)
        supervisor = SupervisorNode("sup", net, protocol="cbs")
        ParticipantNode(
            "w0", net, HonestBehavior(), catalogue.__getitem__, protocol="cbs"
        )
        supervisor.assign(catalogue["job-0"], "w0")
        with pytest.raises(ProtocolError):
            supervisor.assign(catalogue["job-0"], "w0")


class TestBrokeredNICBS:
    """The GRACE topology: supervisor → GRB → participants (§4)."""

    def build(self, behaviors):
        net = Network()
        catalogue = make_assignments(len(behaviors))
        supervisor = SupervisorNode(
            "sup", net, protocol="ni-cbs", n_samples=16
        )
        broker = GridResourceBroker("grb", net, supervisor_name="sup")
        for i, behavior in enumerate(behaviors):
            ParticipantNode(
                f"w{i}",
                net,
                behavior,
                catalogue.__getitem__,
                protocol="ni-cbs",
                n_samples=16,
            )
            broker.register_worker(f"w{i}")
        return net, catalogue, supervisor, broker

    def test_bulk_assignment_through_broker(self):
        net, catalogue, supervisor, broker = self.build(
            [HonestBehavior(), HonestBehavior()]
        )
        for task_id in catalogue:
            supervisor.assign(catalogue[task_id], "grb")
        net.deliver_all()
        assert all(o.accepted for o in supervisor.outcomes.values())
        # Round-robin placement.
        assert broker.placements == {"job-0": "w0", "job-1": "w1"}

    def test_supervisor_never_talks_to_workers_directly(self):
        net, catalogue, supervisor, broker = self.build([HonestBehavior()])
        supervisor.assign(catalogue["job-0"], "grb")
        net.deliver_all()
        worker_links = [
            link for link in net.links if "sup" in link and "w0" in link
        ]
        assert worker_links == []  # all traffic via the broker

    def test_cheater_caught_through_broker(self):
        net, catalogue, supervisor, broker = self.build(
            [SemiHonestCheater(0.4)]
        )
        supervisor.assign(catalogue["job-0"], "grb")
        net.deliver_all()
        assert not supervisor.outcomes["job-0"].accepted

    def test_broker_is_pure_relay(self):
        net, catalogue, supervisor, broker = self.build([HonestBehavior()])
        supervisor.assign(catalogue["job-0"], "grb")
        net.deliver_all()
        assert broker.ledger.evaluations == 0
        assert broker.ledger.counters["assignments_routed"] == 1
        assert broker.ledger.counters["submissions_routed"] == 1

    def test_custom_scheduler(self):
        net = Network()
        catalogue = make_assignments(2)
        supervisor = SupervisorNode("sup", net, protocol="ni-cbs", n_samples=8)
        broker = GridResourceBroker(
            "grb",
            net,
            supervisor_name="sup",
            scheduler=lambda workers, msg: workers[-1],
        )
        for i in range(2):
            ParticipantNode(
                f"w{i}",
                net,
                HonestBehavior(),
                catalogue.__getitem__,
                protocol="ni-cbs",
                n_samples=8,
            )
            broker.register_worker(f"w{i}")
        supervisor.assign(catalogue["job-0"], "grb")
        net.deliver_all()
        assert broker.placements["job-0"] == "w1"

    def test_no_workers_rejected(self):
        net = Network()
        catalogue = make_assignments(1)
        supervisor = SupervisorNode("sup", net, protocol="ni-cbs")
        GridResourceBroker("grb", net, supervisor_name="sup")
        supervisor.assign(catalogue["job-0"], "grb")
        with pytest.raises(ProtocolError, match="no workers"):
            net.deliver_all()

    def test_assignment_from_stranger_rejected(self):
        net = Network()
        catalogue = make_assignments(1)
        SupervisorNode("sup", net, protocol="ni-cbs")
        broker = GridResourceBroker("grb", net, supervisor_name="sup")
        broker.register_worker("w0")
        ParticipantNode(
            "w0",
            net,
            HonestBehavior(),
            catalogue.__getitem__,
            protocol="ni-cbs",
        )
        stranger = SupervisorNode("impostor", net, protocol="ni-cbs")
        stranger.assign(catalogue["job-0"], "grb")
        with pytest.raises(ProtocolError, match="non-supervisor"):
            net.deliver_all()
