"""Tests for the batched-multiproof CBS mode (E11 optimization)."""

import pytest

from repro.cheating import BernoulliGuess, HonestBehavior, SemiHonestCheater
from repro.core import CBSParticipant, CBSScheme, CBSSupervisor
from repro.core.protocol import BatchProofMsg
from repro.core.scheme import RejectReason
from repro.exceptions import MerkleError, ProtocolError, SchemeConfigurationError
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment


@pytest.fixture
def task():
    return TaskAssignment("batch", RangeDomain(0, 512), PasswordSearch())


class TestBatchedEndToEnd:
    def test_honest_accepted(self, task):
        scheme = CBSScheme(n_samples=16, batch_proofs=True)
        for seed in range(5):
            assert scheme.run(task, HonestBehavior(), seed=seed).outcome.accepted

    def test_cheater_caught(self, task):
        scheme = CBSScheme(n_samples=25, batch_proofs=True)
        for seed in range(8):
            result = scheme.run(task, SemiHonestCheater(0.5), seed=seed)
            assert not result.outcome.accepted

    def test_detection_equivalent_to_classic(self, task):
        # Same seeds, same samples: batched and classic agree verdict
        # for verdict.
        classic = CBSScheme(n_samples=6)
        batched = CBSScheme(n_samples=6, batch_proofs=True)
        for seed in range(30):
            behavior = SemiHonestCheater(0.7, BernoulliGuess(0.4))
            a = classic.run(task, behavior, seed=seed)
            b = batched.run(task, behavior, seed=seed)
            assert a.outcome.accepted == b.outcome.accepted, seed

    def test_bytes_strictly_smaller(self, task):
        classic = CBSScheme(n_samples=20, include_reports=False)
        batched = CBSScheme(
            n_samples=20, include_reports=False, batch_proofs=True
        )
        a = classic.run(task, HonestBehavior(), seed=1)
        b = batched.run(task, HonestBehavior(), seed=1)
        assert (
            b.participant_ledger.bytes_sent < a.participant_ledger.bytes_sent
        )

    def test_incompatible_with_partial_trees(self):
        with pytest.raises(SchemeConfigurationError):
            CBSScheme(n_samples=4, batch_proofs=True, subtree_height=3)


class TestBatchedProtocolChecks:
    def run_to_proofs(self, task, behavior=None, m=8, seed=0):
        participant = CBSParticipant(task, behavior or HonestBehavior())
        supervisor = CBSSupervisor(task, n_samples=m, seed=seed)
        supervisor.receive_commitment(participant.compute_and_commit())
        challenge = supervisor.make_challenge()
        return participant, supervisor, participant.prove_batch(challenge)

    def test_wrong_result_detected(self, task):
        participant, supervisor, msg = self.run_to_proofs(task)
        tampered = BatchProofMsg(
            task_id=msg.task_id,
            indices=msg.indices,
            claimed_results=(b"\x00" * 16,) + msg.claimed_results[1:],
            proof_bytes=msg.proof_bytes,
        )
        outcome = supervisor.verify_batch(tampered)
        assert not outcome.accepted
        assert outcome.reason == RejectReason.WRONG_RESULT

    def test_index_set_mismatch_detected(self, task):
        participant, supervisor, msg = self.run_to_proofs(task)
        shifted = BatchProofMsg(
            task_id=msg.task_id,
            indices=tuple(i + 1 for i in msg.indices),
            claimed_results=msg.claimed_results,
            proof_bytes=msg.proof_bytes,
        )
        outcome = supervisor.verify_batch(shifted)
        assert not outcome.accepted
        assert outcome.reason == RejectReason.MALFORMED_PROOF

    def test_garbage_proof_bytes_detected(self, task):
        participant, supervisor, msg = self.run_to_proofs(task)
        garbage = BatchProofMsg(
            task_id=msg.task_id,
            indices=msg.indices,
            claimed_results=msg.claimed_results,
            proof_bytes=b"\xff" * 10,
        )
        outcome = supervisor.verify_batch(garbage)
        assert not outcome.accepted
        assert outcome.reason == RejectReason.MALFORMED_PROOF

    def test_correct_results_foreign_tree_detected(self, task):
        # The §3 attack in batch form: correct f(x) values proven
        # against a commitment built from garbage.
        cheater_participant, supervisor, msg = self.run_to_proofs(
            task, behavior=SemiHonestCheater(0.0, BernoulliGuess(0.0))
        )
        honest_fn = task.function
        corrected = BatchProofMsg(
            task_id=msg.task_id,
            indices=msg.indices,
            claimed_results=tuple(
                honest_fn.evaluate(task.domain[i]) for i in msg.indices
            ),
            proof_bytes=msg.proof_bytes,
        )
        outcome = supervisor.verify_batch(corrected)
        assert not outcome.accepted
        assert outcome.reason == RejectReason.ROOT_MISMATCH

    def test_duplicate_challenge_indices_collapse(self, task):
        participant = CBSParticipant(task, HonestBehavior())
        participant.compute_and_commit()
        from repro.core.protocol import SampleChallengeMsg

        msg = participant.prove_batch(
            SampleChallengeMsg("batch", (5, 5, 9, 5, 9))
        )
        assert msg.indices == (5, 9)

    def test_prove_batch_requires_commit(self, task):
        from repro.core.protocol import SampleChallengeMsg

        participant = CBSParticipant(task, HonestBehavior())
        with pytest.raises(ProtocolError):
            participant.prove_batch(SampleChallengeMsg("batch", (1,)))

    def test_partial_backend_refuses_batch(self, task):
        from repro.core.protocol import SampleChallengeMsg

        participant = CBSParticipant(
            task, HonestBehavior(), subtree_height=3
        )
        participant.compute_and_commit()
        with pytest.raises(MerkleError):
            participant.prove_batch(SampleChallengeMsg("batch", (1,)))

    def test_codec_roundtrip(self, task):
        _, _, msg = self.run_to_proofs(task)
        assert BatchProofMsg.decode(msg.encode()) == msg
