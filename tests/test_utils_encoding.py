"""Unit + property tests for the canonical wire codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import CodecError
from repro.utils.encoding import (
    decode_bytes,
    decode_uint,
    encode_bytes,
    encode_bytes_list,
    encode_uint,
    encode_uint_list,
    read_bytes,
    read_bytes_list,
    read_uint,
    read_uint_list,
)


class TestVarint:
    def test_small_values_one_byte(self):
        for v in range(128):
            assert encode_uint(v) == bytes([v])

    def test_boundary_values(self):
        assert len(encode_uint(127)) == 1
        assert len(encode_uint(128)) == 2
        assert len(encode_uint(16383)) == 2
        assert len(encode_uint(16384)) == 3

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            encode_uint(-1)

    def test_truncated_rejected(self):
        data = encode_uint(300)[:-1]
        with pytest.raises(CodecError):
            read_uint(data)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError):
            decode_uint(encode_uint(5) + b"\x00")

    def test_overlong_rejected(self):
        with pytest.raises(CodecError):
            read_uint(b"\xff" * 11)

    @given(st.integers(min_value=0, max_value=1 << 64))
    def test_roundtrip(self, value):
        assert decode_uint(encode_uint(value)) == value

    @given(st.integers(min_value=0, max_value=1 << 64))
    def test_offset_decoding(self, value):
        prefix = b"\x00" * 3
        decoded, pos = read_uint(prefix + encode_uint(value), offset=3)
        assert decoded == value
        assert pos == 3 + len(encode_uint(value))


class TestLengthPrefixed:
    def test_empty_payload(self):
        assert decode_bytes(encode_bytes(b"")) == b""

    def test_roundtrip_simple(self):
        assert decode_bytes(encode_bytes(b"hello")) == b"hello"

    def test_length_overrun_rejected(self):
        bad = encode_uint(100) + b"short"
        with pytest.raises(CodecError):
            read_bytes(bad)

    def test_trailing_rejected(self):
        with pytest.raises(CodecError):
            decode_bytes(encode_bytes(b"x") + b"junk")

    @given(st.binary(max_size=4096))
    def test_roundtrip(self, payload):
        assert decode_bytes(encode_bytes(payload)) == payload


class TestLists:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 48), max_size=200))
    def test_uint_list_roundtrip(self, values):
        data = encode_uint_list(values)
        decoded, pos = read_uint_list(data)
        assert decoded == values
        assert pos == len(data)

    @given(st.lists(st.binary(max_size=64), max_size=100))
    def test_bytes_list_roundtrip(self, items):
        data = encode_bytes_list(items)
        decoded, pos = read_bytes_list(data)
        assert decoded == items
        assert pos == len(data)

    def test_empty_lists(self):
        assert read_uint_list(encode_uint_list([]))[0] == []
        assert read_bytes_list(encode_bytes_list([]))[0] == []

    def test_concatenated_structures(self):
        # Multiple structures in one buffer decode sequentially.
        buf = encode_uint_list([1, 2]) + encode_bytes_list([b"a", b"bc"])
        values, pos = read_uint_list(buf)
        items, end = read_bytes_list(buf, pos)
        assert values == [1, 2]
        assert items == [b"a", b"bc"]
        assert end == len(buf)
