"""Actor-layer tests: one worker serving several concurrent tasks."""

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.grid import Network, ParticipantNode, SupervisorNode
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment


def catalogue_of(n_tasks: int, size: int = 64):
    fn = PasswordSearch()
    parts = RangeDomain(0, size * n_tasks).partition(n_tasks)
    return {
        f"job-{i}": TaskAssignment(f"job-{i}", parts[i], fn)
        for i in range(n_tasks)
    }


class TestOneWorkerManyTasks:
    def test_sessions_are_isolated(self):
        net = Network()
        catalogue = catalogue_of(3)
        supervisor = SupervisorNode("sup", net, protocol="cbs", n_samples=8)
        worker = ParticipantNode(
            "w", net, HonestBehavior(), catalogue.__getitem__, protocol="cbs"
        )
        for task_id in catalogue:
            supervisor.assign(catalogue[task_id], "w")
        net.deliver_all()
        assert len(supervisor.outcomes) == 3
        assert all(o.accepted for o in supervisor.outcomes.values())
        # Distinct sessions, distinct commitments.
        roots = {
            worker.session(task_id).backend.root for task_id in catalogue
        }
        assert len(roots) == 3

    def test_single_ledger_accumulates_across_tasks(self):
        net = Network()
        catalogue = catalogue_of(2, size=50)
        supervisor = SupervisorNode("sup", net, protocol="cbs", n_samples=4)
        worker = ParticipantNode(
            "w", net, HonestBehavior(), catalogue.__getitem__, protocol="cbs"
        )
        for task_id in catalogue:
            supervisor.assign(catalogue[task_id], "w")
        net.deliver_all()
        assert worker.ledger.evaluations == 100

    def test_cheating_on_one_task_only_rejects_that_task(self):
        # The same *worker object* can't mix behaviours, but two tasks
        # with the same cheating behaviour and different domains are
        # judged independently; verify verdict bookkeeping stays per
        # task.
        net = Network()
        catalogue = catalogue_of(2, size=200)
        supervisor = SupervisorNode("sup", net, protocol="cbs", n_samples=25)
        worker = ParticipantNode(
            "w",
            net,
            SemiHonestCheater(0.5),
            catalogue.__getitem__,
            protocol="cbs",
        )
        for task_id in catalogue:
            supervisor.assign(catalogue[task_id], "w")
        net.deliver_all()
        assert len(worker.verdicts) == 2
        for task_id in catalogue:
            assert supervisor.outcomes[task_id].accepted == worker.verdicts[
                task_id
            ].accepted
            assert not supervisor.outcomes[task_id].accepted

    def test_per_task_challenge_seeds_differ(self):
        net = Network()
        catalogue = catalogue_of(2)
        supervisor = SupervisorNode("sup", net, protocol="cbs", n_samples=6)
        ParticipantNode(
            "w", net, HonestBehavior(), catalogue.__getitem__, protocol="cbs"
        )
        for task_id in catalogue:
            supervisor.assign(catalogue[task_id], "w")
        net.deliver_all()
        # Challenges were drawn from task-dependent seeds; verdicts per
        # task all recorded.
        assert set(supervisor.outcomes) == {"job-0", "job-1"}
