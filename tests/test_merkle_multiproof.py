"""Tests for compressed Merkle multiproofs (the E11 batching ablation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MerkleError, ProofShapeError
from repro.merkle import MerkleTree, build_multiproof, get_hash
from repro.merkle.multiproof import MerkleMultiProof
from repro.merkle.serialize import encode_auth_path


def make(n: int):
    leaves = [f"result-{i}".encode() for i in range(n)]
    return MerkleTree(leaves), leaves


class TestCorrectness:
    def test_single_leaf_equals_auth_path(self):
        tree, leaves = make(16)
        proof = build_multiproof(tree, [5])
        assert proof.verify({5: leaves[5]}, tree.root, tree.hash_fn)
        # Same digests as the classic path.
        assert list(proof.siblings) == list(tree.auth_path(5).siblings)

    @pytest.mark.parametrize("n", [1, 2, 3, 8, 13, 32, 100])
    def test_all_leaves_at_once(self, n):
        tree, leaves = make(n)
        proof = build_multiproof(tree, list(range(n)))
        payloads = {i: leaves[i] for i in range(n)}
        assert proof.verify(payloads, tree.root, tree.hash_fn)

    def test_proving_everything_needs_no_siblings_pow2(self):
        tree, leaves = make(16)
        proof = build_multiproof(tree, list(range(16)))
        assert proof.siblings == ()

    def test_adjacent_pair_shares_everything_above(self):
        tree, leaves = make(16)  # height 4
        proof = build_multiproof(tree, [6, 7])
        # Siblings of the pair cancel; need one digest per level above.
        assert len(proof.siblings) == 3

    def test_spread_pair_needs_two_paths_minus_root_share(self):
        tree, leaves = make(16)
        proof = build_multiproof(tree, [0, 15])
        # Paths share only the root: 4 + 4 − 2 (top-level siblings are
        # each other's covered ancestors) = 6.
        assert len(proof.siblings) == 6
        assert proof.verify(
            {0: leaves[0], 15: leaves[15]}, tree.root, tree.hash_fn
        )

    def test_duplicates_deduplicated(self):
        tree, leaves = make(8)
        proof = build_multiproof(tree, [3, 3, 1, 1])
        assert proof.leaf_indices == (1, 3)


class TestRejection:
    def test_wrong_payload_rejected(self):
        tree, leaves = make(16)
        proof = build_multiproof(tree, [2, 9])
        assert not proof.verify(
            {2: b"forged", 9: leaves[9]}, tree.root, tree.hash_fn
        )

    def test_wrong_root_rejected(self):
        tree, leaves = make(16)
        other, _ = make(17)
        proof = build_multiproof(tree, [2, 9])
        assert not proof.verify(
            {2: leaves[2], 9: leaves[9]}, other.root, tree.hash_fn
        )

    def test_missing_payload_rejected(self):
        tree, leaves = make(16)
        proof = build_multiproof(tree, [2, 9])
        assert not proof.verify({2: leaves[2]}, tree.root, tree.hash_fn)

    def test_too_few_siblings_rejected(self):
        tree, leaves = make(16)
        proof = build_multiproof(tree, [2, 9])
        truncated = MerkleMultiProof(
            leaf_indices=proof.leaf_indices,
            siblings=proof.siblings[:-1],
            n_leaves=proof.n_leaves,
            leaf_encoding=proof.leaf_encoding,
        )
        assert not truncated.verify(
            {2: leaves[2], 9: leaves[9]}, tree.root, tree.hash_fn
        )

    def test_extra_siblings_rejected(self):
        tree, leaves = make(16)
        proof = build_multiproof(tree, [2, 9])
        padded = MerkleMultiProof(
            leaf_indices=proof.leaf_indices,
            siblings=proof.siblings + (bytes(32),),
            n_leaves=proof.n_leaves,
            leaf_encoding=proof.leaf_encoding,
        )
        assert not padded.verify(
            {2: leaves[2], 9: leaves[9]}, tree.root, tree.hash_fn
        )

    def test_validation(self):
        tree, _ = make(8)
        with pytest.raises(MerkleError):
            build_multiproof(tree, [])
        with pytest.raises(MerkleError):
            build_multiproof(tree, [8])
        with pytest.raises(ProofShapeError):
            MerkleMultiProof(leaf_indices=(), siblings=(), n_leaves=8)
        with pytest.raises(ProofShapeError):
            MerkleMultiProof(leaf_indices=(3, 1), siblings=(), n_leaves=8)


class TestCompression:
    def test_never_larger_than_individual_paths(self):
        tree, leaves = make(256)
        indices = [0, 1, 2, 3, 100, 101, 200, 255]
        multi = build_multiproof(tree, indices).wire_size()
        individual = sum(
            len(encode_auth_path(tree.auth_path(i))) for i in indices
        )
        assert multi < individual

    def test_clustered_indices_compress_better(self):
        tree, leaves = make(256)
        clustered = build_multiproof(tree, list(range(8))).wire_size()
        spread = build_multiproof(
            tree, [0, 32, 64, 96, 128, 160, 192, 224]
        ).wire_size()
        assert clustered < spread


class TestCodec:
    def test_roundtrip(self):
        tree, leaves = make(20)
        proof = build_multiproof(tree, [1, 7, 19])
        decoded = MerkleMultiProof.decode(proof.encode())
        assert decoded == proof
        assert decoded.verify(
            {1: leaves[1], 7: leaves[7], 19: leaves[19]},
            tree.root,
            tree.hash_fn,
        )


class TestPropertyBased:
    @given(
        n=st.integers(min_value=1, max_value=120),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_multiproof_equivalent_to_paths(self, n, data):
        leaves = [bytes([i % 256, (i * 3) % 256]) for i in range(n)]
        tree = MerkleTree(leaves)
        k = data.draw(st.integers(min_value=1, max_value=min(n, 10)))
        indices = sorted(
            data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=1,
                    max_size=k,
                )
            )
        )
        proof = build_multiproof(tree, indices)
        payloads = {i: leaves[i] for i in indices}
        assert proof.verify(payloads, tree.root, tree.hash_fn)
        # And never beats the root with a corrupted payload.
        corrupt = dict(payloads)
        corrupt[indices[0]] = payloads[indices[0]] + b"!"
        assert not proof.verify(corrupt, tree.root, tree.hash_fn)

    @given(n=st.integers(min_value=2, max_value=120), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_compression_never_worse(self, n, data):
        leaves = [bytes([i % 256]) for i in range(n)]
        tree = MerkleTree(leaves)
        indices = sorted(
            data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=1,
                    max_size=min(n, 8),
                )
            )
        )
        multi = len(build_multiproof(tree, indices).siblings)
        individual = sum(tree.auth_path(i).height for i in indices)
        assert multi <= individual
