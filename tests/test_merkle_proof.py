"""Tests for authentication paths and root reconstruction Λ."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProofShapeError
from repro.merkle import MerkleTree, get_hash
from repro.merkle.proof import AuthenticationPath, compute_root_from_path
from repro.merkle.tree import LeafEncoding, encode_leaf


def build(n: int) -> tuple[MerkleTree, list[bytes]]:
    leaves = [f"f(x{i})".encode() for i in range(n)]
    return MerkleTree(leaves), leaves


class TestAuthPath:
    def test_height_matches_tree(self):
        tree, _ = build(16)
        assert tree.auth_path(3).height == 4

    def test_padding_region_provable(self):
        # Last real leaf of a padded tree still proves correctly.
        tree, leaves = build(9)
        path = tree.auth_path(8)
        assert path.verify(leaves[8], tree.root, tree.hash_fn)

    def test_all_indices_all_sizes(self):
        for n in (1, 2, 3, 4, 5, 7, 8, 13):
            tree, leaves = build(n)
            for i in range(n):
                assert tree.auth_path(i).verify(leaves[i], tree.root, tree.hash_fn)

    def test_wrong_payload_fails(self):
        tree, leaves = build(8)
        path = tree.auth_path(2)
        assert not path.verify(b"forged", tree.root, tree.hash_fn)

    def test_wrong_root_fails(self):
        tree, leaves = build(8)
        other, _ = build(9)
        path = tree.auth_path(2)
        assert not path.verify(leaves[2], other.root, tree.hash_fn)

    def test_wrong_position_fails(self):
        # The same payload proven at a different index must fail: the
        # index bits steer left/right combination (footnote 1's
        # procedure).
        tree, leaves = build(8)
        path = tree.auth_path(2)
        moved = AuthenticationPath(
            leaf_index=3,
            siblings=list(path.siblings),
            n_leaves=path.n_leaves,
            leaf_encoding=path.leaf_encoding,
        )
        assert not moved.verify(leaves[2], tree.root, tree.hash_fn)

    def test_tampered_sibling_fails(self):
        tree, leaves = build(8)
        path = tree.auth_path(5)
        tampered_siblings = list(path.siblings)
        tampered_siblings[1] = bytes(32)
        tampered = AuthenticationPath(
            leaf_index=5,
            siblings=tampered_siblings,
            n_leaves=path.n_leaves,
            leaf_encoding=path.leaf_encoding,
        )
        assert not tampered.verify(leaves[5], tree.root, tree.hash_fn)


class TestValidation:
    def test_negative_index_rejected(self):
        with pytest.raises(ProofShapeError):
            AuthenticationPath(leaf_index=-1, siblings=[])

    def test_index_beyond_n_leaves_rejected(self):
        with pytest.raises(ProofShapeError):
            AuthenticationPath(leaf_index=9, siblings=[], n_leaves=8)

    def test_inconsistent_sibling_sizes_rejected(self):
        with pytest.raises(ProofShapeError):
            AuthenticationPath(leaf_index=0, siblings=[b"ab", b"abcd"])


class TestReconstruction:
    def test_footnote1_procedure(self):
        # The paper's footnote 1 walks x3 (leaf L3, 1-based; index 2
        # here) upward: combine with L4's Φ, then A, then D, then F.
        tree, leaves = build(16)
        h = tree.hash_fn
        path = tree.auth_path(2)
        leaf_phi = encode_leaf(leaves[2], h, LeafEncoding.HASHED)
        assert (
            compute_root_from_path(leaf_phi, 2, list(path.siblings), h)
            == tree.root
        )

    def test_root_from_phi_equals_root_from_payload(self):
        tree, leaves = build(8)
        h = tree.hash_fn
        path = tree.auth_path(4)
        via_payload = path.root_from_payload(leaves[4], h)
        via_phi = path.root_from_phi(
            encode_leaf(leaves[4], h, LeafEncoding.HASHED), h
        )
        assert via_payload == via_phi == tree.root

    def test_single_leaf_tree_empty_path(self):
        tree, leaves = build(1)
        path = tree.auth_path(0)
        assert path.height == 0
        assert path.verify(leaves[0], tree.root, tree.hash_fn)


class TestWireSize:
    def test_grows_logarithmically(self):
        sizes = {}
        for n in (4, 16, 64, 256):
            tree, _ = build(n)
            sizes[n] = tree.auth_path(0).wire_size()
        # Each 4x in n adds exactly 2 sibling digests (2 * 33 bytes).
        assert sizes[16] - sizes[4] == pytest.approx(2 * 33, abs=4)
        assert sizes[256] - sizes[64] == pytest.approx(2 * 33, abs=4)

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_path_length_is_ceil_log2(self, n):
        import math

        tree = MerkleTree([bytes([i % 256]) for i in range(n)])
        expected = math.ceil(math.log2(n)) if n > 1 else 0
        assert tree.auth_path(0).height == expected
