"""Tests for the synthetic workloads (paper's motivating applications)."""

import struct

import pytest

from repro.tasks import (
    MersenneCheck,
    MoleculeScreening,
    MonteCarloEstimate,
    OptimizationSearch,
    PasswordSearch,
    SignalSearch,
)
from repro.tasks.function import GuessableFunction, MeteredFunction
from repro.accounting import CostLedger
from repro.exceptions import TaskError


class TestPasswordSearch:
    def test_deterministic(self):
        fn = PasswordSearch()
        assert fn.evaluate(42) == fn.evaluate(42)

    def test_distinct_keys_distinct_digests(self):
        fn = PasswordSearch()
        digests = {fn.evaluate(i) for i in range(1000)}
        assert len(digests) == 1000

    def test_is_one_way_with_zero_q(self):
        fn = PasswordSearch()
        assert fn.one_way
        assert fn.guess_success_probability == 0.0

    def test_result_size(self):
        assert len(PasswordSearch(digest_bytes=16).evaluate(1)) == 16
        assert PasswordSearch(digest_bytes=20).result_size == 20

    def test_salt_separates_projects(self):
        a = PasswordSearch(salt=b"project-a")
        b = PasswordSearch(salt=b"project-b")
        assert a.evaluate(7) != b.evaluate(7)

    def test_target_for_matches_evaluate(self):
        fn = PasswordSearch()
        assert fn.target_for(99) == fn.evaluate(99)

    def test_verify_via_recompute(self):
        fn = PasswordSearch()
        assert fn.verify(5, fn.evaluate(5))
        assert not fn.verify(5, b"\x00" * 16)

    def test_tiny_digest_rejected(self):
        with pytest.raises(TaskError):
            PasswordSearch(digest_bytes=2)


class TestMoleculeScreening:
    def test_quantized_range(self):
        fn = MoleculeScreening(resolution=256)
        for i in range(200):
            (level,) = struct.unpack(">I", fn.evaluate(i))
            assert 0 <= level < 256

    def test_q_is_inverse_resolution(self):
        assert MoleculeScreening(resolution=100).guess_success_probability == 0.01

    def test_score_consistent_with_level(self):
        fn = MoleculeScreening(resolution=1000)
        score = fn.score(5)
        (level,) = struct.unpack(">I", fn.evaluate(5))
        assert level == min(int(score * 1000), 999)

    def test_resolution_validated(self):
        with pytest.raises(TaskError):
            MoleculeScreening(resolution=1)


class TestSignalSearch:
    def test_boolean_output(self):
        fn = SignalSearch()
        assert fn.evaluate(1) in (b"\x00", b"\x01")

    def test_unbiased_at_half_threshold(self):
        fn = SignalSearch(threshold=0.5)
        hits = sum(fn.evaluate(i) == b"\x01" for i in range(2000))
        assert abs(hits / 2000 - 0.5) < 0.05
        assert fn.guess_success_probability == 0.5

    def test_skewed_threshold_raises_q(self):
        # Optimal guesser predicts the majority symbol.
        fn = SignalSearch(threshold=0.9)
        assert fn.guess_success_probability == 0.9

    def test_threshold_validated(self):
        with pytest.raises(TaskError):
            SignalSearch(threshold=0.0)


class TestMersenneCheck:
    def test_known_mersenne_primes(self):
        # 2^p − 1 prime for p in {2, 3, 5, 7, 13, 17, 19, 31}.
        fn = MersenneCheck()
        for p in (2, 3, 5, 7, 13, 17, 19, 31):
            assert fn.evaluate(p) == b"\x01", p

    def test_known_composites(self):
        # M_11 = 2047 = 23 × 89 is the classic composite; also
        # composite exponents and p = 23, 29.
        fn = MersenneCheck()
        for p in (4, 6, 8, 9, 11, 23, 29):
            assert fn.evaluate(p) == b"\x00", p

    def test_p_below_two(self):
        assert not MersenneCheck.is_mersenne_prime(0)
        assert not MersenneCheck.is_mersenne_prime(1)


class TestMonteCarloEstimate:
    def test_deterministic_per_seed(self):
        fn = MonteCarloEstimate(n_samples=32)
        assert fn.evaluate(7) == fn.evaluate(7)

    def test_hits_bounded_by_samples(self):
        fn = MonteCarloEstimate(n_samples=50)
        (hits,) = struct.unpack(">I", fn.evaluate(3))
        assert 0 <= hits <= 50

    def test_aggregate_estimates_pi(self):
        fn = MonteCarloEstimate(n_samples=64)
        total = sum(
            struct.unpack(">I", fn.evaluate(i))[0] for i in range(200)
        )
        pi_estimate = 4.0 * total / (200 * 64)
        assert abs(pi_estimate - 3.14159) < 0.1

    def test_q_is_binomial_mode_probability(self):
        fn = MonteCarloEstimate(n_samples=16)
        assert 0.0 < fn.guess_success_probability < 0.5


class TestOptimizationSearch:
    def test_quantized_output(self):
        fn = OptimizationSearch(resolution=512)
        (level,) = struct.unpack(">I", fn.evaluate(12345))
        assert 0 <= level < 512

    def test_objective_has_wells(self):
        # Some cells must be meaningfully better than the background.
        fn = OptimizationSearch(n_wells=4, grid_side=64)
        values = [fn.objective(i) for i in range(64 * 64)]
        assert min(values) < 0.6 < max(values)

    def test_cell_center_in_unit_square(self):
        fn = OptimizationSearch(grid_side=32)
        for i in (0, 31, 32, 1023):
            x, y = fn.cell_center(i)
            assert 0.0 < x < 1.0 and 0.0 < y < 1.0


class TestWrappers:
    def test_guessable_overrides_q_only(self):
        inner = PasswordSearch()
        wrapped = GuessableFunction(inner, q=0.25)
        assert wrapped.guess_success_probability == 0.25
        assert wrapped.evaluate(3) == inner.evaluate(3)
        assert wrapped.one_way == inner.one_way
        assert wrapped.result_size == inner.result_size

    def test_guessable_validates_q(self):
        with pytest.raises(TaskError):
            GuessableFunction(PasswordSearch(), q=1.5)

    def test_metered_charges_ledger(self):
        ledger = CostLedger()
        fn = MeteredFunction(MoleculeScreening(cost=50.0), ledger)
        fn.evaluate(1)
        fn.evaluate(2)
        fn.verify(1, fn.inner.evaluate(1))
        assert ledger.evaluations == 2
        assert ledger.evaluation_cost == 100.0
        assert ledger.verifications == 1
        assert ledger.verification_cost == 50.0
