"""Protocol-level property tests (hypothesis) for the paper's theorems.

These drive the *whole* CBS/NI-CBS implementations — behaviours, tree,
wire messages, verification — under randomly drawn parameters and check
the paper's invariants:

* **Theorem 1 (soundness):** honest participants are always accepted.
* **Theorem 2 (binding):** any accepted sample's claimed result is the
  true ``f(x)`` (a wrong value can only be accepted if it was both
  committed *and* passes the f-check — impossible unless the guess
  equalled the truth, in which case it isn't wrong).
* **Conservation:** cheater evaluation counts are exactly ``r·n``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cheating import BernoulliGuess, HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme, NICBSScheme
from repro.tasks import PasswordSearch, RangeDomain, SignalSearch, TaskAssignment

domain_sizes = st.integers(min_value=1, max_value=200)
sample_counts = st.integers(min_value=1, max_value=30)
seeds = st.integers(min_value=0, max_value=10_000)
ratios = st.floats(min_value=0.0, max_value=1.0)


def make_task(n: int, fn=None) -> TaskAssignment:
    return TaskAssignment(f"prop-{n}", RangeDomain(0, n), fn or PasswordSearch())


class TestSoundnessProperty:
    @given(n=domain_sizes, m=sample_counts, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_honest_always_accepted_cbs(self, n, m, seed):
        result = CBSScheme(n_samples=m).run(
            make_task(n), HonestBehavior(), seed=seed
        )
        assert result.outcome.accepted

    @given(n=domain_sizes, m=sample_counts, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_honest_always_accepted_nicbs(self, n, m, seed):
        result = NICBSScheme(n_samples=m).run(
            make_task(n), HonestBehavior(), seed=seed
        )
        assert result.outcome.accepted

    @given(n=domain_sizes, m=sample_counts, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_honest_accepted_with_signal_workload(self, n, m, seed):
        result = CBSScheme(n_samples=m).run(
            make_task(n, SignalSearch()), HonestBehavior(), seed=seed
        )
        assert result.outcome.accepted


class TestBindingProperty:
    @given(
        n=st.integers(min_value=4, max_value=150),
        m=sample_counts,
        r=st.floats(min_value=0.0, max_value=0.95),
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_accepted_samples_carry_true_results(self, n, m, r, seed):
        task = make_task(n)
        result = CBSScheme(n_samples=m, stop_on_first_failure=False).run(
            task, SemiHonestCheater(r), seed=seed
        )
        for verdict in result.outcome.verdicts:
            if verdict.accepted:
                # Accepted ⇒ the sampled index was honestly computed
                # (ZeroGuess never matches the true digest).
                assert verdict.index in result.work.honest_indices

    @given(
        n=st.integers(min_value=4, max_value=150),
        m=sample_counts,
        r=st.floats(min_value=0.0, max_value=0.95),
        q=st.floats(min_value=0.0, max_value=1.0),
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_rejection_only_for_cheaters(self, n, m, r, q, seed):
        task = make_task(n)
        result = CBSScheme(n_samples=m).run(
            task, SemiHonestCheater(r, BernoulliGuess(q)), seed=seed
        )
        if not result.outcome.accepted:
            # Rejection implies some input really was skipped.
            assert result.work.honesty_ratio < 1.0


class TestConservationProperty:
    @given(
        n=st.integers(min_value=1, max_value=300),
        r=ratios,
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_cheater_work_is_exactly_r_n(self, n, r, seed):
        task = make_task(n)
        result = CBSScheme(n_samples=1).run(
            task, SemiHonestCheater(r), seed=seed
        )
        assert result.participant_ledger.evaluations == round(r * n)

    @given(n=domain_sizes, m=sample_counts, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_supervisor_work_bounded_by_m(self, n, m, seed):
        result = CBSScheme(n_samples=m).run(
            make_task(n), HonestBehavior(), seed=seed
        )
        assert result.supervisor_ledger.verifications <= m

    @given(n=domain_sizes, m=sample_counts, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_wire_determinism(self, n, m, seed):
        scheme = CBSScheme(n_samples=m)
        a = scheme.run(make_task(n), HonestBehavior(), seed=seed)
        b = scheme.run(make_task(n), HonestBehavior(), seed=seed)
        assert a.total_bytes_on_wire == b.total_bytes_on_wire
