"""Tests for the interactive CBS scheme (paper §3.1, Theorems 1–3)."""

import pytest

from repro.cheating import BernoulliGuess, HonestBehavior, SemiHonestCheater
from repro.core import CBSParticipant, CBSScheme, CBSSupervisor
from repro.core.protocol import SampleChallengeMsg
from repro.core.scheme import RejectReason
from repro.exceptions import ProtocolError, SchemeConfigurationError
from repro.merkle.tree import LeafEncoding
from repro.tasks import (
    MatchScreener,
    PasswordSearch,
    RangeDomain,
    TaskAssignment,
)


class TestSoundness:
    """Theorem 1: an honest participant always proves its honesty."""

    def test_honest_always_accepted(self, password_task):
        scheme = CBSScheme(n_samples=25)
        for seed in range(10):
            result = scheme.run(password_task, HonestBehavior(), seed=seed)
            assert result.outcome.accepted
            assert result.outcome.reason == RejectReason.OK
            assert all(v.accepted for v in result.outcome.verdicts)

    def test_honest_accepted_all_domain_sizes(self, password_fn):
        for n in (1, 2, 3, 7, 8, 100):
            task = TaskAssignment(f"t{n}", RangeDomain(0, n), password_fn)
            result = CBSScheme(n_samples=5).run(task, HonestBehavior(), seed=1)
            assert result.outcome.accepted, n

    def test_honest_accepted_raw_leaf_encoding(self, password_fn):
        # Paper-faithful Φ(L) = f(x): PasswordSearch results are 16
        # bytes, so pick md5 whose digests are too.
        task = TaskAssignment("t", RangeDomain(0, 32), password_fn)
        scheme = CBSScheme(
            n_samples=8, hash_name="md5", leaf_encoding=LeafEncoding.RAW
        )
        assert scheme.run(task, HonestBehavior(), seed=0).outcome.accepted


class TestUncheatability:
    """Theorem 2/3: cheaters are caught except with probability Eq. 2."""

    def test_zero_guess_cheater_always_caught_with_enough_samples(
        self, password_task
    ):
        # r=0.5, q≈0, m=30: escape probability 0.5^30 ≈ 1e-9.
        scheme = CBSScheme(n_samples=30)
        for seed in range(20):
            result = scheme.run(
                password_task, SemiHonestCheater(0.5), seed=seed
            )
            assert not result.outcome.accepted

    def test_failure_reason_is_wrong_result_for_committed_guess(
        self, password_task
    ):
        result = CBSScheme(n_samples=30).run(
            password_task, SemiHonestCheater(0.5), seed=3
        )
        failure = result.outcome.first_failure
        assert failure is not None
        assert failure.reason == RejectReason.WRONG_RESULT

    def test_lucky_guesses_escape(self, password_task):
        # q=1 (every guess correct): the cheater is indistinguishable.
        scheme = CBSScheme(n_samples=10)
        result = scheme.run(
            password_task, SemiHonestCheater(0.5, BernoulliGuess(1.0)), seed=1
        )
        assert result.outcome.accepted
        assert result.undetected_cheat

    def test_r_zero_caught_immediately(self, password_task):
        result = CBSScheme(n_samples=5).run(
            password_task, SemiHonestCheater(0.0), seed=2
        )
        assert not result.outcome.accepted

    def test_stop_on_first_failure_short_circuits(self, password_task):
        scheme = CBSScheme(n_samples=40, stop_on_first_failure=True)
        result = scheme.run(password_task, SemiHonestCheater(0.1), seed=5)
        assert not result.outcome.accepted
        assert len(result.outcome.verdicts) < 40

    def test_full_verification_mode(self, password_task):
        scheme = CBSScheme(n_samples=10, stop_on_first_failure=False)
        result = scheme.run(password_task, SemiHonestCheater(0.1), seed=5)
        assert len(result.outcome.verdicts) == 10


class TestCostAccounting:
    def test_honest_participant_evaluates_whole_domain(self, password_task):
        result = CBSScheme(n_samples=10).run(
            password_task, HonestBehavior(), seed=0
        )
        assert result.participant_ledger.evaluations == 500

    def test_cheater_evaluates_fraction(self, password_task):
        result = CBSScheme(n_samples=30).run(
            password_task, SemiHonestCheater(0.4), seed=0
        )
        assert result.participant_ledger.evaluations == 200

    def test_supervisor_verifies_at_most_m(self, password_task):
        result = CBSScheme(n_samples=10).run(
            password_task, HonestBehavior(), seed=0
        )
        assert result.supervisor_ledger.verifications == 10

    def test_communication_is_logarithmic_not_linear(self, password_fn):
        # Doubling n four times adds only ~m·digest bytes per doubling.
        bytes_at = {}
        for n in (256, 4096):
            task = TaskAssignment(f"t{n}", RangeDomain(0, n), password_fn)
            result = CBSScheme(n_samples=10, include_reports=False).run(
                task, HonestBehavior(), seed=0
            )
            bytes_at[n] = result.participant_ledger.bytes_sent
        growth = bytes_at[4096] - bytes_at[256]
        # 4 extra levels × 10 samples × 33 framed digest bytes ≈ 1320.
        assert growth < 2000
        assert bytes_at[4096] < 10_000  # vs 4096 × 17 ≈ 70k for naive

    def test_hash_count_linear_in_n(self, password_fn):
        task = TaskAssignment("t", RangeDomain(0, 256), password_fn)
        result = CBSScheme(n_samples=4, include_reports=False).run(
            task, HonestBehavior(), seed=0
        )
        # Tree build: 256 leaf hashes + 255 internal.
        assert result.participant_ledger.hashes >= 511

    def test_storage_recorded(self, password_task):
        result = CBSScheme(n_samples=4).run(
            password_task, HonestBehavior(), seed=0
        )
        assert result.participant_ledger.storage_digests > 500


class TestScreenerIntegration:
    def test_match_report_delivered(self, password_fn):
        domain = RangeDomain(0, 64)
        target = password_fn.target_for(42)
        task = TaskAssignment(
            "t", domain, password_fn, screener=MatchScreener(target)
        )
        participant = CBSParticipant(task, HonestBehavior())
        participant.compute_and_commit()
        reports = participant.reports()
        assert reports.reports == ("match:42",)

    def test_cheater_misses_report_in_skipped_region(self, password_fn):
        domain = RangeDomain(0, 64)
        target = password_fn.target_for(42)
        task = TaskAssignment(
            "t", domain, password_fn, screener=MatchScreener(target)
        )
        # Prefix cheater computing only the first 16: key 42 is skipped.
        cheater = SemiHonestCheater(0.25, selection="prefix")
        participant = CBSParticipant(task, cheater)
        participant.compute_and_commit()
        assert participant.reports().reports == ()


class TestProtocolStateMachine:
    def test_double_commit_rejected(self, password_task):
        participant = CBSParticipant(password_task, HonestBehavior())
        participant.compute_and_commit()
        with pytest.raises(ProtocolError):
            participant.compute_and_commit()

    def test_prove_before_commit_rejected(self, password_task):
        participant = CBSParticipant(password_task, HonestBehavior())
        with pytest.raises(ProtocolError):
            participant.prove(SampleChallengeMsg("task-pw", (0,)))

    def test_challenge_for_wrong_task_rejected(self, password_task):
        participant = CBSParticipant(password_task, HonestBehavior())
        participant.compute_and_commit()
        with pytest.raises(ProtocolError):
            participant.prove(SampleChallengeMsg("other", (0,)))

    def test_out_of_range_challenge_rejected(self, password_task):
        participant = CBSParticipant(password_task, HonestBehavior())
        participant.compute_and_commit()
        with pytest.raises(ProtocolError):
            participant.prove(SampleChallengeMsg("task-pw", (500,)))

    def test_supervisor_challenge_before_commitment(self, password_task):
        supervisor = CBSSupervisor(password_task, n_samples=5)
        with pytest.raises(ProtocolError):
            supervisor.make_challenge()

    def test_supervisor_rejects_wrong_leaf_count(self, password_task):
        from repro.core.protocol import CommitmentMsg

        supervisor = CBSSupervisor(password_task, n_samples=5)
        with pytest.raises(ProtocolError):
            supervisor.receive_commitment(
                CommitmentMsg("task-pw", b"\x00" * 32, n_leaves=7)
            )

    def test_supervisor_rejects_wrong_digest_width(self, password_task):
        from repro.core.protocol import CommitmentMsg

        supervisor = CBSSupervisor(password_task, n_samples=5)
        with pytest.raises(ProtocolError):
            supervisor.receive_commitment(
                CommitmentMsg("task-pw", b"\x00" * 8, n_leaves=500)
            )

    def test_proof_count_mismatch_rejected(self, password_task):
        participant = CBSParticipant(password_task, HonestBehavior())
        supervisor = CBSSupervisor(password_task, n_samples=5, seed=1)
        supervisor.receive_commitment(participant.compute_and_commit())
        challenge = supervisor.make_challenge()
        bundle = participant.prove(challenge)
        short = type(bundle)(task_id=bundle.task_id, proofs=bundle.proofs[:-1])
        outcome = supervisor.verify(short)
        assert not outcome.accepted
        assert outcome.reason == RejectReason.MALFORMED_PROOF


class TestConfiguration:
    def test_sample_count_validated(self, password_task):
        with pytest.raises(SchemeConfigurationError):
            CBSSupervisor(password_task, n_samples=0)

    def test_without_replacement_bounded_by_n(self, password_fn):
        task = TaskAssignment("t", RangeDomain(0, 4), password_fn)
        with pytest.raises(SchemeConfigurationError):
            CBSSupervisor(task, n_samples=10, with_replacement=False)

    def test_without_replacement_distinct_indices(self, password_task):
        supervisor = CBSSupervisor(
            password_task, n_samples=50, with_replacement=False, seed=3
        )
        participant = CBSParticipant(password_task, HonestBehavior())
        supervisor.receive_commitment(participant.compute_and_commit())
        challenge = supervisor.make_challenge()
        assert len(set(challenge.indices)) == 50

    def test_deterministic_given_seed(self, password_task):
        r1 = CBSScheme(n_samples=10).run(password_task, HonestBehavior(), seed=5)
        r2 = CBSScheme(n_samples=10).run(password_task, HonestBehavior(), seed=5)
        assert r1.participant_ledger.as_dict() == r2.participant_ledger.as_dict()
        assert r1.supervisor_ledger.as_dict() == r2.supervisor_ledger.as_dict()
