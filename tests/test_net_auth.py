"""Tests for repro.net.auth — the HMAC shared-secret handshake.

The contract under test: matching secrets authenticate mutually;
*every* failure mode — wrong secret, truncated or replayed handshake,
reflected MACs, garbage frames, a silent peer — raises
:class:`~repro.exceptions.AuthError` promptly (no hang), and an
unauthenticated peer never gets past the handshake.
"""

import asyncio

import pytest

from repro.exceptions import AuthError, ReproError
from repro.net.auth import (
    AUTH_MAGIC,
    MAC_BYTES,
    MIN_SECRET_BYTES,
    NONCE_BYTES,
    authenticate_client,
    authenticate_server,
    compute_mac,
    decode_challenge,
    decode_confirm,
    decode_response,
    encode_challenge,
    encode_confirm,
    encode_response,
    load_secret,
)
from repro.net.framing import (
    MAX_AUTH_FRAME_BYTES,
    frame_buffer,
    read_frame_bytes,
    write_frame_bytes,
)
from repro.service.server import memory_duplex

SECRET = b"0123456789abcdef0123456789abcdef"
OTHER = b"fedcba9876543210fedcba9876543210"


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


async def _handshake(server_secret: bytes, client_secret: bytes):
    """Run both sides over an in-process duplex; return their results."""
    (server_reader, server_writer), (client_reader, client_writer) = (
        memory_duplex()
    )
    async def server_side():
        try:
            return await authenticate_server(
                server_reader, server_writer, server_secret, timeout=5.0
            )
        except BaseException as exc:
            server_writer.close()  # what every real server does on reject
            return exc

    return await asyncio.gather(
        server_side(),
        authenticate_client(
            client_reader, client_writer, client_secret, timeout=5.0
        ),
        return_exceptions=True,
    )


class TestLoadSecret:
    def test_reads_and_strips(self, tmp_path):
        path = tmp_path / "secret"
        path.write_bytes(b"  " + SECRET + b"\n")
        assert load_secret(str(path)) == SECRET

    def test_missing_file(self, tmp_path):
        with pytest.raises(AuthError, match="cannot read secret file"):
            load_secret(str(tmp_path / "nope"))

    def test_short_secret_rejected(self, tmp_path):
        path = tmp_path / "secret"
        path.write_bytes(b"x" * (MIN_SECRET_BYTES - 1))
        with pytest.raises(AuthError, match="at least"):
            load_secret(str(path))


class TestHandshake:
    def test_matching_secrets_authenticate_mutually(self):
        results = run(_handshake(SECRET, SECRET))
        assert results == [None, None]

    def test_wrong_secret_rejected_on_both_sides(self):
        server_result, client_result = run(_handshake(SECRET, OTHER))
        assert isinstance(server_result, AuthError)
        assert "MAC mismatch" in str(server_result)
        # The server never sends its confirm, so the client sees the
        # closed/errored stream as a clean AuthError too.
        assert isinstance(client_result, (AuthError, ReproError))

    def test_each_connection_gets_fresh_nonces(self):
        """Two captures of the server's opening challenge differ."""

        async def capture_challenge() -> bytes:
            (sr, sw), (cr, cw) = memory_duplex()
            task = asyncio.ensure_future(
                authenticate_server(sr, sw, SECRET, timeout=0.2)
            )
            payload = await read_frame_bytes(cr, max_frame=MAX_AUTH_FRAME_BYTES)
            with pytest.raises(AuthError):
                await task  # times out: we never answered
            return decode_challenge(payload)

        async def scenario():
            return await capture_challenge(), await capture_challenge()

        a, b = run(scenario())
        assert a != b and len(a) == NONCE_BYTES

    def test_replayed_response_fails_on_a_new_connection(self):
        """A recorded response is bound to the old server nonce."""

        async def scenario():
            # Legitimate handshake, with the response frame captured.
            (sr, sw), (cr, cw) = memory_duplex()
            server = asyncio.ensure_future(
                authenticate_server(sr, sw, SECRET, timeout=5.0)
            )
            challenge = decode_challenge(
                await read_frame_bytes(cr, max_frame=MAX_AUTH_FRAME_BYTES)
            )
            import secrets as _secrets

            client_nonce = _secrets.token_bytes(NONCE_BYTES)
            response = encode_response(
                client_nonce,
                compute_mac(SECRET, b"client", challenge, client_nonce),
            )
            await write_frame_bytes(
                cw, response, max_frame=MAX_AUTH_FRAME_BYTES
            )
            await server  # original handshake succeeds

            # Replay the captured response at a fresh server.
            (sr2, sw2), (cr2, cw2) = memory_duplex()
            server2 = asyncio.ensure_future(
                authenticate_server(sr2, sw2, SECRET, timeout=5.0)
            )
            await read_frame_bytes(cr2, max_frame=MAX_AUTH_FRAME_BYTES)
            await write_frame_bytes(
                cw2, response, max_frame=MAX_AUTH_FRAME_BYTES
            )
            with pytest.raises(AuthError, match="MAC mismatch"):
                await server2

        run(scenario())

    def test_reflected_challenge_mac_cannot_satisfy_server(self):
        """Role separation: a client echoing server-side MACs fails."""

        async def scenario():
            (sr, sw), (cr, cw) = memory_duplex()
            server = asyncio.ensure_future(
                authenticate_server(sr, sw, SECRET, timeout=5.0)
            )
            challenge = decode_challenge(
                await read_frame_bytes(cr, max_frame=MAX_AUTH_FRAME_BYTES)
            )
            # MAC computed with the *server* role over the same nonces.
            await write_frame_bytes(
                cw,
                encode_response(
                    challenge,
                    compute_mac(SECRET, b"server", challenge, challenge),
                ),
                max_frame=MAX_AUTH_FRAME_BYTES,
            )
            with pytest.raises(AuthError, match="MAC mismatch"):
                await server

        run(scenario())

    def test_truncated_handshake_raises_not_hangs(self):
        """EOF mid-handshake is an AuthError on both sides."""

        async def scenario():
            (sr, sw), (cr, cw) = memory_duplex()
            server = asyncio.ensure_future(
                authenticate_server(sr, sw, SECRET, timeout=5.0)
            )
            await read_frame_bytes(cr, max_frame=MAX_AUTH_FRAME_BYTES)
            cw.close()  # client walks away mid-handshake
            with pytest.raises(AuthError):
                await server

        run(scenario())

    def test_silent_server_times_out_client(self):
        async def scenario():
            (_, _), (cr, cw) = memory_duplex()
            with pytest.raises(AuthError, match="timed out"):
                await authenticate_client(cr, cw, SECRET, timeout=0.1)

        run(scenario())

    def test_silent_client_times_out_server(self):
        async def scenario():
            (sr, sw), (_, _) = memory_duplex()
            with pytest.raises(AuthError, match="timed out"):
                await authenticate_server(sr, sw, SECRET, timeout=0.1)

        run(scenario())

    def test_oversized_pre_auth_frame_rejected(self):
        """A giant length prefix from an unauthenticated peer is
        refused at the auth-frame cap, before any allocation."""

        async def scenario():
            (sr, sw), (cr, cw) = memory_duplex()
            server = asyncio.ensure_future(
                authenticate_server(sr, sw, SECRET, timeout=5.0)
            )
            await read_frame_bytes(cr, max_frame=MAX_AUTH_FRAME_BYTES)
            cw.write((1 << 24).to_bytes(4, "big"))  # claims 16 MiB
            with pytest.raises(AuthError):
                await server

        run(scenario())

    def test_non_auth_first_frame_rejected(self):
        """A legacy client speaking the JSON codec at a secured server
        is rejected by magic mismatch — no JSON is ever parsed."""

        async def scenario():
            from repro.service.codec import TaskRequest, encode_frame

            (sr, sw), (cr, cw) = memory_duplex()
            server = asyncio.ensure_future(
                authenticate_server(sr, sw, SECRET, timeout=5.0)
            )
            await read_frame_bytes(cr, max_frame=MAX_AUTH_FRAME_BYTES)
            cw.write(encode_frame(TaskRequest()))
            with pytest.raises(AuthError, match="not an auth handshake frame"):
                await server

        run(scenario())


class TestFrameCodecs:
    def test_round_trips(self):
        nonce, mac = b"n" * NONCE_BYTES, b"m" * MAC_BYTES
        assert decode_challenge(encode_challenge(nonce)) == nonce
        assert decode_response(encode_response(nonce, mac)) == (nonce, mac)
        assert decode_confirm(encode_confirm(mac)) == mac

    def test_wrong_tag_rejected(self):
        with pytest.raises(AuthError, match="unexpected handshake frame tag"):
            decode_challenge(encode_confirm(b"m" * MAC_BYTES))

    def test_wrong_width_rejected(self):
        with pytest.raises(AuthError, match="expected"):
            decode_challenge(AUTH_MAGIC + b"\x01" + b"short")

    def test_frames_fit_the_auth_cap(self):
        for payload in (
            encode_challenge(b"n" * NONCE_BYTES),
            encode_response(b"n" * NONCE_BYTES, b"m" * MAC_BYTES),
            encode_confirm(b"m" * MAC_BYTES),
        ):
            frame_buffer(payload, max_frame=MAX_AUTH_FRAME_BYTES)

    def test_macs_are_role_and_nonce_sensitive(self):
        a, b = b"a" * NONCE_BYTES, b"b" * NONCE_BYTES
        macs = {
            compute_mac(SECRET, b"client", a, b),
            compute_mac(SECRET, b"server", a, b),
            compute_mac(SECRET, b"client", b, a),
            compute_mac(OTHER, b"client", a, b),
        }
        assert len(macs) == 4
