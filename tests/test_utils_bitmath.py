"""Unit tests for tree-geometry helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitmath import (
    ceil_log2,
    is_power_of_two,
    level_size,
    next_power_of_two,
    parent_index,
    sibling_index,
    tree_height,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for n in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not is_power_of_two(n)


class TestNextPowerOfTwo:
    def test_exact_powers_unchanged(self):
        for k in range(16):
            assert next_power_of_two(1 << k) == 1 << k

    def test_rounds_up(self):
        assert next_power_of_two(3) == 4
        assert next_power_of_two(5) == 8
        assert next_power_of_two(1000) == 1024

    def test_one(self):
        assert next_power_of_two(1) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)
        with pytest.raises(ValueError):
            next_power_of_two(-4)

    @given(st.integers(min_value=1, max_value=1 << 40))
    def test_properties(self, n):
        p = next_power_of_two(n)
        assert is_power_of_two(p)
        assert p >= n
        assert p < 2 * n or n == 1


class TestCeilLog2:
    def test_known_values(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(4) == 2
        assert ceil_log2(5) == 3
        assert ceil_log2(1024) == 10
        assert ceil_log2(1025) == 11

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)

    @given(st.integers(min_value=1, max_value=1 << 40))
    def test_inverse_of_pow2(self, n):
        h = ceil_log2(n)
        assert (1 << h) >= n
        if n > 1:
            assert (1 << (h - 1)) < n


class TestTreeHeight:
    def test_single_leaf_is_root(self):
        assert tree_height(1) == 0

    def test_paper_sizes(self):
        # The paper's H = log|D| for power-of-two domains.
        assert tree_height(1 << 10) == 10
        assert tree_height(1 << 20) == 20

    def test_padding_rounds_up(self):
        assert tree_height(5) == 3
        assert tree_height(13) == 4


class TestSiblingParent:
    def test_sibling_pairs(self):
        assert sibling_index(0) == 1
        assert sibling_index(1) == 0
        assert sibling_index(6) == 7
        assert sibling_index(7) == 6

    def test_parent(self):
        assert parent_index(0) == 0
        assert parent_index(1) == 0
        assert parent_index(6) == 3
        assert parent_index(7) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sibling_index(-1)
        with pytest.raises(ValueError):
            parent_index(-3)

    @given(st.integers(min_value=0, max_value=1 << 30))
    def test_sibling_involution(self, i):
        assert sibling_index(sibling_index(i)) == i

    @given(st.integers(min_value=0, max_value=1 << 30))
    def test_siblings_share_parent(self, i):
        assert parent_index(i) == parent_index(sibling_index(i))


class TestLevelSize:
    def test_root_level(self):
        assert level_size(4, 0) == 1

    def test_leaf_level(self):
        assert level_size(4, 4) == 16

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            level_size(4, 5)
        with pytest.raises(ValueError):
            level_size(4, -1)
