"""Tests for the NI-CBS regrinding attack (paper §4.2)."""

import pytest

from repro.cheating.regrind import (
    expected_regrind_attempts,
    run_regrind_attack,
)
from repro.core import NICBSSupervisor
from repro.exceptions import SchemeConfigurationError
from repro.merkle import get_hash
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment


@pytest.fixture
def task():
    # C_f = 100 ≫ hash cost, matching the paper's regime where the
    # task function dominates (hashing is "ignored" in §3.3/§4.2).
    return TaskAssignment(
        "grind", RangeDomain(0, 128), PasswordSearch(cost=100.0)
    )


class TestExpectedAttempts:
    def test_formula(self):
        # 1/r^m (§4.2).
        assert expected_regrind_attempts(0.5, 10) == pytest.approx(1024.0)
        assert expected_regrind_attempts(0.9, 2) == pytest.approx(1 / 0.81)

    def test_honest_needs_one(self):
        assert expected_regrind_attempts(1.0, 100) == 1.0

    def test_validation(self):
        with pytest.raises(SchemeConfigurationError):
            expected_regrind_attempts(0.0, 5)


class TestAttackExecution:
    def test_succeeds_and_fools_the_verifier(self, task):
        # The attack's whole point: the winning submission verifies.
        result = run_regrind_attack(
            task, honesty_ratio=0.75, n_samples=4, seed=1, max_attempts=5000
        )
        assert result.succeeded
        supervisor = NICBSSupervisor(task, n_samples=4)
        outcome = supervisor.verify(result.submission)
        assert outcome.accepted  # undetected cheating!

    def test_honest_ratio_one_succeeds_first_try(self, task):
        result = run_regrind_attack(
            task, honesty_ratio=1.0, n_samples=8, seed=0
        )
        assert result.succeeded
        assert result.attempts == 1

    def test_attempts_counted_in_ledger(self, task):
        result = run_regrind_attack(
            task, honesty_ratio=0.6, n_samples=3, seed=2, max_attempts=2000
        )
        assert result.ledger.counters["regrind_attempts"] == result.attempts

    def test_gives_up_at_max_attempts(self, task):
        result = run_regrind_attack(
            task, honesty_ratio=0.25, n_samples=12, seed=3, max_attempts=5
        )
        assert not result.succeeded
        assert result.attempts == 5
        assert result.submission is None

    def test_mean_attempts_near_expected(self, task):
        # Average over seeds ≈ 1/r^m (geometric distribution).
        r, m = 0.6, 3
        expected = expected_regrind_attempts(r, m)  # ≈ 4.6
        totals = []
        for seed in range(40):
            result = run_regrind_attack(
                task, honesty_ratio=r, n_samples=m, seed=seed,
                max_attempts=1000,
            )
            assert result.succeeded
            totals.append(result.attempts)
        mean = sum(totals) / len(totals)
        assert expected / 2 < mean < expected * 2


class TestEconomics:
    def test_cheap_g_makes_cheating_profitable(self, task):
        # Unit-cost g: grinding costs ≪ n·C_f ⇒ Eq. 5 violated.
        result = run_regrind_attack(
            task,
            honesty_ratio=0.75,
            n_samples=4,
            sample_hash=get_hash("sha256"),
            seed=5,
            max_attempts=10_000,
        )
        assert result.succeeded
        assert result.profitable

    def test_expensive_g_destroys_profit(self, task):
        # Iterated g per Eq. 5: attack cost exceeds honest cost.
        from repro.analysis.costs import uncheatable_g_rounds

        rounds = uncheatable_g_rounds(
            n=128, f_cost=100.0, r=0.75, m=4, base_hash_cost=1.0
        )
        result = run_regrind_attack(
            task,
            honesty_ratio=0.75,
            n_samples=4,
            sample_hash=get_hash(f"sha256^{rounds}"),
            seed=5,
            max_attempts=10_000,
        )
        # Whether or not the grind succeeds, it must not be profitable
        # once hashing costs are priced per Eq. 5 (plus the tree
        # rebuild hashing the paper ignores, which only helps).
        assert not result.profitable

    def test_honest_task_cost_recorded(self, task):
        result = run_regrind_attack(
            task, honesty_ratio=0.9, n_samples=2, seed=0
        )
        assert result.honest_task_cost == 128 * task.function.cost

    def test_validation(self, task):
        with pytest.raises(SchemeConfigurationError):
            run_regrind_attack(task, honesty_ratio=0.0, n_samples=2)
        with pytest.raises(SchemeConfigurationError):
            run_regrind_attack(task, honesty_ratio=0.5, n_samples=2,
                               max_attempts=0)


class TestIncrementalVsFullRebuild:
    """E5 ablation: the rational attacker regrinds in O(log n) hashes."""

    def test_both_variants_succeed_and_verify(self, task):
        for incremental in (True, False):
            result = run_regrind_attack(
                task,
                honesty_ratio=0.75,
                n_samples=4,
                seed=11,
                max_attempts=5000,
                incremental=incremental,
            )
            assert result.succeeded, incremental
            outcome = NICBSSupervisor(task, n_samples=4).verify(
                result.submission
            )
            assert outcome.accepted, incremental

    def test_incremental_hashes_logarithmic_per_attempt(self, task):
        # r=0.5, m=8 ⇒ expected 256 attempts: enough to see the
        # marginal (per-retry) hash cost, net of the initial build.
        inc = run_regrind_attack(
            task, honesty_ratio=0.5, n_samples=8, seed=7,
            max_attempts=50_000, incremental=True,
        )
        full = run_regrind_attack(
            task, honesty_ratio=0.5, n_samples=8, seed=7,
            max_attempts=50_000, incremental=False,
        )
        assert inc.succeeded and full.succeeded
        initial_build = 128 + 127  # leaf encodes + internal combines
        inc_marginal = (inc.ledger.hashes - initial_build) / max(
            inc.attempts - 1, 1
        )
        full_marginal = full.ledger.hashes / full.attempts
        # Incremental: ~8 path hashes + 8 g per retry; full: ~255 + 8.
        assert inc_marginal < 40
        assert full_marginal > 150
