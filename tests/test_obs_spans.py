"""Span timelines, flight recorder, and the health/readiness plane.

The acceptance surface of the second observability story:

* **spans** — the ``span()`` context manager nests/parents correctly,
  buffers bound their memory by dropping the *oldest* (counted on
  ``repro_spans_dropped_total``), and wire dicts are policed as
  strictly as ``tid``/``sid``;
* **flight recorder** — the bounded ring captures structured log
  events and dumps one self-contained JSON artifact the trace viewer
  can re-render;
* **health** — ``/healthz`` stays 200 while ``/readyz`` flips to 503
  on drain or a failing probe, a busy port names the flag to change,
  and concurrent scrapes from many threads never corrupt output;
* **process identity** — ``repro_build_info`` and a live
  ``repro_uptime_seconds`` ride every snapshot, and hostile HELP/label
  text renders escaped.
"""

import json
import logging
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.health import (
    EventLoopLagProbe,
    HealthState,
    gauge_max_probe,
    gauge_min_probe,
)
from repro.obs.http import MetricsServer
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, install_process_metrics
from repro.obs.recorder import FlightRecorder, install_flight_recorder
from repro.obs.spans import (
    MAX_WIRE_SPANS,
    Span,
    SpanBuffer,
    render_waterfall,
    span,
    validate_wire_span,
    validate_wire_spans,
)
from repro.obs.trace import bind_trace, current_span, current_trace


# ----------------------------------------------------------------------
# Span + span() context manager
# ----------------------------------------------------------------------


class TestSpan:
    def test_begin_finish_times_the_block(self):
        item = Span.begin("unit.work")
        time.sleep(0.01)
        item.finish(jobs=3)
        assert item.duration_s >= 0.009
        assert item.status == "ok"
        assert item.attributes == {"jobs": 3}
        assert item.end_wall is not None and item.end_wall >= item.start_wall

    def test_finish_is_idempotent(self):
        item = Span.begin("unit.work").finish()
        first_end = item.end_mono
        time.sleep(0.005)
        item.finish()
        assert item.end_mono == first_end

    def test_wire_round_trip_preserves_timeline(self):
        item = Span.begin("unit.work", trace_id="t" * 16, parent_id="p1")
        item.finish("error:Boom", worker="w-0")
        wire = item.to_wire()
        validate_wire_span(wire)
        back = Span.from_wire(wire)
        assert back.trace_id == item.trace_id
        assert back.span_id == item.span_id
        assert back.parent_id == "p1"
        assert back.status == "error:Boom"
        assert back.attributes == {"worker": "w-0"}
        # Monotonic fields are rebased, but the answers survive.
        assert back.duration_s == pytest.approx(item.duration_s)
        assert back.start_wall == pytest.approx(item.start_wall)

    def test_ok_status_and_empty_attrs_stay_off_the_wire(self):
        wire = Span.begin("x").finish().to_wire()
        assert "st" not in wire and "attrs" not in wire and "pid" not in wire


class TestSpanContextManager:
    def test_composes_with_bind_trace(self):
        buf = SpanBuffer(registry=MetricsRegistry())
        with bind_trace("trace-a", "root-span"):
            with span("outer", buffer=buf) as outer:
                assert current_trace() == "trace-a"
                assert current_span() == outer.span_id
                with span("inner", buffer=buf) as inner:
                    assert inner.parent_id == outer.span_id
        outer_rec, = [s for s in buf.snapshot() if s.name == "outer"]
        inner_rec, = [s for s in buf.snapshot() if s.name == "inner"]
        assert outer_rec.trace_id == inner_rec.trace_id == "trace-a"
        assert outer_rec.parent_id == "root-span"

    def test_exception_marks_error_status_and_reraises(self):
        buf = SpanBuffer(registry=MetricsRegistry())
        with pytest.raises(RuntimeError):
            with span("doomed", buffer=buf):
                raise RuntimeError("nope")
        rec, = buf.snapshot()
        assert rec.status == "error:RuntimeError"
        assert rec.end_mono is not None

    def test_root_span_mints_a_trace(self):
        buf = SpanBuffer(registry=MetricsRegistry())
        with span("root", buffer=buf) as root:
            assert root.parent_id is None
            assert root.trace_id
        assert buf.trace(root.trace_id)


class TestSpanBuffer:
    def test_overflow_drops_oldest_and_counts(self):
        reg = MetricsRegistry()
        buf = SpanBuffer(capacity=3, registry=reg)
        for i in range(5):
            buf.add(Span.begin(f"s{i}").finish())
        assert len(buf) == 3
        assert [s.name for s in buf.snapshot()] == ["s2", "s3", "s4"]
        assert reg.value("repro_spans_dropped_total") == 2

    def test_trace_filters_and_orders(self):
        buf = SpanBuffer(registry=MetricsRegistry())
        late = Span.begin("late", trace_id="t1").finish()
        early = Span.begin("early", trace_id="t1").finish()
        early.start_wall = late.start_wall - 1.0
        buf.extend([late, early, Span.begin("other", trace_id="t2").finish()])
        assert [s.name for s in buf.trace("t1")] == ["early", "late"]
        assert buf.trace_ids() == ["t1", "t2"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanBuffer(capacity=0)


class TestWireSpanValidation:
    def _good(self) -> dict:
        return {"tid": "t1", "sid": "s1", "name": "n", "ts": 1.0, "dur": 0.5}

    def test_good_span_accepted(self):
        assert validate_wire_span(self._good())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda w: w.update(evil="x"),  # unknown key
            lambda w: w.update(name=""),
            lambda w: w.update(name="n" * 200),
            lambda w: w.update(tid=""),
            lambda w: w.update(tid="t" * 200),
            lambda w: w.update(sid=7),
            lambda w: w.update(ts="now"),
            lambda w: w.update(dur=float("inf")),
            lambda w: w.update(dur=-1.0),
            lambda w: w.update(ts=True),
            lambda w: w.update(st=""),
            lambda w: w.update(attrs=[1, 2]),
            lambda w: w.update(attrs={"k": ["nested"]}),
            lambda w: w.update(attrs={"k" * 100: 1}),
            lambda w: w.update(attrs={"k": "v" * 1000}),
            lambda w: w.update(attrs={f"k{i}": i for i in range(40)}),
        ],
    )
    def test_junk_rejected(self, mutate):
        wire = self._good()
        mutate(wire)
        with pytest.raises(ValueError):
            validate_wire_span(wire)

    def test_span_list_cap(self):
        good = self._good()
        validate_wire_spans([good] * MAX_WIRE_SPANS)
        with pytest.raises(ValueError):
            validate_wire_spans([good] * (MAX_WIRE_SPANS + 1))
        with pytest.raises(ValueError):
            validate_wire_spans({"not": "a list"})


class TestWaterfall:
    def test_renders_parented_rows(self):
        root = Span.begin("coordinator.chunk", trace_id="t1").finish()
        child = Span.begin(
            "worker.execute", trace_id="t1", parent_id=root.span_id
        ).finish("error:Boom")
        text = render_waterfall([root, child], width=80)
        lines = text.splitlines()
        assert "trace t1" in lines[0]
        assert any("coordinator.chunk" in ln and "#" in ln for ln in lines)
        # Children indent under their parent and errors are flagged.
        child_line, = [ln for ln in lines if "worker.execute" in ln]
        assert child_line.startswith("  ")
        assert "!error:Boom" in child_line

    def test_empty_input(self):
        assert render_waterfall([]) == "(no spans)"


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_captures_log_events_and_bounds_memory(self):
        recorder = FlightRecorder(
            process="unit", capacity=4,
            span_buffer=SpanBuffer(registry=MetricsRegistry()),
        )
        recorder.attach()
        try:
            log = get_logger("unit_flight")
            log.setLevel(logging.DEBUG)
            for i in range(10):
                log_event(log, "tick", level=logging.DEBUG, i=i)
        finally:
            recorder.detach()
        events = recorder.dump("test")["events"]
        assert len(events) == 4  # oldest evicted
        assert all(e["event"] == "tick" for e in events)

    def test_dump_artifact_is_self_contained(self, tmp_path):
        buf = SpanBuffer(registry=MetricsRegistry())
        buf.add(Span.begin("worker.execute", trace_id="t9").finish())
        recorder = FlightRecorder(process="unit/worker 1", span_buffer=buf)
        recorder.record("drain_started", grace_s=2)
        path = recorder.dump_to_dir(str(tmp_path), reason="shutdown")
        with open(path, encoding="utf-8") as fh:
            artifact = json.load(fh)
        assert artifact["kind"] == "repro-flight-recorder"
        assert artifact["reason"] == "shutdown"
        assert artifact["events"][0]["event"] == "drain_started"
        # Spans land in wire form — the trace viewer's input.
        spans = [Span.from_wire(w) for w in artifact["spans"]]
        assert spans[0].name == "worker.execute"
        assert "/" not in path.rsplit("flight-", 1)[1]  # sanitized name

    def test_crash_hook_dumps_and_chains(self, tmp_path, monkeypatch):
        import sys

        recorder = FlightRecorder(
            process="unit", span_buffer=SpanBuffer(registry=MetricsRegistry())
        )
        seen = []
        monkeypatch.setattr(sys, "excepthook", lambda *a: seen.append(a))
        install_flight_recorder(recorder, str(tmp_path), on_signal=False)
        try:
            raise ValueError("boom")
        except ValueError:
            sys.excepthook(*sys.exc_info())
        assert seen, "original excepthook still runs"
        dumps = list(tmp_path.glob("flight-*-crash.json"))
        assert len(dumps) == 1
        artifact = json.loads(dumps[0].read_text())
        crash, = [e for e in artifact["events"]
                  if e["event"] == "unhandled_crash"]
        assert crash["exc_type"] == "ValueError"


# ----------------------------------------------------------------------
# Health state + probes
# ----------------------------------------------------------------------


class TestHealthState:
    def test_ready_by_default_and_drain_flips(self):
        health = HealthState()
        assert health.readiness()[0] is True
        health.set_ready(False, "draining")
        ready, detail = health.readiness()
        assert ready is False and detail["reason"] == "draining"
        assert health.draining

    def test_failing_probe_flips_readiness_with_detail(self):
        health = HealthState()
        health.add_probe("always_sad", lambda: (False, {"why": "test"}))
        ready, detail = health.readiness()
        assert ready is False
        assert detail["probes"]["always_sad"] == {
            "ok": False, "why": "test",
        }

    def test_raising_probe_reports_not_ready_not_crash(self):
        health = HealthState()
        health.add_probe("broken", lambda: 1 / 0)
        ready, detail = health.readiness()
        assert ready is False
        assert "ZeroDivisionError" in detail["probes"]["broken"]["error"]

    def test_gauge_probes_watch_registry_series(self):
        reg = MetricsRegistry()
        live = reg.gauge("repro_cluster_workers_live", "live")
        stall = reg.gauge("repro_cluster_stall_seconds", "stall")
        workers_ok = gauge_min_probe(reg, "repro_cluster_workers_live", 1.0)
        stall_ok = gauge_max_probe(reg, "repro_cluster_stall_seconds", 60.0)
        assert workers_ok()[0] is False  # no workers yet
        live.set(2)
        assert workers_ok() == (True, {"value": 2.0, "min": 1.0})
        stall.set(120.0)
        assert stall_ok()[0] is False

    def test_event_loop_lag_probe_threshold(self):
        probe = EventLoopLagProbe(threshold_s=0.5)
        assert probe()[0] is True
        probe.lag_s = 2.0
        ok, detail = probe()
        assert ok is False and detail["lag_s"] == 2.0


# ----------------------------------------------------------------------
# HTTP endpoint: probes, busy port, concurrent scrapes
# ----------------------------------------------------------------------


def _get(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


class TestHealthEndpoints:
    def test_healthz_and_readyz_follow_state(self):
        reg = MetricsRegistry()
        health = HealthState()
        with MetricsServer(reg, port=0, health=health) as server:
            base = f"http://127.0.0.1:{server.port}"
            status, body = _get(f"{base}/healthz")
            assert status == 200 and json.loads(body)["status"] == "alive"
            status, body = _get(f"{base}/readyz")
            assert status == 200 and json.loads(body)["ready"] is True
            health.set_ready(False, "draining")
            status, body = _get(f"{base}/readyz")
            detail = json.loads(body)
            assert status == 503
            assert detail["ready"] is False
            assert detail["reason"] == "draining"
            # Liveness is unaffected by a drain: restartable != routable.
            assert _get(f"{base}/healthz")[0] == 200

    def test_port_in_use_error_names_the_flag(self):
        with socket.socket() as squatter:
            squatter.bind(("127.0.0.1", 0))
            squatter.listen(1)
            port = squatter.getsockname()[1]
            with pytest.raises(OSError, match=r"--metrics-port"):
                MetricsServer(MetricsRegistry(), port=port)

    def test_concurrent_scrapes_stay_coherent(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_scrape_unit_total", "test counter")
        counter.inc(41)
        with MetricsServer(reg, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            failures: list[str] = []

            def scrape(path: str) -> None:
                for _ in range(10):
                    status, body = _get(f"{base}{path}")
                    if status != 200:
                        failures.append(f"{path}: {status}")
                    elif path == "/metrics" and (
                        b"repro_scrape_unit_total" not in body
                    ):
                        failures.append(f"{path}: truncated body")

            threads = [
                threading.Thread(target=scrape, args=(path,))
                for path in ("/metrics", "/stats", "/healthz", "/readyz")
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert not failures


# ----------------------------------------------------------------------
# Build info, uptime, and exposition escaping
# ----------------------------------------------------------------------


class TestProcessMetrics:
    def test_build_info_and_uptime_installed(self):
        from repro._version import __version__

        reg = MetricsRegistry()
        install_process_metrics(reg)
        snap = reg.snapshot()
        info, = snap["repro_build_info"]["values"]
        assert info["labels"]["version"] == __version__
        assert info["labels"]["python"].count(".") == 2
        assert info["value"] == 1.0
        assert snap["repro_uptime_seconds"]["values"][0]["value"] >= 0.0

    def test_uptime_refreshes_per_scrape(self):
        reg = MetricsRegistry()
        install_process_metrics(reg)
        first = reg.snapshot()["repro_uptime_seconds"]["values"][0]["value"]
        time.sleep(0.02)
        second = reg.snapshot()["repro_uptime_seconds"]["values"][0]["value"]
        assert second > first

    def test_build_info_renders_in_prometheus_text(self):
        reg = MetricsRegistry()
        install_process_metrics(reg)
        text = reg.render_prometheus()
        assert 'repro_build_info{' in text
        assert "# TYPE repro_build_info gauge" in text


class TestPrometheusEscaping:
    def test_hostile_label_values_escape_in_order(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_escape_total", "help", ("who",))
        counter.labels(who='a\\b"c\nd').inc()
        text = reg.render_prometheus()
        # Backslash first, then quote and newline — the exposition
        # format's required order, so the line parses back losslessly.
        assert 'who="a\\\\b\\"c\\nd"' in text
        line, = [ln for ln in text.splitlines()
                 if ln.startswith("repro_escape_total{")]
        assert "\n" not in line

    def test_hostile_help_text_cannot_break_exposition(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_helpful_total",
            'multi\nline \\ help{injection="1"} 99',
        ).inc()
        text = reg.render_prometheus()
        help_line, = [ln for ln in text.splitlines()
                      if ln.startswith("# HELP repro_helpful_total")]
        # The newline and backslash are escaped; no stray sample line
        # was injected through the help string.
        assert help_line == (
            "# HELP repro_helpful_total "
            'multi\\nline \\\\ help{injection="1"} 99'
        )
        samples = [ln for ln in text.splitlines()
                   if ln.startswith("repro_helpful_total")]
        assert samples == ["repro_helpful_total 1"]
