"""Unit tests for detection reports and aggregation."""

from repro.accounting import CostLedger
from repro.core.scheme import RejectReason
from repro.grid.report import DetectionReport, ParticipantReport


def participant(
    name: str, honesty: float, accepted: bool
) -> ParticipantReport:
    return ParticipantReport(
        participant=name,
        behavior="test",
        honesty_ratio=honesty,
        accepted=accepted,
        reason=RejectReason.OK if accepted else RejectReason.WRONG_RESULT,
        participant_ledger=CostLedger(),
        supervisor_ledger_delta=CostLedger(),
    )


class TestDetectionReport:
    def build(self) -> DetectionReport:
        report = DetectionReport(scheme="test-scheme")
        report.participants = [
            participant("p0", 1.0, True),    # honest accepted
            participant("p1", 0.5, False),   # cheater caught
            participant("p2", 0.5, True),    # cheater escaped
            participant("p3", 1.0, False),   # false alarm
            participant("p4", 0.9, False),   # cheater caught
        ]
        return report

    def test_counts(self):
        report = self.build()
        assert report.n_cheaters == 3
        assert report.n_honest == 2
        assert report.cheaters_caught == 2
        assert report.honest_rejected == 1

    def test_rates(self):
        report = self.build()
        assert report.detection_rate == 2 / 3
        assert report.false_alarm_rate == 1 / 2

    def test_empty_population_edge_cases(self):
        report = DetectionReport(scheme="empty")
        assert report.detection_rate == 1.0
        assert report.false_alarm_rate == 0.0

    def test_all_honest_rates(self):
        report = DetectionReport(scheme="honest")
        report.participants = [participant("p0", 1.0, True)]
        assert report.detection_rate == 1.0  # vacuously
        assert report.false_alarm_rate == 0.0

    def test_summary_keys(self):
        report = self.build()
        report.supervisor_ledger.record_receive(1000)
        summary = report.summary()
        assert summary["scheme"] == "test-scheme"
        assert summary["participants"] == 5
        assert summary["cheaters"] == 3
        assert summary["caught"] == 2
        assert summary["false_alarms"] == 1
        assert summary["supervisor_bytes_in"] == 1000

    def test_cheated_predicate(self):
        assert participant("x", 0.99, True).cheated
        assert not participant("x", 1.0, True).cheated
