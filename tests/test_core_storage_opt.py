"""Tests for the §3.3 storage optimization and its closed forms."""

import pytest

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme, predicted_rco, storage_for_rco
from repro.core.storage_opt import (
    TreeBackend,
    rco_from_storage,
    subtree_height_for_storage,
)
from repro.exceptions import MerkleError
from repro.merkle import get_hash
from repro.merkle.tree import LeafEncoding
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment


class TestClosedForms:
    def test_rco_formula(self):
        # rco = m · 2^ℓ / |D|.
        assert predicted_rco(m=64, n=1 << 20, subtree_height=10) == pytest.approx(
            64 * 1024 / (1 << 20)
        )

    def test_paper_example(self):
        # §3.3: m = 64, S = 2^32 (4G) ⇒ rco = 2^-25.
        assert rco_from_storage(m=64, storage_digests=1 << 32) == pytest.approx(
            2.0 ** -25
        )

    def test_storage_for_rco_inverts_paper_example(self):
        assert storage_for_rco(m=64, target_rco=2.0 ** -25) == 1 << 32

    def test_rco_independent_of_task_size(self):
        # The paper's key point: rco depends only on m and S.
        for height, ell in ((20, 10), (30, 20), (40, 30)):
            storage = 1 << (height - ell + 1)
            assert rco_from_storage(64, storage) == pytest.approx(
                predicted_rco(64, 1 << height, ell)
            )

    def test_subtree_height_for_storage(self):
        # n = 1024 (H = 10); budget 2^8 digests ⇒ need ℓ with
        # 2^(10-ℓ+1) - 1 <= 256 ⇒ ℓ = 3.
        assert subtree_height_for_storage(1024, 256) == 3
        # Unlimited budget ⇒ store everything (ℓ = 0).
        assert subtree_height_for_storage(1024, 1 << 30) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            predicted_rco(-1, 10, 0)
        with pytest.raises(ValueError):
            rco_from_storage(4, 0)
        with pytest.raises(ValueError):
            storage_for_rco(4, 0.0)


class TestTreeBackend:
    def payloads(self, n=32):
        fn = PasswordSearch()
        return [fn.evaluate(i) for i in range(n)], fn

    def test_full_and_partial_roots_agree(self):
        payloads, _ = self.payloads()
        full = TreeBackend(payloads, get_hash(), LeafEncoding.HASHED)
        partial = TreeBackend(
            payloads,
            get_hash(),
            LeafEncoding.HASHED,
            subtree_height=3,
            recompute=lambda i: payloads[i],
        )
        assert full.root == partial.root

    def test_partial_requires_recompute(self):
        payloads, _ = self.payloads()
        with pytest.raises(MerkleError):
            TreeBackend(
                payloads, get_hash(), LeafEncoding.HASHED, subtree_height=2
            )

    def test_storage_footprints(self):
        payloads, _ = self.payloads(64)  # H = 6
        full = TreeBackend(payloads, get_hash(), LeafEncoding.HASHED)
        partial = TreeBackend(
            payloads,
            get_hash(),
            LeafEncoding.HASHED,
            subtree_height=4,
            recompute=lambda i: payloads[i],
        )
        assert full.stored_digests == 127  # 2^7 - 1
        assert partial.stored_digests == 7  # 2^(6-4+1) - 1

    def test_recompute_metering(self):
        payloads, _ = self.payloads(64)
        backend = TreeBackend(
            payloads,
            get_hash(),
            LeafEncoding.HASHED,
            subtree_height=3,
            recompute=lambda i: payloads[i],
        )
        backend.auth_path(10)
        backend.auth_path(50)
        assert backend.leaves_recomputed == 2 * 8


class TestEndToEndWithPartialTrees:
    def test_honest_accepted_every_ell(self, password_fn):
        task = TaskAssignment("t", RangeDomain(0, 128), password_fn)
        for ell in (1, 3, 5, 7):
            scheme = CBSScheme(n_samples=6, subtree_height=ell)
            result = scheme.run(task, HonestBehavior(), seed=ell)
            assert result.outcome.accepted, ell

    def test_cheater_caught_with_partial_tree(self, password_fn):
        task = TaskAssignment("t", RangeDomain(0, 128), password_fn)
        scheme = CBSScheme(n_samples=20, subtree_height=4)
        result = scheme.run(task, SemiHonestCheater(0.5), seed=1)
        assert not result.outcome.accepted

    def test_measured_rco_matches_closed_form(self, password_fn):
        # Measured recompute cost / task cost == m·2^ℓ / |D| (honest
        # participant; every proof rebuilds one subtree).
        n, m, ell = 256, 8, 4
        task = TaskAssignment("t", RangeDomain(0, n), password_fn)
        scheme = CBSScheme(
            n_samples=m,
            subtree_height=ell,
            with_replacement=False,  # distinct samples → exact count
            include_reports=False,
        )
        result = scheme.run(task, HonestBehavior(), seed=9)
        assert result.outcome.accepted
        total_evals = result.participant_ledger.evaluations
        rebuild_evals = total_evals - n
        measured_rco = rebuild_evals / n
        # Distinct samples may share a subtree; measured <= predicted,
        # equality when all m samples hit distinct subtrees.
        assert measured_rco <= predicted_rco(m, n, ell) + 1e-9
        assert rebuild_evals % (1 << ell) == 0

    def test_storage_budget_drops_with_ell(self, password_fn):
        task = TaskAssignment("t", RangeDomain(0, 256), password_fn)
        storages = {}
        for ell in (0, 2, 4, 6):
            scheme = CBSScheme(n_samples=2, subtree_height=ell or None)
            result = scheme.run(task, HonestBehavior(), seed=0)
            storages[ell] = result.participant_ledger.storage_digests
        assert storages[2] < storages[0]
        assert storages[4] < storages[2]
        assert storages[6] < storages[4]
