"""Collusion tests: replication breaks, CBS doesn't care."""

import pytest

from repro.baselines import DoubleCheckScheme
from repro.cheating import ColludingCheater, SemiHonestCheater
from repro.core import CBSScheme
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment
from repro.accounting import CostLedger
from repro.tasks.function import MeteredFunction


@pytest.fixture
def task():
    return TaskAssignment("collude", RangeDomain(0, 200), PasswordSearch())


def produce(behavior, task, salt=b""):
    ledger = CostLedger()
    metered = MeteredFunction(task.function, ledger)
    return behavior.produce(task, metered.evaluate, salt=salt), ledger


class TestCartelCoordination:
    def test_cartel_members_agree_bytewise(self, task):
        a = ColludingCheater(0.5, cartel_key=b"cartel-1")
        b = ColludingCheater(0.5, cartel_key=b"cartel-1")
        work_a, _ = produce(a, task, salt=b"run-A")
        work_b, _ = produce(b, task, salt=b"run-B")  # different run salts!
        assert work_a.leaf_payloads == work_b.leaf_payloads
        assert work_a.honest_indices == work_b.honest_indices

    def test_different_cartels_disagree(self, task):
        a = ColludingCheater(0.5, cartel_key=b"cartel-1")
        b = ColludingCheater(0.5, cartel_key=b"cartel-2")
        work_a, _ = produce(a, task)
        work_b, _ = produce(b, task)
        assert work_a.leaf_payloads != work_b.leaf_payloads

    def test_independent_cheaters_disagree_across_runs(self, task):
        c = SemiHonestCheater(0.5)
        work_a, _ = produce(c, task, salt=b"run-A")
        work_b, _ = produce(c, task, salt=b"run-B")
        assert work_a.leaf_payloads != work_b.leaf_payloads

    def test_cartel_still_skips_work(self, task):
        _, ledger = produce(ColludingCheater(0.5, b"k"), task)
        assert ledger.evaluations == 100


class TestCollusionVsSchemes:
    def test_double_check_defeated_by_collusion(self, task):
        # Both the subject and the replica belong to the cartel: their
        # fabrications agree, majority voting accepts — redundancy's
        # known failure mode.
        cartel = b"shared-secret"
        scheme = DoubleCheckScheme(
            2, replica_behaviors=[ColludingCheater(0.5, cartel)]
        )
        result = scheme.run(task, ColludingCheater(0.5, cartel), seed=1)
        assert result.outcome.accepted  # undetected cheating!
        assert result.undetected_cheat

    def test_double_check_catches_independent_cheaters(self, task):
        scheme = DoubleCheckScheme(
            2, replica_behaviors=[SemiHonestCheater(0.5)]
        )
        result = scheme.run(task, SemiHonestCheater(0.5), seed=1)
        assert not result.outcome.accepted

    def test_cbs_immune_to_collusion(self, task):
        # CBS verifies against f itself, not against other replicas:
        # the cartel is caught at the plain Eq. (2) rate.
        cartel = b"shared-secret"
        scheme = CBSScheme(n_samples=25)
        for seed in range(10):
            result = scheme.run(
                task, ColludingCheater(0.5, cartel), seed=seed
            )
            assert not result.outcome.accepted, seed

    def test_mixed_cartel_majority_three_replicas(self, task):
        # Two cartel members + one honest replica under k=3 majority:
        # the cartel's agreeing fabrications outvote the honest result,
        # so the colluding subject is *accepted* — worse, the honest
        # minority looks deviant.  Redundancy needs honest majorities.
        cartel = b"cartel-x"
        from repro.cheating import HonestBehavior

        scheme = DoubleCheckScheme(
            3,
            replica_behaviors=[
                ColludingCheater(0.5, cartel),
                HonestBehavior(),
            ],
        )
        result = scheme.run(task, ColludingCheater(0.5, cartel), seed=2)
        assert result.outcome.accepted
