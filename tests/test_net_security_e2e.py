"""End-to-end security tests: auth + TLS across both wire planes.

The acceptance properties of PR 5:

* an **auth-on cluster run is byte-identical to serial** — including
  the SIGKILL-mid-population fault drill — with the HMAC handshake and
  TLS both enabled;
* a **wrong-secret peer is rejected before any job envelope is
  decoded** (cluster plane) or any session is created (service
  plane), and the population still completes on the remaining
  workers;
* mismatched configurations (secret on one side only) fail cleanly —
  an error, never a hang.
"""

import asyncio
import os
import signal
import socket
import threading
import time

import pytest

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme
from repro.engine import ClusterExecutor
from repro.engine.cluster.worker import run_worker
from repro.exceptions import AuthError, EngineError, ReproError
from repro.net.transport import SecurityConfig
from repro.service.client import ServiceClient
from repro.service.codec import TaskRequest, encode_frame
from repro.service.loadgen import run_service_loadgen
from repro.service.server import ServiceConfig
from repro.tasks import RangeDomain
from test_engine_cluster import (
    PRELOAD,
    _square,
    population,
    report_fingerprint,
)


@pytest.fixture(scope="module")
def security(secret_file, tls_material):
    cert, key = tls_material
    return SecurityConfig.from_options(
        secret_file=secret_file, tls_cert=cert, tls_key=key
    )


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


# ----------------------------------------------------------------------
# Cluster plane
# ----------------------------------------------------------------------


class TestClusterAuthTLS:
    def test_secured_map_matches_plain(self, secret_file, tls_material):
        cert, key = tls_material
        with ClusterExecutor(
            workers=2, secret_file=secret_file, tls_cert=cert, tls_key=key,
            worker_preload=PRELOAD,
        ) as executor:
            assert executor.map(_square, range(40)) == [
                i * i for i in range(40)
            ]
            stats = executor.stats
        assert stats["auth_rejects"] == 0
        assert stats["workers_live"] == 2

    def test_auth_only_population_parity(self, secret_file):
        """Auth without TLS: still byte-identical to serial."""
        scheme = CBSScheme(n_samples=8)
        serial = report_fingerprint(population(scheme, engine="serial"))
        with ClusterExecutor(workers=2, secret_file=secret_file) as executor:
            secured = report_fingerprint(population(scheme, engine=executor))
        assert secured == serial

    def test_sigkill_mid_population_with_auth_and_tls(
        self, secret_file, tls_material
    ):
        """The PR-4 fault drill, now under auth + TLS: requeue across
        authenticated links keeps the report byte-identical."""
        cert, key = tls_material
        scheme = CBSScheme(n_samples=16)
        serial = report_fingerprint(
            population(scheme, engine="serial", n=1 << 15, participants=32)
        )
        with ClusterExecutor(
            workers=2, secret_file=secret_file, tls_cert=cert, tls_key=key,
            worker_preload=PRELOAD,
        ) as executor:
            executor.map(_square, [0])  # force startup; pids known
            victim = executor.local_worker_pids[0]
            report_box: list = []

            def run() -> None:
                report_box.append(
                    population(
                        scheme,
                        engine=executor,
                        n=1 << 15,
                        participants=32,
                        batch_size=1,
                    )
                )

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.35)
            os.kill(victim, signal.SIGKILL)
            thread.join(timeout=120)
            assert not thread.is_alive()
            deadline = time.monotonic() + 10.0
            while (
                executor.stats["workers_lost"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            stats = executor.stats
        assert stats["workers_lost"] >= 1
        assert stats["auth_rejects"] == 0
        assert report_fingerprint(report_box[0]) == serial

    def test_wrong_secret_worker_rejected_population_completes(
        self, secret_file, wrong_secret_file
    ):
        """The CI negative scenario: an impostor worker is turned away
        at the handshake — before any job envelope is decoded — while the
        correctly-keyed workers complete the whole population."""
        port = _free_port()
        executor = ClusterExecutor(
            workers=2,
            port=port,
            spawn_local=False,
            secret_file=secret_file,
            startup_timeout=60.0,
        )
        impostor_error: list = []

        def impostor() -> None:
            async def dial() -> None:
                try:
                    await run_worker(
                        "127.0.0.1",
                        port,
                        engine="serial",
                        connect_retry_s=30.0,
                        security=SecurityConfig.from_options(
                            secret_file=wrong_secret_file
                        ),
                    )
                except ReproError as exc:
                    impostor_error.append(exc)

            asyncio.run(dial())

        def honest_worker() -> None:
            async def dial() -> None:
                await run_worker(
                    "127.0.0.1",
                    port,
                    engine="serial",
                    connect_retry_s=30.0,
                    security=SecurityConfig.from_options(
                        secret_file=secret_file
                    ),
                )

            asyncio.run(dial())

        impostor_thread = threading.Thread(target=impostor, daemon=True)
        worker_threads = [
            threading.Thread(target=honest_worker, daemon=True)
            for _ in range(2)
        ]
        impostor_thread.start()
        for thread in worker_threads:
            thread.start()
        try:
            scheme = CBSScheme(n_samples=8)
            serial = report_fingerprint(population(scheme, engine="serial"))
            secured = report_fingerprint(population(scheme, engine=executor))
            assert secured == serial
            stats = executor.stats
            assert stats["auth_rejects"] >= 1  # the impostor bounced
            assert stats["workers_live"] == 2  # honest pool intact
        finally:
            executor.close()
        impostor_thread.join(timeout=10)
        assert not impostor_thread.is_alive()
        # The impostor failed with a clean auth/transport error, and
        # its connection died before the codec: no hello was accepted.
        assert impostor_error

    def test_unauthenticated_peer_never_reaches_the_job_decoder(
        self, secret_file
    ):
        """A raw socket shoving codec frames at a secured coordinator
        is dropped at the handshake; the keyed pool keeps serving."""
        with ClusterExecutor(
            workers=1, secret_file=secret_file, worker_preload=PRELOAD
        ) as executor:
            assert executor.map(_square, [3]) == [9]  # pool is live
            host, port = executor.address
            with socket.create_connection((host, port), timeout=10) as sock:
                # Speak the worker codec without authenticating.
                sock.sendall(encode_frame(TaskRequest()))
                sock.settimeout(10)
                # The server offers its challenge, then cuts us off.
                with pytest.raises((ConnectionError, OSError, TimeoutError)):
                    while sock.recv(4096):
                        pass
                    raise ConnectionResetError  # EOF counts as cut off
            deadline = time.monotonic() + 10.0
            while (
                executor.stats["auth_rejects"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            stats = executor.stats
            assert stats["auth_rejects"] >= 1
            assert stats["workers_live"] == 1  # impostor never registered
            assert executor.map(_square, [4]) == [16]  # still serving

    def test_secret_mismatch_fails_cleanly_not_hangs(self):
        """Worker keyed, coordinator plaintext: the worker reports a
        configuration error instead of deadlocking."""

        async def scenario():
            async def plaintext_coordinator(reader, writer):
                # A pre-PR-5 coordinator: waits for hello, offers no
                # challenge.  The keyed worker must give up on its own.
                await asyncio.sleep(30)

            server = await asyncio.start_server(
                plaintext_coordinator, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(AuthError, match="auth challenge"):
                    await run_worker(
                        "127.0.0.1",
                        port,
                        engine="serial",
                        security=SecurityConfig(
                            secret=b"0123456789abcdef0123456789abcdef",
                            handshake_timeout=0.5,
                        ),
                    )
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))

    def test_tls_key_without_cert_rejected(self, tls_material):
        _cert, key = tls_material
        with pytest.raises(EngineError, match="tls.cert"):
            ClusterExecutor(workers=1, tls_key=key)

    def test_unreadable_secret_file_rejected_at_construction(self, tmp_path):
        with pytest.raises(EngineError, match="security"):
            ClusterExecutor(workers=1, secret_file=str(tmp_path / "nope"))


# ----------------------------------------------------------------------
# Service plane
# ----------------------------------------------------------------------


def _service_config(n_participants: int = 8) -> ServiceConfig:
    return ServiceConfig(
        domain=RangeDomain(0, 1 << 10),
        n_participants=n_participants,
        n_samples=8,
        seed=11,
    )


def _behaviors():
    return [HonestBehavior(), SemiHonestCheater(0.6)]


def outcome_fingerprint(server) -> dict:
    return {
        task_id: (outcome.accepted, outcome.reason.value)
        for task_id, outcome in server.outcomes.items()
    }


class TestServiceAuthTLS:
    def test_secured_tcp_loadgen_matches_plain(self, security):
        plain_report, plain_stats, plain_server = asyncio.run(
            run_service_loadgen(
                _service_config(), _behaviors(), transport="tcp"
            )
        )
        secured_report, secured_stats, secured_server = asyncio.run(
            run_service_loadgen(
                _service_config(),
                _behaviors(),
                transport="tcp",
                security=security,
            )
        )
        assert secured_stats.n_errors == 0
        assert secured_stats.n_completed == plain_stats.n_completed == 8
        assert outcome_fingerprint(secured_server) == outcome_fingerprint(
            plain_server
        )
        assert secured_server.stats.auth_failures == 0

    def test_memory_transport_authenticates_too(self, secret_file):
        security = SecurityConfig.from_options(secret_file=secret_file)
        report, stats, server = asyncio.run(
            run_service_loadgen(
                _service_config(), _behaviors(), security=security
            )
        )
        assert stats.n_errors == 0 and stats.n_completed == 8
        assert server.stats.auth_failures == 0

    def test_wrong_secret_client_rejected_before_any_session(
        self, secret_file, wrong_secret_file
    ):
        async def scenario():
            from repro.service.server import SupervisorServer

            server = SupervisorServer(
                _service_config(),
                engine="serial",
                security=SecurityConfig.from_options(secret_file=secret_file),
            )
            host, port = await server.start()
            try:
                with pytest.raises(ReproError):
                    client = await ServiceClient.open_tcp(
                        host,
                        port,
                        security=SecurityConfig.from_options(
                            secret_file=wrong_secret_file,
                            handshake_timeout=5.0,
                        ),
                    )
                    # If the handshake somehow passed, the request
                    # must still be refused.
                    await client.request_task()
                assert server.stats.auth_failures >= 1
                assert len(server.sessions) == 0  # nothing was decoded
            finally:
                await server.stop()

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))

    def test_unkeyed_client_rejected_cleanly(self, secret_file):
        async def scenario():
            from repro.service.server import SupervisorServer

            server = SupervisorServer(
                _service_config(),
                engine="serial",
                security=SecurityConfig.from_options(secret_file=secret_file),
            )
            host, port = await server.start()
            try:
                client = await ServiceClient.open_tcp(host, port)
                with pytest.raises((ReproError, ConnectionError, OSError)):
                    # The server is waiting for a handshake, not JSON;
                    # this request dies cleanly, never hangs.
                    await asyncio.wait_for(client.request_task(), timeout=20)
                await client.close()
                assert server.stats.auth_failures >= 1
            finally:
                await server.stop()

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))

    def test_tls_only_service_round_trip(self, tls_material):
        """TLS without auth: encrypted wire, open enrolment."""
        cert, key = tls_material
        security = SecurityConfig(tls_cert=cert, tls_key=key)
        report, stats, server = asyncio.run(
            run_service_loadgen(
                _service_config(),
                _behaviors(),
                transport="tcp",
                security=security,
            )
        )
        assert stats.n_errors == 0 and stats.n_completed == 8
