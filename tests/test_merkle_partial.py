"""Tests for the §3.3 storage-optimized partial Merkle tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import LeafIndexError, MerkleError
from repro.merkle import MerkleTree, PartialMerkleTree


def make(n: int, ell: int):
    leaves = [f"leaf-{i}".encode() for i in range(n)]
    calls: list[int] = []

    def provider(index: int) -> bytes:
        calls.append(index)
        return leaves[index]

    partial = PartialMerkleTree(leaves, provider, subtree_height=ell)
    return partial, leaves, calls


class TestRootAgreement:
    @pytest.mark.parametrize("n", [1, 2, 5, 8, 13, 16, 33, 64])
    def test_root_matches_full_tree_all_ells(self, n):
        full = MerkleTree([f"leaf-{i}".encode() for i in range(n)])
        for ell in range(full.height + 1):
            partial, _, _ = make(n, ell)
            assert partial.root == full.root, (n, ell)


class TestProofs:
    def test_proofs_verify_against_full_root(self):
        n = 32
        full = MerkleTree([f"leaf-{i}".encode() for i in range(n)])
        partial, leaves, _ = make(n, 3)
        for i in range(n):
            path = partial.auth_path(i)
            assert path.verify(leaves[i], full.root, full.hash_fn), i

    def test_proofs_identical_to_full_tree(self):
        n = 16
        full = MerkleTree([f"leaf-{i}".encode() for i in range(n)])
        partial, _, _ = make(n, 2)
        for i in range(n):
            assert partial.auth_path(i).siblings == full.auth_path(i).siblings

    def test_bounds_checked(self):
        partial, _, _ = make(8, 2)
        with pytest.raises(LeafIndexError):
            partial.auth_path(8)

    def test_ell_zero_needs_no_recompute(self):
        partial, _, calls = make(16, 0)
        partial.auth_path(7)
        assert calls == []
        assert partial.leaves_recomputed == 0


class TestStorageComputeTradeoff:
    def test_storage_shrinks_by_2_ell(self):
        # §3.3: storing up to level H−ℓ costs O(|D| / 2^ℓ).
        n = 64
        stored = {}
        for ell in range(0, 7):
            partial, _, _ = make(n, ell)
            stored[ell] = partial.stored_node_count
        # Stored count is 2^(H−ℓ+1) − 1.
        for ell in range(0, 7):
            assert stored[ell] == (1 << (6 - ell + 1)) - 1

    def test_rebuild_recomputes_2_ell_leaves(self):
        # §3.3: one proof triggers a height-ℓ subtree rebuild costing
        # 2^ℓ evaluations of f.
        for ell in (1, 2, 3):
            partial, _, calls = make(64, ell)
            partial.auth_path(17)
            assert len(calls) == 1 << ell
            assert partial.leaves_recomputed == 1 << ell
            assert partial.subtree_rebuilds == 1

    def test_rebuild_targets_correct_subtree(self):
        partial, _, calls = make(64, 3)
        partial.auth_path(29)  # subtree index 3 covers leaves 24..31
        assert calls == list(range(24, 32))

    def test_padding_subtree_partially_recomputed(self):
        # Leaves beyond the real domain are padding: no f calls there.
        partial, _, calls = make(13, 2)  # padded to 16, subtrees of 4
        partial.auth_path(12)  # subtree covers 12..15; only 12 real
        assert calls == [12]

    def test_m_proofs_cost_m_rebuilds(self):
        partial, _, calls = make(64, 2)
        for i in (0, 20, 40, 63):
            partial.auth_path(i)
        assert partial.subtree_rebuilds == 4
        assert partial.leaves_recomputed == 4 * 4


class TestValidation:
    def test_negative_ell_rejected(self):
        leaves = [b"a", b"b"]
        with pytest.raises(MerkleError):
            PartialMerkleTree(leaves, lambda i: leaves[i], subtree_height=-1)

    def test_ell_above_height_rejected(self):
        leaves = [b"a", b"b", b"c", b"d"]
        with pytest.raises(MerkleError):
            PartialMerkleTree(leaves, lambda i: leaves[i], subtree_height=3)

    def test_provider_must_return_committed_payloads(self):
        # A provider returning different data produces invalid proofs —
        # exactly how a cheater who "recomputes" differently gets caught.
        n = 16
        leaves = [f"leaf-{i}".encode() for i in range(n)]
        full = MerkleTree(leaves)
        partial = PartialMerkleTree(
            leaves, lambda i: b"different", subtree_height=2
        )
        path = partial.auth_path(5)
        assert not path.verify(leaves[5], full.root, full.hash_fn)


class TestPropertyBased:
    @given(
        st.integers(min_value=1, max_value=48),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_partial_equals_full_everywhere(self, n, data):
        leaves = [bytes([i, (i * 7) % 256]) for i in range(n)]
        full = MerkleTree(leaves)
        ell = data.draw(st.integers(min_value=0, max_value=full.height))
        index = data.draw(st.integers(min_value=0, max_value=n - 1))
        partial = PartialMerkleTree(
            leaves, lambda i: leaves[i], subtree_height=ell
        )
        assert partial.root == full.root
        assert partial.auth_path(index).siblings == full.auth_path(index).siblings
