"""Tests for the participant load generator (repro.service.loadgen).

Pins the acceptance claim of the service layer: a loadgen run over
real TCP with mixed honest/cheating participants at a fixed seed
produces the same per-participant outcomes as the equivalent
synchronous ``GridSimulation``.
"""

import asyncio
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme, NICBSScheme
from repro.engine import run_scheme_jobs
from repro.exceptions import ProtocolError
from repro.grid import GridSimulation, SimulationConfig
from repro.service import (
    ServiceConfig,
    percentile,
    run_loadgen,
    run_service_loadgen,
    run_service_loadgen_sync,
)
from repro.tasks import PasswordSearch, RangeDomain

N_PARTICIPANTS = 8
BEHAVIORS = [HonestBehavior(), SemiHonestCheater(0.5)]


def service_config(protocol: str = "ni-cbs") -> ServiceConfig:
    return ServiceConfig(
        domain=RangeDomain(0, 1 << 9),
        protocol=protocol,
        n_samples=12,
        n_participants=N_PARTICIPANTS,
        seed=5,
    )


def grid_report(protocol: str):
    scheme = CBSScheme(12) if protocol == "cbs" else NICBSScheme(12)
    sim = GridSimulation(
        SimulationConfig(
            domain=RangeDomain(0, 1 << 9),
            function=PasswordSearch(),
            scheme=scheme,
            n_participants=N_PARTICIPANTS,
            behaviors=BEHAVIORS,
            seed=5,
        )
    )
    jobs = sim.jobs()
    results = run_scheme_jobs(scheme, jobs)
    return sim.run(), {
        job.assignment.task_id: r.outcome for job, r in zip(jobs, results)
    }


class TestTCPParity:
    @pytest.mark.parametrize("protocol", ["ni-cbs", "cbs"])
    def test_loadgen_over_tcp_matches_grid_simulation(self, protocol):
        report, stats, server = run_service_loadgen_sync(
            service_config(protocol), BEHAVIORS, transport="tcp"
        )
        sync_report, expected_outcomes = grid_report(protocol)

        # Per-task VerificationOutcomes are identical, verdict for
        # verdict, to the synchronous simulation.
        assert server.outcomes == expected_outcomes

        # The report rows agree on everything the supervisor decides
        # and on client-side ground truth.
        assert len(report.participants) == N_PARTICIPANTS
        for service_row, sync_row in zip(
            report.participants, sync_report.participants
        ):
            assert service_row.participant == sync_row.participant
            assert service_row.behavior == sync_row.behavior
            assert service_row.honesty_ratio == sync_row.honesty_ratio
            assert service_row.accepted == sync_row.accepted
            assert service_row.reason == sync_row.reason
        assert report.detection_rate == sync_report.detection_rate
        assert report.honest_rejected == 0

        assert stats.n_errors == 0
        assert stats.n_completed == N_PARTICIPANTS
        assert stats.submissions_per_s > 0
        assert 0 < stats.p50_latency_s <= stats.p99_latency_s


class TestMemoryTransport:
    def test_memory_and_tcp_agree(self):
        mem_report, _stats, mem_server = run_service_loadgen_sync(
            service_config(), BEHAVIORS, transport="memory"
        )
        tcp_report, _stats2, tcp_server = run_service_loadgen_sync(
            service_config(), BEHAVIORS, transport="tcp"
        )
        assert mem_server.outcomes == tcp_server.outcomes
        assert [p.accepted for p in mem_report.participants] == [
            p.accepted for p in tcp_report.participants
        ]

    def test_unknown_transport_rejected(self):
        with pytest.raises(ProtocolError):
            run_service_loadgen_sync(
                service_config(), BEHAVIORS, transport="pigeon"
            )


class TestErrorHandling:
    def test_unreachable_supervisor_counts_errors(self):
        async def scenario():
            return await run_loadgen(
                3,
                BEHAVIORS,
                host="127.0.0.1",
                port=1,  # nothing listens here
                compute_workers=None,
            )

        report, stats = asyncio.run(scenario())
        assert stats.n_errors == 3
        assert stats.n_completed == 0
        # Errored rounds have no verdict and no ground truth; they are
        # counted in stats, never fabricated into the report (a fake
        # row would corrupt detection/false-alarm rates).
        assert report.participants == []
        assert report.false_alarm_rate == 0.0

    def test_transport_arguments_validated(self):
        async def both():
            await run_loadgen(1, BEHAVIORS)

        with pytest.raises(ProtocolError):
            asyncio.run(both())

        async def missing_port():
            await run_loadgen(1, BEHAVIORS, host="127.0.0.1")

        with pytest.raises(ProtocolError):
            asyncio.run(missing_port())

    def test_empty_behaviors_rejected(self):
        async def scenario():
            cfg = service_config()
            return await run_service_loadgen(cfg, [])

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())


class TestPercentile:
    def test_known_values(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 1.0) == 5.0

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 1.0) == 7.0

    def test_q1_is_max_for_every_length(self):
        for n in range(1, 30):
            values = [float(i) for i in range(n)]
            assert percentile(values, 1.0) == float(n - 1)

    def test_p99_regression_no_round_drift(self):
        # The old round()-based rank pulled p99 of 64 distinct samples
        # down to index 62; nearest-rank demands ceil(0.99 * 64) = 64,
        # i.e. the maximum.
        values = [float(i) for i in range(64)]
        assert percentile(values, 0.99) == 63.0

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_nearest_rank_defining_property(self, values, q):
        """The two inequalities that uniquely define nearest-rank.

        The result x must be an actual sample with (a) at least a
        ``q`` fraction of samples <= x and (b) strictly less than a
        ``q`` fraction strictly below x — i.e. x is the *smallest*
        sample whose empirical CDF reaches q.
        """
        x = percentile(values, q)
        n = len(values)
        assert x in values
        at_or_below = sum(1 for v in values if v <= x)
        strictly_below = sum(1 for v in values if v < x)
        assert at_or_below / n >= q
        if q > 0.0:
            assert strictly_below / n < q

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=60
        ),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_q(self, values, data):
        lo = data.draw(st.floats(min_value=0.0, max_value=1.0))
        hi = data.draw(st.floats(min_value=lo, max_value=1.0))
        assert percentile(values, lo) <= percentile(values, hi)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=64
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_median_matches_statistics_median_low(self, values):
        # Exact stdlib cross-check: nearest-rank at q = 0.5 is by
        # definition the lower median (ceil(n/2)'th order statistic).
        assert percentile(values, 0.5) == statistics.median_low(values)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=8, max_size=64
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_within_one_rank_of_statistics_quantiles(self, values):
        """Cross-check against ``statistics.quantiles``: the inclusive
        method interpolates at position q*(n-1), nearest-rank picks
        order statistic ceil(q*n) — the chosen sample's rank must sit
        within one position of the stdlib's anchor."""
        ordered = sorted(values)
        n = len(ordered)
        for k, q in ((1, 0.25), (2, 0.50), (3, 0.75)):
            x = percentile(values, q)
            # index() finds the first equal sample, i.e. the smallest
            # rank holding this value — compare against the smallest
            # and largest rank holding it.
            first = ordered.index(x)
            last = n - 1 - ordered[::-1].index(x)
            anchor = q * (n - 1)
            assert first - 1.0 <= anchor + 1e-9
            assert last + 1.0 >= anchor - 1e-9
