"""Tests for the participant load generator (repro.service.loadgen).

Pins the acceptance claim of the service layer: a loadgen run over
real TCP with mixed honest/cheating participants at a fixed seed
produces the same per-participant outcomes as the equivalent
synchronous ``GridSimulation``.
"""

import asyncio

import pytest

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme, NICBSScheme
from repro.engine import run_scheme_jobs
from repro.exceptions import ProtocolError
from repro.grid import GridSimulation, SimulationConfig
from repro.service import (
    ServiceConfig,
    percentile,
    run_loadgen,
    run_service_loadgen,
    run_service_loadgen_sync,
)
from repro.tasks import PasswordSearch, RangeDomain

N_PARTICIPANTS = 8
BEHAVIORS = [HonestBehavior(), SemiHonestCheater(0.5)]


def service_config(protocol: str = "ni-cbs") -> ServiceConfig:
    return ServiceConfig(
        domain=RangeDomain(0, 1 << 9),
        protocol=protocol,
        n_samples=12,
        n_participants=N_PARTICIPANTS,
        seed=5,
    )


def grid_report(protocol: str):
    scheme = CBSScheme(12) if protocol == "cbs" else NICBSScheme(12)
    sim = GridSimulation(
        SimulationConfig(
            domain=RangeDomain(0, 1 << 9),
            function=PasswordSearch(),
            scheme=scheme,
            n_participants=N_PARTICIPANTS,
            behaviors=BEHAVIORS,
            seed=5,
        )
    )
    jobs = sim.jobs()
    results = run_scheme_jobs(scheme, jobs)
    return sim.run(), {
        job.assignment.task_id: r.outcome for job, r in zip(jobs, results)
    }


class TestTCPParity:
    @pytest.mark.parametrize("protocol", ["ni-cbs", "cbs"])
    def test_loadgen_over_tcp_matches_grid_simulation(self, protocol):
        report, stats, server = run_service_loadgen_sync(
            service_config(protocol), BEHAVIORS, transport="tcp"
        )
        sync_report, expected_outcomes = grid_report(protocol)

        # Per-task VerificationOutcomes are identical, verdict for
        # verdict, to the synchronous simulation.
        assert server.outcomes == expected_outcomes

        # The report rows agree on everything the supervisor decides
        # and on client-side ground truth.
        assert len(report.participants) == N_PARTICIPANTS
        for service_row, sync_row in zip(
            report.participants, sync_report.participants
        ):
            assert service_row.participant == sync_row.participant
            assert service_row.behavior == sync_row.behavior
            assert service_row.honesty_ratio == sync_row.honesty_ratio
            assert service_row.accepted == sync_row.accepted
            assert service_row.reason == sync_row.reason
        assert report.detection_rate == sync_report.detection_rate
        assert report.honest_rejected == 0

        assert stats.n_errors == 0
        assert stats.n_completed == N_PARTICIPANTS
        assert stats.submissions_per_s > 0
        assert 0 < stats.p50_latency_s <= stats.p99_latency_s


class TestMemoryTransport:
    def test_memory_and_tcp_agree(self):
        mem_report, _stats, mem_server = run_service_loadgen_sync(
            service_config(), BEHAVIORS, transport="memory"
        )
        tcp_report, _stats2, tcp_server = run_service_loadgen_sync(
            service_config(), BEHAVIORS, transport="tcp"
        )
        assert mem_server.outcomes == tcp_server.outcomes
        assert [p.accepted for p in mem_report.participants] == [
            p.accepted for p in tcp_report.participants
        ]

    def test_unknown_transport_rejected(self):
        with pytest.raises(ProtocolError):
            run_service_loadgen_sync(
                service_config(), BEHAVIORS, transport="pigeon"
            )


class TestErrorHandling:
    def test_unreachable_supervisor_counts_errors(self):
        async def scenario():
            return await run_loadgen(
                3,
                BEHAVIORS,
                host="127.0.0.1",
                port=1,  # nothing listens here
                compute_workers=None,
            )

        report, stats = asyncio.run(scenario())
        assert stats.n_errors == 3
        assert stats.n_completed == 0
        # Errored rounds have no verdict and no ground truth; they are
        # counted in stats, never fabricated into the report (a fake
        # row would corrupt detection/false-alarm rates).
        assert report.participants == []
        assert report.false_alarm_rate == 0.0

    def test_transport_arguments_validated(self):
        async def both():
            await run_loadgen(1, BEHAVIORS)

        with pytest.raises(ProtocolError):
            asyncio.run(both())

        async def missing_port():
            await run_loadgen(1, BEHAVIORS, host="127.0.0.1")

        with pytest.raises(ProtocolError):
            asyncio.run(missing_port())

    def test_empty_behaviors_rejected(self):
        async def scenario():
            cfg = service_config()
            return await run_service_loadgen(cfg, [])

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())


class TestPercentile:
    def test_known_values(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 1.0) == 5.0

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
