"""Fixture matrix for repro-lint (repro.devtools.lint).

Per rule: at least one positive (flagged) and one negative (clean)
sample, plus framework behavior — suppression honoring, baseline
round-trip and fingerprint stability, JSON report schema, runner exit
codes — and the repo-level gates: ``src`` lints clean, and injecting
a violation into a copy of the tree makes the run fail.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import (
    ALL_CHECKERS,
    apply_baseline,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.devtools.lint.runner import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_lint(tmp_path: Path, files: dict[str, str], rules=None):
    """Write fixture files and lint them; returns findings."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    checkers = [
        cls() for cls in ALL_CHECKERS if rules is None or cls.rule in rules
    ]
    findings, _ = lint_paths([tmp_path], checkers, root=tmp_path)
    return findings


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# RL001 pickle containment
# ----------------------------------------------------------------------


class TestPickleContainment:
    def test_flags_import_outside_codec(self, tmp_path):
        findings = run_lint(
            tmp_path,
            {"app.py": "import pickle\n"},
            rules={"RL001"},
        )
        assert rules_of(findings) == ["RL001"]
        assert "banned" in findings[0].message

    def test_flags_from_import_and_dynamic_import(self, tmp_path):
        findings = run_lint(
            tmp_path,
            {
                "a.py": "from pickle import loads\n",
                "b.py": "import importlib\nimportlib.import_module('pickle')\n",
            },
            rules={"RL001"},
        )
        assert len(findings) == 2

    def test_no_module_is_sanctioned_anymore(self, tmp_path):
        # Wire v5 emptied the allowlist: even the frame codec itself
        # may not touch pickle — the typed jobcodec carries payloads.
        findings = run_lint(
            tmp_path,
            {
                "repro/service/codec.py": (
                    "import pickle\nDATA = pickle.dumps([1])\n"
                )
            },
            rules={"RL001"},
        )
        assert rules_of(findings) == ["RL001"]

    def test_clean_file_passes(self, tmp_path):
        findings = run_lint(
            tmp_path,
            {"app.py": "import json\nDATA = json.dumps([1])\n"},
            rules={"RL001"},
        )
        assert findings == []


# ----------------------------------------------------------------------
# RL002 lock discipline
# ----------------------------------------------------------------------

LOCKED_CLASS_BAD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def put(self, item):
            self._items.append(item)
"""

LOCKED_CLASS_GOOD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def put(self, item):
            with self._lock:
                self._items.append(item)

        def _drain_locked(self):
            self._items.clear()

        def __repr__(self):
            self._cached_repr = "Store()"
            return self._cached_repr
"""


class TestLockDiscipline:
    def test_flags_unlocked_mutation(self, tmp_path):
        findings = run_lint(
            tmp_path, {"store.py": LOCKED_CLASS_BAD}, rules={"RL002"}
        )
        assert rules_of(findings) == ["RL002"]
        assert "Store.put" in findings[0].message

    def test_flags_unlocked_attribute_store(self, tmp_path):
        source = """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = None

                def set(self, value):
                    self._value = value
        """
        findings = run_lint(tmp_path, {"c.py": source}, rules={"RL002"})
        assert len(findings) == 1

    def test_locked_mutations_and_exemptions_pass(self, tmp_path):
        findings = run_lint(
            tmp_path, {"store.py": LOCKED_CLASS_GOOD}, rules={"RL002"}
        )
        assert findings == []

    def test_class_without_lock_is_ignored(self, tmp_path):
        source = """
            class Free:
                def __init__(self):
                    self._items = []

                def put(self, item):
                    self._items.append(item)
        """
        findings = run_lint(tmp_path, {"free.py": source}, rules={"RL002"})
        assert findings == []

    def test_lock_under_if_branch_is_honored(self, tmp_path):
        source = """
            import threading

            class Maybe:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def put(self, item, really):
                    if really:
                        with self._lock:
                            self._items.append(item)
        """
        findings = run_lint(tmp_path, {"m.py": source}, rules={"RL002"})
        assert findings == []


# ----------------------------------------------------------------------
# RL003 blocking in async
# ----------------------------------------------------------------------


class TestBlockingInAsync:
    def test_flags_time_sleep(self, tmp_path):
        source = """
            import time

            async def handler():
                time.sleep(1)
        """
        findings = run_lint(tmp_path, {"h.py": source}, rules={"RL003"})
        assert rules_of(findings) == ["RL003"]
        assert "asyncio.sleep" in findings[0].message

    def test_flags_subprocess_and_open(self, tmp_path):
        source = """
            import subprocess

            async def handler(path):
                subprocess.run(["ls"])
                with open(path) as fh:
                    return fh.read()
        """
        findings = run_lint(tmp_path, {"h.py": source}, rules={"RL003"})
        assert len(findings) == 2

    def test_flags_hashlib_loop(self, tmp_path):
        source = """
            import hashlib

            async def grind(items):
                out = []
                for item in items:
                    out.append(hashlib.sha256(item).digest())
                return out
        """
        findings = run_lint(tmp_path, {"h.py": source}, rules={"RL003"})
        assert len(findings) == 1
        assert "loop" in findings[0].message

    def test_sync_code_and_nested_defs_pass(self, tmp_path):
        source = """
            import asyncio
            import hashlib
            import time

            def sync_path():
                time.sleep(1)  # fine: not on the event loop

            async def handler(loop, pool, items):
                await asyncio.sleep(0.1)

                def offloaded():
                    for item in items:
                        hashlib.sha256(item).digest()

                return await loop.run_in_executor(pool, offloaded)
        """
        findings = run_lint(tmp_path, {"h.py": source}, rules={"RL003"})
        assert findings == []

    def test_single_hash_outside_loop_passes(self, tmp_path):
        source = """
            import hashlib

            async def fingerprint(data):
                return hashlib.sha256(data).hexdigest()
        """
        findings = run_lint(tmp_path, {"h.py": source}, rules={"RL003"})
        assert findings == []


# ----------------------------------------------------------------------
# RL004 swallowed exception
# ----------------------------------------------------------------------


class TestSwallowedException:
    def test_flags_silent_broad_handler(self, tmp_path):
        source = """
            def risky():
                try:
                    work()
                except Exception:
                    pass
        """
        findings = run_lint(tmp_path, {"r.py": source}, rules={"RL004"})
        assert rules_of(findings) == ["RL004"]

    def test_flags_bare_except_with_return(self, tmp_path):
        source = """
            def risky():
                try:
                    return work()
                except:
                    return None
        """
        findings = run_lint(tmp_path, {"r.py": source}, rules={"RL004"})
        assert len(findings) == 1

    @pytest.mark.parametrize(
        "handler",
        [
            "except ValueError:\n        pass",  # narrow: reviewable
            "except Exception:\n        raise",
            "except Exception as exc:\n        out.append(exc)",
            "except Exception:\n        log_event(log, 'boom')",
            "except Exception:\n        logger.warning('boom')",
            "except Exception:\n        errors.labels(site='x').inc()",
        ],
        ids=["narrow", "reraise", "bound-ref", "log_event", "logger", "counter"],
    )
    def test_handled_broad_handlers_pass(self, tmp_path, handler):
        source = (
            "def risky(out, log, logger, errors, log_event):\n"
            "    try:\n"
            "        work()\n"
            f"    {handler}\n"
        )
        findings = run_lint(tmp_path, {"r.py": source}, rules={"RL004"})
        assert findings == []


# ----------------------------------------------------------------------
# RL005 metrics naming
# ----------------------------------------------------------------------


class TestMetricsNaming:
    @pytest.mark.parametrize(
        "call,fragment",
        [
            ("reg.counter('repro_things', 'help')", "_total"),
            ("reg.counter('things_total', 'help')", "repro_"),
            ("reg.gauge('repro_things_total', 'help')", "counter semantics"),
            ("reg.counter('repro_things_total')", "HELP"),
            ("reg.histogram('repro_sizes', '')", "HELP"),
        ],
        ids=["no-total", "no-prefix", "gauge-total", "no-help", "empty-help"],
    )
    def test_flags_contract_violations(self, tmp_path, call, fragment):
        findings = run_lint(
            tmp_path, {"m.py": f"def f(reg):\n    {call}\n"}, rules={"RL005"}
        )
        assert findings, call
        assert any(fragment in f.message for f in findings)

    def test_conforming_registrations_pass(self, tmp_path):
        source = """
            def f(reg):
                reg.counter('repro_things_total', 'Things seen', ('site',))
                reg.gauge('repro_live', 'Live things')
                reg.histogram('repro_sizes_bytes', 'Sizes', buckets=(1, 2))
                reg.counter(dynamic_name, 'runtime-validated')
        """
        findings = run_lint(tmp_path, {"m.py": source}, rules={"RL005"})
        assert findings == []


# ----------------------------------------------------------------------
# RL006 wire-schema coverage
# ----------------------------------------------------------------------

MINI_CODEC_OK = """
    _MSG_FRAMES = {"submission": (None, None)}
    _WIRE_TAGS = {"PingFrame": "ping", "DataFrame": "data"}

    def check_payload_size(what, size, cap):
        pass

    def _cluster_payload_field(obj, what):
        raw = obj.get("p_raw")
        check_payload_size(what, len(raw), 1024)
        return raw

    def _payload_dict(frame):
        if isinstance(frame, PingFrame):
            return {"t": "ping"}
        if isinstance(frame, DataFrame):
            check_payload_size("data", len(frame.payload), 1024)
            return {"t": "data", "p": frame.payload}
        raise ValueError(frame)

    def decode_frame_payload(payload):
        tag = payload.get("t")
        if tag == "ping":
            return PingFrame()
        if tag == "data":
            return DataFrame(_cluster_payload_field(payload, "data"))
        raise ValueError(tag)
"""

MINI_CODEC_DRIFTED = """
    _WIRE_TAGS = {"PingFrame": "ping"}

    def check_payload_size(what, size, cap):
        pass

    def _payload_dict(frame):
        if isinstance(frame, PingFrame):
            return {"t": "ping"}
        if isinstance(frame, DataFrame):
            return {"t": "data", "p": frame.payload}
        raise ValueError(frame)

    def decode_frame_payload(payload):
        tag = payload.get("t")
        if tag == "ping":
            return PingFrame()
        raise ValueError(tag)
"""


class TestWireSchemaCoverage:
    def test_consistent_codec_passes(self, tmp_path):
        findings = run_lint(
            tmp_path,
            {"repro/service/codec.py": MINI_CODEC_OK},
            rules={"RL006"},
        )
        assert findings == []

    def test_drifted_codec_is_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            {"repro/service/codec.py": MINI_CODEC_DRIFTED},
            rules={"RL006"},
        )
        messages = " | ".join(f.message for f in findings)
        # 'data' is encoded but not decoded, missing from _WIRE_TAGS,
        # and its payload branch carries no size cap.
        assert "no decode branch" in messages
        assert "_WIRE_TAGS" in messages
        assert "check_payload_size" in messages

    def test_dict_literal_frame_outside_codec_is_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            {
                "repro/service/codec.py": MINI_CODEC_OK,
                "client.py": 'FRAME = {"t": "ping"}\n',
            },
            rules={"RL006"},
        )
        assert [f.path for f in findings] == ["client.py"]
        assert "bypasses" in findings[0].message or "outside" in findings[0].message

    def test_unknown_tags_outside_codec_pass(self, tmp_path):
        findings = run_lint(
            tmp_path,
            {
                "repro/service/codec.py": MINI_CODEC_OK,
                "client.py": 'CONFIG = {"t": "not_a_wire_tag"}\n',
            },
            rules={"RL006"},
        )
        assert findings == []

    def test_direct_payload_read_in_decode_is_flagged(self, tmp_path):
        source = MINI_CODEC_OK.replace(
            '_cluster_payload_field(payload, "data")',
            'payload.get("p")',
        )
        findings = run_lint(
            tmp_path, {"repro/service/codec.py": source}, rules={"RL006"}
        )
        assert any("directly" in f.message for f in findings)


MINI_JOBCODEC_OK = """
    class Tag:
        NONE = 0x00
        INT = 0x03

    _TAG_NAMES = {Tag.NONE: "none", Tag.INT: "int"}


    def check_payload_size(what, size, cap):
        pass


    class _Decoder:
        def take(self, n, what):
            return self.data[self.pos:self.pos + n]

        def uint(self, what):
            return self.data[self.pos]


    def _dec_none(dec, depth):
        return None


    def _dec_int(dec, depth):
        return dec.uint("int")


    _DECODERS = {Tag.NONE: _dec_none, Tag.INT: _dec_int}


    def encode_cluster_payload(obj, max_bytes=1024):
        raw = b"x"
        check_payload_size("cluster payload", len(raw), max_bytes)
        return raw


    def decode_cluster_payload(raw, max_bytes=1024):
        check_payload_size("cluster payload", len(raw), max_bytes)
        return None
"""


class TestWireSchemaJobcodec:
    def test_consistent_jobcodec_passes(self, tmp_path):
        findings = run_lint(
            tmp_path,
            {"repro/service/jobcodec.py": MINI_JOBCODEC_OK},
            rules={"RL006"},
        )
        assert findings == []

    def test_tag_without_decoder_is_flagged(self, tmp_path):
        source = MINI_JOBCODEC_OK.replace(
            "_DECODERS = {Tag.NONE: _dec_none, Tag.INT: _dec_int}",
            "_DECODERS = {Tag.NONE: _dec_none}",
        )
        findings = run_lint(
            tmp_path,
            {"repro/service/jobcodec.py": source},
            rules={"RL006"},
        )
        assert any("no _DECODERS entry" in f.message for f in findings)

    def test_tag_names_drift_is_flagged(self, tmp_path):
        source = MINI_JOBCODEC_OK.replace(
            '_TAG_NAMES = {Tag.NONE: "none", Tag.INT: "int"}',
            '_TAG_NAMES = {Tag.NONE: "none"}',
        )
        findings = run_lint(
            tmp_path,
            {"repro/service/jobcodec.py": source},
            rules={"RL006"},
        )
        assert any("_TAG_NAMES" in f.message for f in findings)

    def test_uncapped_envelope_entry_point_is_flagged(self, tmp_path):
        source = MINI_JOBCODEC_OK.replace(
            'check_payload_size("cluster payload", len(raw), max_bytes)\n'
            "        return None",
            "return None",
        )
        findings = run_lint(
            tmp_path,
            {"repro/service/jobcodec.py": source},
            rules={"RL006"},
        )
        assert any(
            "check_payload_size" in f.message
            and "decode_cluster_payload" in f.message
            for f in findings
        )

    def test_raw_buffer_subscript_outside_decoder_is_flagged(self, tmp_path):
        source = MINI_JOBCODEC_OK.replace(
            'def _dec_int(dec, depth):\n        return dec.uint("int")',
            "def _dec_int(dec, depth):\n        return dec.data[dec.pos]",
        )
        findings = run_lint(
            tmp_path,
            {"repro/service/jobcodec.py": source},
            rules={"RL006"},
        )
        assert any("bounds-checked" in f.message for f in findings)

    def test_real_jobcodec_is_clean(self):
        checkers = [cls() for cls in ALL_CHECKERS if cls.rule == "RL006"]
        findings, _ = lint_paths(
            [REPO_ROOT / "src" / "repro" / "service" / "jobcodec.py"],
            checkers,
            root=REPO_ROOT,
        )
        assert findings == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


class TestSuppressions:
    def test_same_line_suppression(self, tmp_path):
        findings = run_lint(
            tmp_path,
            {"a.py": "import pickle  # repro-lint: disable=RL001\n"},
            rules={"RL001"},
        )
        assert findings == []

    def test_standalone_comment_suppresses_next_line(self, tmp_path):
        source = (
            "# justification: exercised by the codec fixture\n"
            "# repro-lint: disable=RL001\n"
            "import pickle\n"
        )
        findings = run_lint(tmp_path, {"a.py": source}, rules={"RL001"})
        assert findings == []

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        findings = run_lint(
            tmp_path,
            {"a.py": "import pickle  # repro-lint: disable=RL002\n"},
            rules={"RL001"},
        )
        assert len(findings) == 1

    def test_star_suppresses_everything(self, tmp_path):
        findings = run_lint(
            tmp_path,
            {"a.py": "import pickle  # repro-lint: disable=*\n"},
            rules={"RL001"},
        )
        assert findings == []

    def test_directive_in_string_literal_is_not_a_directive(self, tmp_path):
        source = 'DOC = "# repro-lint: disable=RL001"\nimport pickle\n'
        findings = run_lint(tmp_path, {"a.py": source}, rules={"RL001"})
        assert len(findings) == 1


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_admits_grandfathered_findings(self, tmp_path):
        findings = run_lint(
            tmp_path, {"a.py": "import pickle\n"}, rules={"RL001"}
        )
        assert findings
        baseline_file = tmp_path / "baseline.json"
        write_baseline(findings, baseline_file)
        fresh, baselined = apply_baseline(
            findings, load_baseline(baseline_file)
        )
        assert fresh == []
        assert baselined == len(findings)

    def test_fingerprint_survives_line_shift(self, tmp_path):
        original = run_lint(
            tmp_path, {"a.py": "import pickle\n"}, rules={"RL001"}
        )
        baseline_file = tmp_path / "baseline.json"
        write_baseline(original, baseline_file)
        shifted = run_lint(
            tmp_path,
            {"a.py": "import json\n\n\nimport pickle\n"},
            rules={"RL001"},
        )
        assert shifted[0].line != original[0].line
        fresh, _ = apply_baseline(shifted, load_baseline(baseline_file))
        assert fresh == []

    def test_new_finding_is_not_admitted(self, tmp_path):
        original = run_lint(
            tmp_path, {"a.py": "import pickle\n"}, rules={"RL001"}
        )
        baseline_file = tmp_path / "baseline.json"
        write_baseline(original, baseline_file)
        grown = run_lint(
            tmp_path,
            {"a.py": "import pickle\nimport dill\n"},
            rules={"RL001"},
        )
        fresh, baselined = apply_baseline(grown, load_baseline(baseline_file))
        assert baselined == 1
        assert len(fresh) == 1
        assert "dill" in fresh[0].message

    def test_malformed_baseline_is_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(bad)


# ----------------------------------------------------------------------
# Runner: formats, exit codes, schema
# ----------------------------------------------------------------------


class TestRunner:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_text_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import pickle\n", encoding="utf-8")
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out and "bad.py:1:1" in out

    def test_json_report_schema_is_stable(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import pickle\n", encoding="utf-8")
        assert lint_main([str(tmp_path), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {
            "version", "files_scanned", "baselined", "findings",
        }
        assert report["version"] == 1
        (finding,) = report["findings"]
        assert set(finding) == {
            "rule", "severity", "path", "line", "col", "message",
            "fingerprint",
        }

    def test_baseline_flag_gates_only_new_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import pickle\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main([str(tmp_path), "--write-baseline", str(baseline)]) == 0
        )
        capsys.readouterr()
        assert (
            lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0
        )
        assert "1 baselined" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path), "--rules", "RL999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules_covers_all_six(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert rule in out

    def test_syntax_error_becomes_rl000_not_a_crash(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
        assert lint_main([str(tmp_path)]) == 1
        assert "RL000" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Repo-level gates (the CI self-check)
# ----------------------------------------------------------------------


class TestRepoGate:
    def test_src_tree_lints_clean(self):
        checkers = [cls() for cls in ALL_CHECKERS]
        findings, files = lint_paths(
            [REPO_ROOT / "src"], checkers, root=REPO_ROOT
        )
        assert findings == [], "\n".join(f.render() for f in findings)
        assert files > 50  # the whole tree was actually walked

    def test_injected_violation_fails_the_gate(self, tmp_path):
        """Acceptance check: a bare pickle.loads added to worker.py
        must turn the lint run red."""
        worker = REPO_ROOT / "src/repro/engine/cluster/worker.py"
        copy = tmp_path / "repro/engine/cluster/worker.py"
        copy.parent.mkdir(parents=True)
        copy.write_text(
            worker.read_text(encoding="utf-8")
            + "\n\nimport pickle\n\ndef _backdoor(raw):\n"
            "    return pickle.loads(raw)\n",
            encoding="utf-8",
        )
        checkers = [cls() for cls in ALL_CHECKERS]
        findings, _ = lint_paths([tmp_path], checkers, root=tmp_path)
        assert any(f.rule == "RL001" for f in findings)
