"""Tests for the hash registry, iterated hashes and cost counting."""

import hashlib

import pytest

from repro.accounting import CostLedger
from repro.exceptions import ReproError
from repro.merkle.hashing import (
    CountingHash,
    HashFunction,
    IteratedHash,
    available_hashes,
    get_hash,
    register_hash,
)


class TestRegistry:
    def test_default_is_sha256(self):
        h = get_hash()
        assert h.name == "sha256"
        assert h.digest_size == 32
        assert h.digest(b"abc") == hashlib.sha256(b"abc").digest()

    def test_md5_matches_stdlib(self):
        # The paper names MD5 explicitly (§3.1).
        h = get_hash("md5")
        assert h.digest_size == 16
        assert h.digest(b"grid") == hashlib.md5(b"grid").digest()

    def test_all_registered_hashes_usable(self):
        for name in available_hashes():
            h = get_hash(name)
            digest = h.digest(b"payload")
            assert len(digest) == h.digest_size

    def test_unknown_hash_rejected(self):
        with pytest.raises(ReproError, match="unknown hash"):
            get_hash("rot13")

    def test_register_custom(self):
        fn = HashFunction("testhash", lambda d: d[:4].ljust(4, b"\0"), 4)
        register_hash(fn)
        assert get_hash("testhash") is fn


class TestIteratedHash:
    def test_matches_manual_iteration(self):
        # g = (MD5)^k, the paper's Eq. 5 construction.
        g = IteratedHash(get_hash("md5"), rounds=7)
        expected = b"seed"
        for _ in range(7):
            expected = hashlib.md5(expected).digest()
        assert g.digest(b"seed") == expected

    def test_cost_scales_with_rounds(self):
        base = get_hash("md5")
        assert IteratedHash(base, 1000).cost == 1000 * base.cost

    def test_one_round_equals_base(self):
        base = get_hash("sha256")
        assert IteratedHash(base, 1).digest(b"x") == base.digest(b"x")

    def test_registry_caret_syntax(self):
        g = get_hash("md5^3")
        manual = IteratedHash(get_hash("md5"), 3)
        assert g.digest(b"v") == manual.digest(b"v")
        assert g.cost == 3.0

    def test_rejects_zero_rounds(self):
        with pytest.raises(ReproError):
            IteratedHash(get_hash("md5"), 0)


class TestCountingHash:
    def test_charges_per_invocation(self):
        ledger = CostLedger()
        counted = CountingHash(get_hash("sha256"), ledger)
        for _ in range(5):
            counted.digest(b"data")
        assert ledger.hashes == 5
        assert ledger.hash_cost == 5.0

    def test_iterated_cost_charged(self):
        ledger = CostLedger()
        counted = CountingHash(get_hash("md5^10"), ledger)
        counted.digest(b"data")
        assert ledger.hashes == 1
        assert ledger.hash_cost == 10.0

    def test_transparent_digests(self):
        ledger = CostLedger()
        inner = get_hash("sha256")
        counted = CountingHash(inner, ledger)
        assert counted.digest(b"zz") == inner.digest(b"zz")
        assert counted.digest_size == inner.digest_size


class TestBatchedDigests:
    """The batched hot-path methods must equal their per-digest loops."""

    BLOBS = [bytes([i]) * (i + 1) for i in range(9)] + [b""]
    LEVEL = [hashlib.sha256(bytes([i])).digest() for i in range(8)]
    TAG = b"\x00"

    @pytest.mark.parametrize("name", ["sha256", "md5", "blake2b", "md5^3"])
    def test_digest_many_matches_loop(self, name):
        h = get_hash(name)
        assert h.digest_many(self.BLOBS) == [h.digest(b) for b in self.BLOBS]

    @pytest.mark.parametrize("name", ["sha256", "md5", "blake2b", "md5^3"])
    def test_tagged_digest_many_matches_loop(self, name):
        h = get_hash(name)
        assert h.tagged_digest_many(self.TAG, self.BLOBS) == [
            h.digest(self.TAG + b) for b in self.BLOBS
        ]

    @pytest.mark.parametrize("name", ["sha256", "md5", "blake2b", "md5^3"])
    def test_tagged_digest_pairs_matches_loop(self, name):
        h = get_hash(name)
        assert h.tagged_digest_pairs(self.TAG, self.LEVEL) == [
            h.digest(self.TAG + self.LEVEL[i] + self.LEVEL[i + 1])
            for i in range(0, len(self.LEVEL), 2)
        ]

    def test_batched_accepts_iterators(self):
        h = get_hash("sha256")
        assert h.digest_many(iter(self.BLOBS)) == h.digest_many(self.BLOBS)

    def test_custom_hash_without_factory(self):
        # A registered custom hash has no hasher_factory; the batched
        # methods must fall back to the plain function, byte-identically.
        h = HashFunction("plainfn", lambda d: hashlib.sha1(d).digest(), 20)
        assert h.digest_many(self.BLOBS) == [h.digest(b) for b in self.BLOBS]
        assert h.tagged_digest_many(self.TAG, self.BLOBS) == [
            h.digest(self.TAG + b) for b in self.BLOBS
        ]

    def test_counting_hash_charges_match_loop(self):
        batched, looped = CostLedger(), CostLedger()
        h_batched = CountingHash(get_hash("md5^4"), batched)
        h_looped = CountingHash(get_hash("md5^4"), looped)
        assert h_batched.digest_many(self.BLOBS) == [
            h_looped.digest(b) for b in self.BLOBS
        ]
        assert batched.hashes == looped.hashes == len(self.BLOBS)
        assert batched.hash_cost == looped.hash_cost

    def test_counting_hash_tagged_pairs_charges(self):
        ledger = CostLedger()
        counted = CountingHash(get_hash("sha256"), ledger)
        counted.tagged_digest_pairs(self.TAG, self.LEVEL)
        assert ledger.hashes == len(self.LEVEL) // 2

    def test_counting_iterated_composition(self):
        # CountingHash over IteratedHash: batched path must produce the
        # same digests and the same charges as the per-digest path.
        ledger = CostLedger()
        counted = CountingHash(IteratedHash(get_hash("md5"), 5), ledger)
        out = counted.tagged_digest_many(self.TAG, self.BLOBS)
        assert out == [counted.digest(self.TAG + b) for b in self.BLOBS]
        assert ledger.hashes == 2 * len(self.BLOBS)
        assert ledger.hash_cost == 2 * len(self.BLOBS) * 5.0

    def test_registry_entries_carry_cached_factories(self):
        # The stdlib registry entries must dispatch through a bound
        # constructor, not a hashlib.new() string lookup per call.
        for name in ("sha256", "sha1", "md5", "sha512"):
            assert get_hash(name)._factory is getattr(hashlib, name)
        assert get_hash("blake2b")._factory is not None

    def test_empty_batches(self):
        h = get_hash("sha256")
        assert h.digest_many([]) == []
        assert h.tagged_digest_many(self.TAG, []) == []
        assert h.tagged_digest_pairs(self.TAG, []) == []


class TestHashFunctionValidation:
    def test_rejects_bad_digest_size(self):
        with pytest.raises(ReproError):
            HashFunction("bad", lambda d: d, 0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ReproError):
            HashFunction("bad", lambda d: d, 4, cost=-1.0)

    def test_callable_interface(self):
        h = get_hash("sha256")
        assert h(b"x") == h.digest(b"x")
