"""Tests for the hash registry, iterated hashes and cost counting."""

import hashlib

import pytest

from repro.accounting import CostLedger
from repro.exceptions import ReproError
from repro.merkle.hashing import (
    CountingHash,
    HashFunction,
    IteratedHash,
    available_hashes,
    get_hash,
    register_hash,
)


class TestRegistry:
    def test_default_is_sha256(self):
        h = get_hash()
        assert h.name == "sha256"
        assert h.digest_size == 32
        assert h.digest(b"abc") == hashlib.sha256(b"abc").digest()

    def test_md5_matches_stdlib(self):
        # The paper names MD5 explicitly (§3.1).
        h = get_hash("md5")
        assert h.digest_size == 16
        assert h.digest(b"grid") == hashlib.md5(b"grid").digest()

    def test_all_registered_hashes_usable(self):
        for name in available_hashes():
            h = get_hash(name)
            digest = h.digest(b"payload")
            assert len(digest) == h.digest_size

    def test_unknown_hash_rejected(self):
        with pytest.raises(ReproError, match="unknown hash"):
            get_hash("rot13")

    def test_register_custom(self):
        fn = HashFunction("testhash", lambda d: d[:4].ljust(4, b"\0"), 4)
        register_hash(fn)
        assert get_hash("testhash") is fn


class TestIteratedHash:
    def test_matches_manual_iteration(self):
        # g = (MD5)^k, the paper's Eq. 5 construction.
        g = IteratedHash(get_hash("md5"), rounds=7)
        expected = b"seed"
        for _ in range(7):
            expected = hashlib.md5(expected).digest()
        assert g.digest(b"seed") == expected

    def test_cost_scales_with_rounds(self):
        base = get_hash("md5")
        assert IteratedHash(base, 1000).cost == 1000 * base.cost

    def test_one_round_equals_base(self):
        base = get_hash("sha256")
        assert IteratedHash(base, 1).digest(b"x") == base.digest(b"x")

    def test_registry_caret_syntax(self):
        g = get_hash("md5^3")
        manual = IteratedHash(get_hash("md5"), 3)
        assert g.digest(b"v") == manual.digest(b"v")
        assert g.cost == 3.0

    def test_rejects_zero_rounds(self):
        with pytest.raises(ReproError):
            IteratedHash(get_hash("md5"), 0)


class TestCountingHash:
    def test_charges_per_invocation(self):
        ledger = CostLedger()
        counted = CountingHash(get_hash("sha256"), ledger)
        for _ in range(5):
            counted.digest(b"data")
        assert ledger.hashes == 5
        assert ledger.hash_cost == 5.0

    def test_iterated_cost_charged(self):
        ledger = CostLedger()
        counted = CountingHash(get_hash("md5^10"), ledger)
        counted.digest(b"data")
        assert ledger.hashes == 1
        assert ledger.hash_cost == 10.0

    def test_transparent_digests(self):
        ledger = CostLedger()
        inner = get_hash("sha256")
        counted = CountingHash(inner, ledger)
        assert counted.digest(b"zz") == inner.digest(b"zz")
        assert counted.digest_size == inner.digest_size


class TestHashFunctionValidation:
    def test_rejects_bad_digest_size(self):
        with pytest.raises(ReproError):
            HashFunction("bad", lambda d: d, 0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ReproError):
            HashFunction("bad", lambda d: d, 4, cost=-1.0)

    def test_callable_interface(self):
        h = get_hash("sha256")
        assert h(b"x") == h.digest(b"x")
