"""Tests for input domains and partitioning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DomainError
from repro.tasks import ExplicitDomain, RangeDomain


class TestRangeDomain:
    def test_len_and_items(self):
        dom = RangeDomain(10, 15)
        assert len(dom) == 5
        assert [dom[i] for i in range(5)] == [10, 11, 12, 13, 14]

    def test_iteration(self):
        assert list(RangeDomain(0, 4)) == [0, 1, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            RangeDomain(5, 5)
        with pytest.raises(DomainError):
            RangeDomain(5, 3)

    def test_index_bounds(self):
        dom = RangeDomain(0, 3)
        with pytest.raises(DomainError):
            dom[3]
        with pytest.raises(DomainError):
            dom[-1]

    def test_slice(self):
        dom = RangeDomain(100, 200)
        sub = dom.slice(10, 20)
        assert sub == RangeDomain(110, 120)

    def test_equality_and_hash(self):
        assert RangeDomain(0, 5) == RangeDomain(0, 5)
        assert RangeDomain(0, 5) != RangeDomain(0, 6)
        assert hash(RangeDomain(0, 5)) == hash(RangeDomain(0, 5))

    def test_indices(self):
        assert list(RangeDomain(7, 10).indices()) == [0, 1, 2]


class TestExplicitDomain:
    def test_arbitrary_values(self):
        dom = ExplicitDomain(["mol-a", "mol-b", "mol-c"])
        assert len(dom) == 3
        assert dom[1] == "mol-b"

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            ExplicitDomain([])

    def test_slice(self):
        dom = ExplicitDomain([1, 2, 3, 4, 5])
        assert list(dom.slice(1, 4)) == [2, 3, 4]

    def test_equality(self):
        assert ExplicitDomain([1, 2]) == ExplicitDomain([1, 2])
        assert ExplicitDomain([1, 2]) != ExplicitDomain([2, 1])


class TestPartition:
    def test_even_split(self):
        parts = RangeDomain(0, 100).partition(4)
        assert [len(p) for p in parts] == [25, 25, 25, 25]
        assert parts[0][0] == 0
        assert parts[3][24] == 99

    def test_uneven_split_sizes_differ_by_at_most_one(self):
        parts = RangeDomain(0, 10).partition(3)
        assert [len(p) for p in parts] == [4, 3, 3]

    def test_covers_every_input_once(self):
        dom = RangeDomain(0, 37)
        parts = dom.partition(5)
        seen = [x for p in parts for x in p]
        assert seen == list(dom)

    def test_single_part(self):
        parts = RangeDomain(0, 8).partition(1)
        assert len(parts) == 1
        assert list(parts[0]) == list(range(8))

    def test_more_parts_than_inputs_rejected(self):
        with pytest.raises(DomainError):
            RangeDomain(0, 3).partition(4)

    def test_nonpositive_parts_rejected(self):
        with pytest.raises(DomainError):
            RangeDomain(0, 3).partition(0)

    def test_explicit_domain_partition(self):
        dom = ExplicitDomain(list("abcdefg"))
        parts = dom.partition(2)
        assert list(parts[0]) == list("abcd")
        assert list(parts[1]) == list("efg")

    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_properties(self, n, k):
        if k > n:
            return
        parts = RangeDomain(0, n).partition(k)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
        flat = [x for p in parts for x in p]
        assert flat == list(range(n))
