"""E12 — incentive economics: Definition 2.1's second arm, quantified.

The paper defines uncheatability as detection probability below ε *or*
cheating cost above task cost, and motivates everything with paid
participants (§1).  This bench closes the loop: given a payment model,
how many samples make honesty the rational strategy?  Cross-validated
against measured escape rates from real protocol runs.
"""

from repro.analysis import format_table
from repro.analysis.incentives import (
    IncentiveModel,
    deterrent_sample_size,
    utility_curve,
)
from repro.analysis.montecarlo import estimate_escape_rate
from repro.cheating import SemiHonestCheater
from repro.cheating.guessing import guess_model_for_q
from repro.core import CBSScheme
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment


def deterrence_table() -> list[dict]:
    rows = []
    for q in (0.0, 0.25, 0.5):
        for payment, cost in ((110.0, 100.0), (150.0, 100.0), (400.0, 100.0)):
            model = IncentiveModel(payment=payment, task_cost=cost, q=q)
            try:
                m_star = deterrent_sample_size(model)
            except ValueError:
                m_star = None
            rows.append(
                {
                    "q": q,
                    "payment": payment,
                    "task_cost": cost,
                    "margin": payment - cost,
                    "deterrent_m": m_star if m_star is not None else ">10000",
                }
            )
    return rows


def test_deterrent_sample_sizes(benchmark, save_table):
    rows = benchmark.pedantic(deterrence_table, rounds=1, iterations=1)
    table = format_table(
        rows, title="E12 — smallest m making honesty the best response"
    )
    save_table("E12_deterrence", table)

    by_key = {(row["q"], row["payment"]): row for row in rows}
    # q = 0, payment >= cost: m = 1 suffices in expectation.
    assert by_key[(0.0, 150.0)]["deterrent_m"] == 1
    # Guessable outputs need real sampling pressure.
    assert by_key[(0.5, 150.0)]["deterrent_m"] > 1
    # Thin margins are the dangerous regime.
    assert (
        by_key[(0.5, 110.0)]["deterrent_m"]
        > by_key[(0.5, 400.0)]["deterrent_m"]
    )


def test_utility_curve_validated_by_protocol(benchmark, save_table):
    """The utility model's escape term matches the implementation."""

    def run():
        q, m = 0.5, 4
        model = IncentiveModel(payment=150.0, task_cost=100.0, q=q)
        rows = utility_curve(model, m=m, r_values=(0.3, 0.6, 0.9))
        task = TaskAssignment("inc", RangeDomain(0, 200), PasswordSearch())
        for row in rows:
            estimate = estimate_escape_rate(
                CBSScheme(n_samples=m),
                task,
                lambda t, r=row["r"]: SemiHonestCheater(
                    r, guess_model_for_q(q)
                ),
                n_trials=150,
                seed0=int(row["r"] * 100),
            )
            row["measured_escape"] = estimate.rate
            row["escape_in_ci"] = estimate.contains(row["escape"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        columns=[
            "r",
            "escape",
            "measured_escape",
            "escape_in_ci",
            "cheating_utility",
            "honest_utility",
            "gain",
        ],
        title="E12 — utility curve (m=4, q=0.5) with measured escape rates",
    )
    save_table("E12_utility_curve", table)
    assert all(row["escape_in_ci"] for row in rows)
