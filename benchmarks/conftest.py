"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's artefacts (figure,
equation-level claim or numeric example — see DESIGN.md §4) and writes
the resulting table to ``benchmarks/results/`` so the reproduction is
inspectable after ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import pathlib
import secrets
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))
import _perf  # noqa: E402  (sibling helper; needs the path insert)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser) -> None:
    """``--quick``: smoke mode for CI pull-request runs.

    Benches shrink their domains and skip the wall-clock assertions —
    the *machinery* (spawning clusters, adaptive scheduling, result
    streaming, JSON records) still runs end to end, so a scheduler
    regression that breaks or wedges the plane surfaces on every PR
    instead of only on full bench runs.
    """
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink domains and skip perf assertions (CI smoke)",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True when the run is a ``--quick`` CI smoke."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_engine():
    """One warm multi-core executor shared by the experiment benches.

    Population sweeps (E6/E7/E14) are embarrassingly parallel, so on a
    multi-core host they dispatch onto a shared process pool; results
    are backend-invariant (pinned by tests/test_engine.py), only
    wall-clock changes.  Single-core hosts fall back to serial.
    """
    from repro.engine import default_workers, get_executor

    name = "processes" if default_workers() > 1 else "serial"
    with get_executor(name) as executor:
        yield executor


@pytest.fixture
def save_table(results_dir):
    """Write a rendered table to results/<name>.txt and echo it."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture
def save_json(results_dir):
    """Write a machine-readable payload to results/<name>.json.

    The shared path for throughput/latency trajectory tracking: every
    bench that measures performance saves one ``BENCH_*``-style JSON
    record here (the CLI's ``loadgen --json`` emits the same shape),
    so runs are diffable across commits without scraping tables.
    """

    def _save(name: str, payload: dict) -> pathlib.Path:
        path = results_dir / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[json saved to {path}]")
        return path

    return _save


@pytest.fixture(scope="session")
def trajectory(results_dir) -> _perf.Trajectory:
    """The committed participants/sec history (see ``_perf``).

    ``baseline(bench, metric, **where)`` looks up the latest record
    from this machine's fingerprint; ``append(bench, **metrics)``
    writes this run's point.  Perf benches gate on a >30% drop below
    their own machine's committed baseline and always append.
    """
    return _perf.Trajectory()


@pytest.fixture(scope="session")
def security_material(tmp_path_factory):
    """Shared secret + self-signed TLS cert/key for the auth overhead
    bench (the README "Security model" recipe via the shared
    ``repro.net`` helper).

    Returns ``(secret_file, cert_file, key_file)`` paths; skips the
    requesting bench when no ``openssl`` binary is available.
    """
    from repro.exceptions import ProtocolError
    from repro.net.transport import generate_self_signed_cert

    directory = tmp_path_factory.mktemp("bench-security")
    secret = directory / "secret"
    secret.write_text(secrets.token_hex(32) + "\n")
    cert, key = directory / "cert.pem", directory / "key.pem"
    try:
        generate_self_signed_cert(
            str(cert), str(key), common_name="repro-coordinator", days=1
        )
    except ProtocolError as exc:
        pytest.skip(f"cannot generate TLS material: {exc}")
    return str(secret), str(cert), str(key)
