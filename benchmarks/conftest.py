"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's artefacts (figure,
equation-level claim or numeric example — see DESIGN.md §4) and writes
the resulting table to ``benchmarks/results/`` so the reproduction is
inspectable after ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_table(results_dir):
    """Write a rendered table to results/<name>.txt and echo it."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
