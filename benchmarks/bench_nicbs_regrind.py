"""E5 — §4.2 / Eq. (5): the NI-CBS regrinding attack and its defence.

Reproduced claims:

* expected grinding attempts are ``1/r^m`` (measured over many seeds);
* with a cheap sample hash ``g`` the attack is *profitable* (attack
  cost < honest cost) — NI-CBS alone is weaker than CBS;
* pricing ``g`` per Eq. (5) — ``(1/r^m)·m·C_g >= n·C_f`` via the
  iterated-hash construction ``g = h^k`` — makes cheating
  uneconomical, while the honest participant's extra cost stays
  ``≈ r^m`` of the task (the paper's closing observation);
* ablation: the rational incremental regrind (O(log n) hashes/attempt)
  vs the naive full-rebuild reading of step 3.
"""

from repro.analysis import format_table
from repro.analysis.costs import (
    honest_sample_generation_overhead,
    uncheatable_g_rounds,
)
from repro.cheating.regrind import (
    expected_regrind_attempts,
    run_regrind_attack,
)
from repro.core import NICBSScheme, NICBSSupervisor
from repro.cheating import HonestBehavior
from repro.merkle import get_hash
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment

N = 256
F_COST = 100.0


def make_task() -> TaskAssignment:
    return TaskAssignment(
        "regrind", RangeDomain(0, N), PasswordSearch(cost=F_COST)
    )


def measure_attempts() -> list[dict]:
    task = make_task()
    rows = []
    for r, m in ((0.5, 2), (0.5, 4), (0.7, 4), (0.8, 6), (0.9, 8)):
        attempts = []
        for seed in range(30):
            result = run_regrind_attack(
                task,
                honesty_ratio=r,
                n_samples=m,
                seed=seed,
                max_attempts=200_000,
            )
            assert result.succeeded
            attempts.append(result.attempts)
        mean = sum(attempts) / len(attempts)
        expected = expected_regrind_attempts(r, m)
        rows.append(
            {
                "r": r,
                "m": m,
                "expected_1/r^m": expected,
                "measured_mean": mean,
                "ratio": mean / expected,
            }
        )
    return rows


def test_regrind_attempts_match_theory(benchmark, save_table):
    rows = benchmark.pedantic(measure_attempts, rounds=1, iterations=1)
    table = format_table(
        rows, title="E5 / §4.2 — regrind attempts: measured vs 1/r^m (30 seeds)"
    )
    save_table("E5_regrind_attempts", table)
    for row in rows:
        # Geometric-distribution sample means: generous 2x band.
        assert 0.4 < row["ratio"] < 2.5, row


def economics_rows() -> list[dict]:
    task = make_task()
    r, m = 0.8, 6
    rows = []
    k_needed = uncheatable_g_rounds(N, F_COST, r, m)
    for label, g_name in (
        ("cheap (1 round)", "sha256"),
        (f"Eq.5 (k={k_needed})", f"sha256^{k_needed}"),
    ):
        result = run_regrind_attack(
            task,
            honesty_ratio=r,
            n_samples=m,
            sample_hash=get_hash(g_name),
            seed=4,
            max_attempts=100_000,
        )
        rows.append(
            {
                "g": label,
                "attempts": result.attempts,
                "attack_cost": round(result.attack_cost),
                "honest_cost": round(result.honest_task_cost),
                "profitable": result.profitable,
            }
        )
    # Honest participant's overhead when Eq. 5 is tight: ≈ r^m.
    honest_scheme = NICBSScheme(
        n_samples=m, sample_hash_name=f"sha256^{k_needed}"
    )
    honest_run = honest_scheme.run(task, HonestBehavior(), seed=1)
    g_cost = m * k_needed
    rows.append(
        {
            "g": "honest overhead",
            "attempts": 1,
            "attack_cost": round(g_cost),
            "honest_cost": round(honest_run.participant_ledger.evaluation_cost),
            "profitable": "",
            "overhead_ratio": g_cost
            / honest_run.participant_ledger.evaluation_cost,
            "paper_r^m": honest_sample_generation_overhead(r, m),
        }
    )
    return rows


def test_eq5_economics(benchmark, save_table):
    rows = benchmark.pedantic(economics_rows, rounds=1, iterations=1)
    table = format_table(
        rows, title=f"E5 / Eq. (5) — attack economics (n={N}, C_f={F_COST}, r=0.8, m=6)"
    )
    save_table("E5_eq5_economics", table)
    cheap, priced, honest = rows
    assert cheap["profitable"] is True  # NI-CBS with cheap g is breakable
    assert priced["profitable"] is False  # Eq. 5 restores uncheatability
    # Honest sample-generation overhead ratio ≈ r^m (within 2x; Eq. 5's
    # ceil on k rounds up).
    assert honest["overhead_ratio"] < 2 * honest["paper_r^m"] + 0.01


def test_incremental_vs_full_rebuild_ablation(benchmark, save_table):
    task = make_task()

    def run_both():
        rows = []
        for label, incremental in (("incremental", True), ("full rebuild", False)):
            result = run_regrind_attack(
                task,
                honesty_ratio=0.5,
                n_samples=8,
                seed=7,
                max_attempts=100_000,
                incremental=incremental,
            )
            assert result.succeeded
            rows.append(
                {
                    "strategy": label,
                    "attempts": result.attempts,
                    "hashes": result.ledger.hashes,
                    "hashes_per_attempt": result.ledger.hashes / result.attempts,
                }
            )
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = format_table(
        rows,
        title="E5 ablation — regrind hash cost per attempt (n=256, m=8, r=0.5)",
    )
    save_table("E5_regrind_ablation", table)
    inc, full = rows
    assert inc["hashes_per_attempt"] < full["hashes_per_attempt"] / 5


def test_ground_submission_fools_verifier(benchmark):
    """Wall-clock: a full successful grind against a live verifier."""
    task = make_task()

    def grind_and_verify():
        result = run_regrind_attack(
            task, honesty_ratio=0.8, n_samples=4, seed=2, max_attempts=50_000
        )
        assert result.succeeded
        outcome = NICBSSupervisor(task, n_samples=4).verify(result.submission)
        assert outcome.accepted
        return result.attempts

    benchmark.pedantic(grind_and_verify, rounds=1, iterations=1)
