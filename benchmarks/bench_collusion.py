"""E14 — collusion: the redundancy killer CBS shrugs off.

The paper argues double-checking "leads to the wastage of processor
cycles"; the deeper problem (well known from BOINC deployments) is
that replication *assumes independent replicas*.  A cartel that
coordinates fabrications votes itself through majority checks.  CBS
verifies against ``f`` itself, so collusion buys nothing.
"""

from repro.analysis import format_table
from repro.baselines import DoubleCheckScheme
from repro.cheating import ColludingCheater, HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme
from repro.engine import SchemeJob, run_scheme_jobs
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment

N = 400
TRIALS = 40


def collusion_rows(engine="serial") -> list[dict]:
    task = TaskAssignment("coll", RangeDomain(0, N), PasswordSearch())
    cartel = b"bench-cartel"
    rows = []
    cases = [
        (
            "double-check(k=2), independent cheaters",
            DoubleCheckScheme(2, replica_behaviors=[SemiHonestCheater(0.5)]),
            lambda seed: SemiHonestCheater(0.5),
        ),
        (
            "double-check(k=2), colluding cartel",
            DoubleCheckScheme(
                2, replica_behaviors=[ColludingCheater(0.5, cartel)]
            ),
            lambda seed: ColludingCheater(0.5, cartel),
        ),
        (
            "double-check(k=3), cartel outvotes honest",
            DoubleCheckScheme(
                3,
                replica_behaviors=[
                    ColludingCheater(0.5, cartel),
                    HonestBehavior(),
                ],
            ),
            lambda seed: ColludingCheater(0.5, cartel),
        ),
        (
            "cbs(m=20), colluding cartel",
            CBSScheme(20, include_reports=False),
            lambda seed: ColludingCheater(0.5, cartel),
        ),
    ]
    for label, scheme, behavior_factory in cases:
        jobs = [
            SchemeJob(
                assignment=task, behavior=behavior_factory(seed), seed=seed
            )
            for seed in range(TRIALS)
        ]
        results = run_scheme_jobs(scheme, jobs, engine=engine)
        escapes = sum(result.outcome.accepted for result in results)
        rows.append(
            {
                "setup": label,
                "escapes": f"{escapes}/{TRIALS}",
                "escape_rate": escapes / TRIALS,
            }
        )
    return rows


def test_collusion_comparison(benchmark, save_table, bench_engine):
    rows = benchmark.pedantic(
        collusion_rows, args=(bench_engine,), rounds=1, iterations=1
    )
    table = format_table(
        rows, title=f"E14 — collusion vs redundancy vs CBS (r=0.5, {TRIALS} runs)"
    )
    save_table("E14_collusion", table)

    by_setup = {row["setup"]: row for row in rows}
    # Independent cheaters: replication catches them.
    assert by_setup[
        "double-check(k=2), independent cheaters"
    ]["escape_rate"] == 0.0
    # A cartel sails through replication...
    assert by_setup[
        "double-check(k=2), colluding cartel"
    ]["escape_rate"] == 1.0
    assert by_setup[
        "double-check(k=3), cartel outvotes honest"
    ]["escape_rate"] == 1.0
    # ...and is annihilated by CBS (escape 0.75^... ≈ 0 at m=20... q=0
    # here, so 0.5^20).
    assert by_setup["cbs(m=20), colluding cartel"]["escape_rate"] == 0.0
