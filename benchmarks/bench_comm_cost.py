"""E3 — communication cost: O(n) baselines vs O(m log n) CBS.

The paper's §1/§3 claims:

* naive sampling and double-checking put all ``n`` results on the
  wire (§1: "O(n) communication cost");
* CBS reduces the participant's traffic to ``O(m log n)`` (§3: "this
  result is a substantial improvement" for ``n = 2^40``);
* the §3 headline: returning all results of a 2^64 brute-force
  password task would cost ~16 million terabytes at the supervisor.

Measured wire bytes (every message serialized through the canonical
codec) for an ``n`` sweep, plus the closed-form extrapolation to the
paper's 2^40 and 2^64 sizes.
"""

from repro.analysis import format_table
from repro.analysis.costs import cbs_participant_bytes, naive_bytes_per_task
from repro.baselines import DoubleCheckScheme, NaiveSamplingScheme
from repro.cheating import HonestBehavior
from repro.core import CBSScheme
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment

M = 50  # the paper's "almost impossible" sample count


def measure_for(n: int) -> dict:
    task = TaskAssignment("comm", RangeDomain(0, n), PasswordSearch())
    naive = NaiveSamplingScheme(M).run(task, HonestBehavior(), seed=0)
    double = DoubleCheckScheme(2).run(task, HonestBehavior(), seed=0)
    cbs = CBSScheme(M, include_reports=False).run(
        task, HonestBehavior(), seed=0
    )
    return {
        "n": n,
        "double_check_bytes": double.supervisor_ledger.bytes_received,
        "naive_sampling_bytes": naive.participant_ledger.bytes_sent,
        "cbs_bytes": cbs.participant_ledger.bytes_sent,
        "cbs_reduction": round(
            naive.participant_ledger.bytes_sent
            / cbs.participant_ledger.bytes_sent,
            1,
        ),
    }


def run_sweep() -> list[dict]:
    return [measure_for(n) for n in (256, 1024, 4096, 16384, 65536)]


def test_comm_cost_sweep(benchmark, save_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        rows, title=f"E3 — measured wire bytes per participant (m = {M})"
    )
    save_table("E3_comm_cost_measured", table)

    # Shape assertions: naive grows ~linearly, CBS ~logarithmically.
    by_n = {row["n"]: row for row in rows}
    naive_growth = (
        by_n[65536]["naive_sampling_bytes"] / by_n[256]["naive_sampling_bytes"]
    )
    cbs_growth = by_n[65536]["cbs_bytes"] / by_n[256]["cbs_bytes"]
    assert naive_growth > 200  # 256x domain ⇒ ~256x traffic
    assert cbs_growth < 2.5  # only the log n term grows
    # CBS wins beyond the crossover and the margin widens with n.
    assert by_n[4096]["cbs_bytes"] < by_n[4096]["naive_sampling_bytes"]
    assert (
        by_n[65536]["cbs_reduction"] > by_n[4096]["cbs_reduction"]
    )


def test_comm_cost_paper_extrapolation(benchmark, save_table):
    def build_rows():
        rows = []
        for label, n in (("2^30", 1 << 30), ("2^40", 1 << 40), ("2^64", 1 << 64)):
            naive = naive_bytes_per_task(n, result_size=16)
            cbs = cbs_participant_bytes(n, M, digest_size=32, result_size=16)
            rows.append(
                {
                    "n": label,
                    "naive_bytes": naive,
                    "naive_terabytes": naive / 1e12,
                    "cbs_bytes": cbs,
                    "reduction": naive / cbs,
                }
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        rows, title="E3 — closed-form extrapolation to the paper's sizes"
    )
    save_table("E3_comm_cost_extrapolated", table)

    by_n = {row["n"]: row for row in rows}
    # §3 headline: 2^64 results ≈ "about 16 million terabytes".
    assert 10e6 < by_n["2^64"]["naive_terabytes"] < 400e6
    # CBS at 2^64 with m=50 stays in the ~100 KB range.
    assert by_n["2^64"]["cbs_bytes"] < 150_000
