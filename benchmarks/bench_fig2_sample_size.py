"""E1 — Figure 2: required sample size vs honesty ratio.

Paper: for ``ε = 1e−4``, the required ``m`` from Eq. (3) over
``r ∈ [0.1, 0.9]`` for ``q = 0`` and ``q = 0.5``; quoted values are
``m = 33`` at ``(r = 0.5, q = 0.5)`` and ``m = 14`` at ``(r = 0.5,
q ≈ 0)``, with the ``q = 0.5`` curve topping out near 180 at
``r = 0.9``.

The closed form is cross-checked against the *actual protocol*: for a
grid of ``(r, q)`` points we verify empirically (Monte-Carlo over full
CBS runs) that the analytic escape probability at small ``m`` sits
inside the 99% Wilson interval, then tabulate Eq. (3)'s curve.
"""

from repro.analysis import (
    cheat_success_probability,
    estimate_escape_rate,
    fig2_series,
    format_table,
)
from repro.cheating import BernoulliGuess, SemiHonestCheater, ZeroGuess
from repro.core import CBSScheme
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment

EPSILON = 1e-4


def build_fig2_rows() -> list[dict]:
    points = fig2_series(epsilon=EPSILON)
    by_r: dict[float, dict] = {}
    for p in points:
        row = by_r.setdefault(round(p.r, 2), {"r": round(p.r, 2)})
        row[f"m (q={p.q:g})"] = p.required_m
    return [by_r[r] for r in sorted(by_r)]


def validate_eq2_empirically() -> list[dict]:
    task = TaskAssignment("fig2", RangeDomain(0, 400), PasswordSearch())
    rows = []
    for r, q, m in ((0.5, 0.0, 2), (0.5, 0.5, 3), (0.8, 0.0, 4), (0.3, 0.5, 2)):
        guesser = ZeroGuess() if q == 0.0 else BernoulliGuess(q)
        estimate = estimate_escape_rate(
            CBSScheme(n_samples=m),
            task,
            lambda trial: SemiHonestCheater(r, guesser),
            n_trials=250,
            seed0=1000,
        )
        analytic = cheat_success_probability(r, q, m)
        rows.append(
            {
                "r": r,
                "q": q,
                "m": m,
                "analytic_escape": analytic,
                "measured_escape": estimate.rate,
                "ci_low": estimate.low,
                "ci_high": estimate.high,
                "analytic_in_ci": estimate.contains(analytic),
            }
        )
    return rows


def test_fig2_required_sample_size(benchmark, save_table):
    rows = benchmark.pedantic(build_fig2_rows, rounds=1, iterations=1)
    table = format_table(
        rows,
        title=f"E1 / Fig. 2 — required sample size m (epsilon = {EPSILON})",
    )
    save_table("E1_fig2_sample_size", table)

    values = {row["r"]: row for row in rows}
    # The paper's quoted numbers.
    assert values[0.5]["m (q=0)"] == 14
    assert values[0.5]["m (q=0.5)"] == 33
    assert 150 <= values[0.9]["m (q=0.5)"] <= 200
    # Monotone: lazier-to-detect cheaters need more samples.
    for q_key in ("m (q=0)", "m (q=0.5)"):
        curve = [values[r][q_key] for r in sorted(values)]
        assert curve == sorted(curve)


def test_fig2_closed_form_validated_by_protocol(benchmark, save_table):
    rows = benchmark.pedantic(validate_eq2_empirically, rounds=1, iterations=1)
    table = format_table(
        rows, title="E1 validation — Eq. (2) vs Monte-Carlo over real CBS runs"
    )
    save_table("E1_eq2_validation", table)
    assert all(row["analytic_in_ci"] for row in rows)
