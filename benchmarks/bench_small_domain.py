"""E10 — §5 open problem: the small-|D| regime.

The paper's conclusion: "when |D| = 1 ... the cost of verifying a
sample is as expensive as conducting the task.  Therefore, the scheme
is no better than the naive double-check-every-result scheme."

We sweep ``n`` downward and measure the supervisor's verification cost
as a fraction of the task cost, locating the regime where CBS's
advantage evaporates — and show the degenerate ``|D| = 1`` case is
literally a double-check.
"""

from repro.analysis import format_table
from repro.baselines import DoubleCheckScheme
from repro.cheating import HonestBehavior
from repro.core import CBSScheme
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment

M = 10
FN = PasswordSearch(cost=10.0)


def sweep_small_domains() -> list[dict]:
    rows = []
    for n in (1, 2, 4, 8, 16, 64, 256, 1024, 4096):
        m = min(M, n)  # cannot usefully sample more than n
        task = TaskAssignment(f"small-{n}", RangeDomain(0, n), FN)
        result = CBSScheme(
            n_samples=m, with_replacement=False, include_reports=False
        ).run(task, HonestBehavior(), seed=0)
        assert result.outcome.accepted
        task_cost = n * FN.cost
        verify_cost = result.supervisor_ledger.verification_cost
        rows.append(
            {
                "n": n,
                "m": m,
                "task_cost": task_cost,
                "supervisor_verify_cost": verify_cost,
                "verify/task": verify_cost / task_cost,
            }
        )
    return rows


def test_small_domain_sweep(benchmark, save_table):
    rows = benchmark.pedantic(sweep_small_domains, rounds=1, iterations=1)
    table = format_table(
        rows, title=f"E10 / §5 — verification cost vs task cost (m <= {M})"
    )
    save_table("E10_small_domain", table)

    by_n = {row["n"]: row for row in rows}
    # |D| = 1: verifying the one sample == redoing the whole task.
    assert by_n[1]["verify/task"] == 1.0
    # For n <= m the supervisor redoes everything: no better than
    # double-checking.
    assert by_n[4]["verify/task"] == 1.0
    # The advantage appears once n >> m and keeps improving.
    assert by_n[256]["verify/task"] < 0.05
    assert by_n[4096]["verify/task"] < by_n[256]["verify/task"]


def test_degenerate_case_equals_double_check(benchmark, save_table):
    def run():
        task = TaskAssignment("one", RangeDomain(0, 1), FN)
        cbs = CBSScheme(
            n_samples=1, with_replacement=False, include_reports=False
        ).run(task, HonestBehavior(), seed=0)
        dc = DoubleCheckScheme(2).run(task, HonestBehavior(), seed=0)
        return {
            "cbs_supervisor_evals": cbs.supervisor_ledger.verifications,
            "cbs_verify_cost": cbs.supervisor_ledger.verification_cost,
            "double_check_replica_cost": dc.other_ledger.evaluation_cost,
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "E10_degenerate",
        format_table(
            [row],
            title="E10 — |D| = 1: CBS verification == a full re-computation",
        ),
    )
    # Verifying the single sample re-computes f once — the same work a
    # double-check replica does.
    assert row["cbs_verify_cost"] == row["double_check_replica_cost"]
