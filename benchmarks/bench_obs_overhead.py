"""Guard: the metrics registry and span plane must stay off the hot path.

The observability plane (README "Observability") meters *plane
boundaries* — one counter add per engine map, per frame, per chunk —
and deliberately leaves the per-item hot loops (leaf hashing, Merkle
folding, task evaluation) unmetered.  This bench pins that contract:
a full population run with the process-global registry recording must
cost within ``MAX_OVERHEAD`` of the same run with recording disabled.
If someone later meters a per-item loop, this is the test that goes
red before a deployment notices the throughput cliff.

The span story (ISSUE 8) extends the same contract: spans record at
boundary granularity (one per map/chunk) and *only when a trace is
bound*, so a traced run with span recording must also stay within the
gate relative to the unmetered baseline.

Run via ``pytest benchmarks/bench_obs_overhead.py`` (``--quick``
shrinks the domain; the assertion always applies — the whole point is
catching accidental hot-loop metering on every PR).
"""

import time

from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme
from repro.grid.simulation import run_population
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.spans import SpanBuffer, span
from repro.obs.trace import new_trace_id
from repro.tasks import PasswordSearch, RangeDomain

#: Allowed slowdown of metered vs unmetered (ISSUE 7: < 2%).
MAX_OVERHEAD = 0.02
ROUNDS = 5


def _population(n: int) -> None:
    run_population(
        RangeDomain(0, n),
        PasswordSearch(),
        CBSScheme(n_samples=16),
        behaviors=[HonestBehavior(), SemiHonestCheater(0.5)],
        n_participants=8,
        seed=11,
        engine="serial",
    )


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_registry_overhead_under_two_percent(quick, save_table):
    n = 1 << (12 if quick else 14)
    registry = default_registry()
    was_enabled = registry.enabled

    def run_enabled() -> None:
        registry.enabled = True
        _population(n)

    def run_disabled() -> None:
        registry.enabled = False
        _population(n)

    # Interleave the contenders inside every round (the bench_profile
    # idiom): both sides see the same machine states, min discards the
    # noise.
    best = {"enabled": float("inf"), "disabled": float("inf")}
    try:
        for _ in range(ROUNDS):
            best["disabled"] = min(best["disabled"], _time(run_disabled))
            best["enabled"] = min(best["enabled"], _time(run_enabled))
    finally:
        registry.enabled = was_enabled

    overhead = best["enabled"] / best["disabled"] - 1.0
    save_table(
        "bench_obs_overhead",
        (
            f"registry overhead on a D=2^{n.bit_length() - 1} population\n"
            f"  disabled: {best['disabled'] * 1e3:8.2f} ms\n"
            f"  enabled:  {best['enabled'] * 1e3:8.2f} ms\n"
            f"  overhead: {overhead * 100:+.2f}%  (limit {MAX_OVERHEAD:.0%})"
        ),
    )
    assert overhead < MAX_OVERHEAD, (
        f"metrics recording costs {overhead:.1%} (> {MAX_OVERHEAD:.0%}): "
        "something is metering a per-item hot loop"
    )


def test_span_recording_overhead_under_two_percent(quick, save_table):
    """Metered *and* traced (spans recording) vs fully unmetered.

    Span recording is trace-gated and boundary-grained, so a traced
    population — the most instrumented configuration a CLI run can
    reach — must still clear the same <2% gate.  A per-item ``span()``
    sneaking into the grid or engine loop fails here first.
    """
    n = 1 << (12 if quick else 14)
    registry = default_registry()
    was_enabled = registry.enabled
    buffer = SpanBuffer(registry=MetricsRegistry())

    def run_traced() -> None:
        registry.enabled = True
        # One boundary span wrapping the run, as _traced_run binds
        # a trace id for the whole command; engine.map spans record
        # underneath because the trace is now bound.
        with span(f"bench.population.{new_trace_id()}", buffer=buffer):
            _population(n)

    def run_disabled() -> None:
        registry.enabled = False
        _population(n)

    best = {"traced": float("inf"), "disabled": float("inf")}
    try:
        for _ in range(ROUNDS):
            best["disabled"] = min(best["disabled"], _time(run_disabled))
            best["traced"] = min(best["traced"], _time(run_traced))
    finally:
        registry.enabled = was_enabled

    overhead = best["traced"] / best["disabled"] - 1.0
    save_table(
        "bench_obs_overhead_spans",
        (
            f"span+registry overhead on a D=2^{n.bit_length() - 1} "
            f"traced population\n"
            f"  unmetered: {best['disabled'] * 1e3:8.2f} ms\n"
            f"  traced:    {best['traced'] * 1e3:8.2f} ms\n"
            f"  overhead:  {overhead * 100:+.2f}%  (limit {MAX_OVERHEAD:.0%})"
        ),
    )
    assert len(buffer) >= ROUNDS, "the traced leg recorded no spans"
    assert overhead < MAX_OVERHEAD, (
        f"span recording costs {overhead:.1%} (> {MAX_OVERHEAD:.0%}): "
        "a span landed on a per-item hot path"
    )
