"""E9 — design-choice ablations: hash function, leaf encoding, builder.

DESIGN.md §5 calls out three implementation choices the paper leaves
open; each is ablated here:

* **hash function** — MD5/SHA-1 (the paper's suggestions) vs SHA-256
  (our default) vs BLAKE2b: build throughput and proof size;
* **leaf encoding** — the paper's raw ``Φ(L) = f(x)`` vs our
  domain-separated hashed leaves: cost of the extra leaf hash;
* **builder** — in-memory tree vs streaming root computation.
"""

import pytest

from repro.analysis import format_table
from repro.cheating import HonestBehavior
from repro.core import CBSScheme
from repro.merkle import MerkleTree, StreamingMerkleBuilder, get_hash
from repro.merkle.tree import LeafEncoding
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment

N = 4096


@pytest.fixture(scope="module")
def digest_leaves():
    # 16-byte results so RAW encoding works under md5 too.
    fn = PasswordSearch(digest_bytes=16)
    return [fn.evaluate(i) for i in range(N)]


@pytest.mark.parametrize("hash_name", ["md5", "sha1", "sha256", "blake2b"])
def test_build_by_hash(benchmark, digest_leaves, hash_name):
    h = get_hash(hash_name)
    benchmark(lambda: MerkleTree(digest_leaves, hash_fn=h).root)


def test_hash_ablation_table(benchmark, save_table):
    def measure():
        fn = PasswordSearch(digest_bytes=16)
        task = TaskAssignment("abl", RangeDomain(0, N), fn)
        rows = []
        for hash_name in ("md5", "sha1", "sha256", "blake2b"):
            result = CBSScheme(
                n_samples=16, hash_name=hash_name, include_reports=False
            ).run(task, HonestBehavior(), seed=0)
            assert result.outcome.accepted
            rows.append(
                {
                    "hash": hash_name,
                    "digest_bytes": get_hash(hash_name).digest_size,
                    "participant_bytes_sent": result.participant_ledger.bytes_sent,
                    "participant_hashes": result.participant_ledger.hashes,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        rows, title=f"E9a — hash ablation (n={N}, m=16): traffic scales with digest size"
    )
    save_table("E9a_hash_ablation", table)
    by_hash = {row["hash"]: row for row in rows}
    # Proof traffic is proportional to digest size; md5 (16 B) beats
    # sha256 (32 B) on bytes — the paper's MD5 suggestion is the
    # cheapest wire-wise (security considerations aside).
    assert (
        by_hash["md5"]["participant_bytes_sent"]
        < by_hash["sha256"]["participant_bytes_sent"]
    )
    # Same hash count regardless of function.
    assert len({row["participant_hashes"] for row in rows}) == 1


def test_leaf_encoding_ablation(benchmark, save_table):
    def measure():
        fn = PasswordSearch(digest_bytes=16)
        task = TaskAssignment("leaf", RangeDomain(0, N), fn)
        rows = []
        for encoding in (LeafEncoding.RAW, LeafEncoding.HASHED):
            result = CBSScheme(
                n_samples=16,
                hash_name="md5",
                leaf_encoding=encoding,
                include_reports=False,
            ).run(task, HonestBehavior(), seed=0)
            assert result.outcome.accepted
            rows.append(
                {
                    "leaf_encoding": encoding.value,
                    "participant_hashes": result.participant_ledger.hashes,
                    "bytes_sent": result.participant_ledger.bytes_sent,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        rows,
        title="E9b — leaf encoding: paper's raw Φ(L)=f(x) vs domain-separated",
    )
    save_table("E9b_leaf_encoding", table)
    raw, hashed = rows
    # Hashed leaves cost exactly one extra hash per leaf at build time
    # (and one per verified sample at the supervisor); wire size equal.
    assert hashed["participant_hashes"] - raw["participant_hashes"] == N
    assert raw["bytes_sent"] == hashed["bytes_sent"]


def test_streaming_vs_inmemory(benchmark, save_table, digest_leaves):
    def measure():
        tree_root = MerkleTree(digest_leaves).root
        builder = StreamingMerkleBuilder()
        builder.add_leaves(digest_leaves)
        assert builder.finalize() == tree_root
        full_nodes = MerkleTree(digest_leaves).n_nodes
        return {
            "in_memory_nodes": full_nodes,
            "streaming_peak_stack": len(builder._stack),
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_table(
        "E9c_builder_ablation",
        format_table([row], title="E9c — builder memory: full tree vs streaming"),
    )
    assert row["streaming_peak_stack"] <= 14
