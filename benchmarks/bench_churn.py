"""E13 — volunteer churn: verification under realistic dropout.

The paper's §1 grids are built from volunteers who vanish constantly.
This bench composes CBS with the retry policy and measures (a) that
detection and soundness are unaffected by churn, and (b) the waste
churn itself costs — putting the double-check baseline's deliberate
redundancy in context.
"""

from repro.analysis import format_table
from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme
from repro.grid.faults import FlakyParticipant, RetryingScheme
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment

N = 500
TRIALS = 40


def churn_sweep() -> list[dict]:
    task = TaskAssignment("churn", RangeDomain(0, N), PasswordSearch())
    rows = []
    for dropout in (0.0, 0.2, 0.4, 0.6):
        scheme = RetryingScheme(CBSScheme(n_samples=20), max_retries=25)
        honest_ok = 0
        cheaters_caught = 0
        wasted_evals = 0
        attempts = 0
        for seed in range(TRIALS):
            honest = scheme.run(
                task,
                FlakyParticipant(HonestBehavior(), dropout),
                seed=seed,
            )
            honest_ok += honest.outcome.accepted
            wasted_evals += honest.other_ledger.evaluations
            attempts += honest.other_ledger.counters.get("attempts", 1)
            cheat = scheme.run(
                task,
                FlakyParticipant(SemiHonestCheater(0.5), dropout),
                seed=seed + 10_000,
            )
            cheaters_caught += not cheat.outcome.accepted
        rows.append(
            {
                "dropout_rate": dropout,
                "honest_accepted": f"{honest_ok}/{TRIALS}",
                "cheaters_caught": f"{cheaters_caught}/{TRIALS}",
                "mean_attempts": attempts / TRIALS,
                "wasted_evals_per_task": wasted_evals / TRIALS,
            }
        )
    return rows


def test_churn_sweep(benchmark, save_table):
    rows = benchmark.pedantic(churn_sweep, rounds=1, iterations=1)
    table = format_table(
        rows,
        title=f"E13 — CBS under volunteer churn (n={N}, m=20, {TRIALS} tasks/cell)",
    )
    save_table("E13_churn", table)

    for row in rows:
        # Detection and soundness survive churn completely.
        assert row["honest_accepted"] == f"{TRIALS}/{TRIALS}"
        assert row["cheaters_caught"] == f"{TRIALS}/{TRIALS}"
    # Waste grows with the dropout rate (≈ p/(1−p) extra sweeps).
    by_rate = {row["dropout_rate"]: row for row in rows}
    assert by_rate[0.0]["wasted_evals_per_task"] == 0
    assert (
        by_rate[0.6]["wasted_evals_per_task"]
        > by_rate[0.2]["wasted_evals_per_task"]
        > 0
    )
