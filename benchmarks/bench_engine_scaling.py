"""Engine scaling — population-run throughput across execution backends.

The tentpole claim of the execution engine: population simulations
(one CBS protocol run per participant) scale with cores instead of
being bound to one Python loop.  This bench runs the same population —
identical results on every backend, pinned by tests/test_engine.py —
on the serial, thread and process backends at domain sizes
``D ∈ {2^10, 2^14, 2^18}`` and reports participants/sec.

Emits ``benchmarks/results/engine_scaling.json`` (machine-readable,
one row per backend × domain size) plus the usual rendered table.

Interpretation notes: threads mostly document GIL overhead (protocol
runs are pure-Python CPU work); processes must amortize pickling, so
they lose at tiny D and win at large D — on a multi-core machine the
process backend must beat serial at D = 2^18, and the test asserts
exactly that.  On a single-core machine the assertion is vacuous and
the JSON row records the environment honestly.
"""

import time

import _perf
from repro.analysis import format_table
from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme
from repro.engine import default_workers, get_executor
from repro.grid import run_population
from repro.tasks import PasswordSearch, RangeDomain

D_EXPONENTS = (10, 14, 18)
N_PARTICIPANTS = 64
N_SAMPLES = 16
ENGINES = ("serial", "threads", "processes")


def _run_once(exp: int, executor) -> float:
    """One population run; returns elapsed seconds."""
    start = time.perf_counter()
    report = run_population(
        RangeDomain(0, 1 << exp),
        PasswordSearch(),
        CBSScheme(n_samples=N_SAMPLES),
        behaviors=[HonestBehavior(), SemiHonestCheater(0.5)],
        n_participants=N_PARTICIPANTS,
        seed=1,
        engine=executor,
    )
    elapsed = time.perf_counter() - start
    assert len(report.participants) == N_PARTICIPANTS
    assert report.detection_rate == 1.0
    return elapsed


def test_engine_scaling(save_json, save_table, trajectory):
    workers = default_workers()
    rows = []
    serial_elapsed: dict[int, float] = {}
    for engine in ENGINES:
        executor = get_executor(engine, workers)
        with executor:
            for exp in D_EXPONENTS:
                elapsed = _run_once(exp, executor)
                if engine == "serial":
                    serial_elapsed[exp] = elapsed
                rows.append(
                    {
                        "engine": engine,
                        "workers": executor.workers,
                        "D": f"2^{exp}",
                        "domain_size": 1 << exp,
                        "participants": N_PARTICIPANTS,
                        "elapsed_s": round(elapsed, 4),
                        "participants_per_s": round(
                            N_PARTICIPANTS / elapsed, 1
                        ),
                        "speedup_vs_serial": round(
                            serial_elapsed[exp] / elapsed, 2
                        ),
                    }
                )

    save_json(
        "engine_scaling",
        {
            "schema": _perf.BENCH_SCHEMA_VERSION,
            "bench": "engine_scaling",
            "n_participants": N_PARTICIPANTS,
            "n_samples": N_SAMPLES,
            "available_cores": workers,
            "fingerprint": trajectory.fingerprint,
            "rows": rows,
        },
    )
    save_table(
        "engine_scaling",
        format_table(
            [
                {k: r[k] for k in r if k != "domain_size"}
                for r in rows
            ],
            title=(
                f"Engine scaling — {N_PARTICIPANTS} participants, "
                f"m = {N_SAMPLES}, {workers} core(s)"
            ),
        ),
    )

    by_engine = {
        (r["engine"], r["domain_size"]): r["elapsed_s"] for r in rows
    }
    if workers >= 2:
        # The acceptance claim: multi-core process runs beat serial at
        # the largest population.  Shared CI runners are noisy, so a
        # losing first measurement gets one best-of-two retry for each
        # side before the assertion fires.
        serial_t = by_engine[("serial", 1 << 18)]
        proc_t = by_engine[("processes", 1 << 18)]
        if proc_t >= serial_t:
            with get_executor("serial") as ex:
                serial_t = min(serial_t, _run_once(18, ex))
            with get_executor("processes", workers) as ex:
                proc_t = min(proc_t, _run_once(18, ex))
        assert proc_t < serial_t, (
            "process backend should beat serial at D = 2^18 on multi-core "
            f"(processes {proc_t:.3f}s vs serial {serial_t:.3f}s)"
        )

    # Absolute participants/sec floor at the pinned domain: the serial
    # backend at D = 2^18 is the machine's single-worker gauge — no
    # core-count or pool-startup noise — so a >30% drop below this
    # machine's committed trajectory is a hot-path regression, not a
    # scheduling artifact.  Unmatched fingerprints (new CI runners)
    # gate vacuously and start their own trajectory.
    serial_pps = next(
        r["participants_per_s"]
        for r in rows
        if r["engine"] == "serial" and r["domain_size"] == 1 << 18
    )
    baseline = trajectory.baseline(
        "engine_scaling", "serial_participants_per_s", domain_size=1 << 18
    )
    if baseline is not None:
        floor = (1.0 - _perf.MAX_REGRESSION) * baseline
        assert serial_pps >= floor, (
            f"serial participants/sec at D = 2^18 regressed >30% below "
            f"this machine's committed trajectory: {serial_pps:.1f} vs "
            f"baseline {baseline:.1f} (floor {floor:.1f})"
        )
    # Append only after the gate passes — a regressed point must never
    # become the next run's (lower) baseline.
    trajectory.append(
        "engine_scaling",
        domain_size=1 << 18,
        serial_participants_per_s=serial_pps,
        available_cores=workers,
    )
