"""Service throughput — the asyncio supervisor under participant load.

The service-layer acceptance claim: a single supervisor process
sustains at least 500 one-shot NI-CBS submissions/sec at a global
domain of D = 2^12, verifying every submission (sample re-derivation,
f-checks, root reconstructions) off the event loop on the execution
engine.  The load generator drives a mixed honest/cheating population
over real loopback TCP, so the measured path includes framing, socket
hops and session bookkeeping — not just the crypto.

Emits ``benchmarks/results/service_throughput.json`` (one row per
protocol) plus the rendered table.  The NI-CBS row carries the
assertion; the interactive CBS row is informational (two extra RTTs
per round).
"""

import asyncio

from repro.analysis import format_table
from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.service import ServiceConfig, run_service_loadgen
from repro.tasks import RangeDomain

D_EXP = 12
N_PARTICIPANTS = 256
N_SAMPLES = 16  # escape probability 0.5^16 per cheater (Eq. 2)
TARGET_SUBMISSIONS_PER_S = 500.0


def _run(protocol: str) -> dict:
    config = ServiceConfig(
        domain=RangeDomain(0, 1 << D_EXP),
        protocol=protocol,
        n_samples=N_SAMPLES,
        n_participants=N_PARTICIPANTS,
        seed=11,
    )
    report, stats, server = asyncio.run(
        run_service_loadgen(
            config,
            [HonestBehavior(), SemiHonestCheater(0.5)],
            transport="tcp",
            engine="threads",
            concurrency=64,
        )
    )
    assert stats.n_errors == 0, stats
    assert stats.n_completed == N_PARTICIPANTS
    # At m=16, r=0.5 an escape happens w.p. ~1.5e-5 per cheater; one
    # slipping through would be a 0.2%-tail event, not a regression.
    assert report.detection_rate >= 0.99
    assert report.honest_rejected == 0  # Theorem 1: structural
    assert len(server.outcomes) == N_PARTICIPANTS
    return {"protocol": protocol} | stats.summary()


def test_service_throughput(save_json, save_table):
    rows = [_run("ni-cbs"), _run("cbs")]
    by_protocol = {row["protocol"]: row for row in rows}

    # Shared CI runners are noisy; a losing first measurement gets one
    # best-of-two retry before the assertion fires.
    if by_protocol["ni-cbs"]["submissions_per_s"] < TARGET_SUBMISSIONS_PER_S:
        retry = _run("ni-cbs")
        if retry["submissions_per_s"] > by_protocol["ni-cbs"]["submissions_per_s"]:
            by_protocol["ni-cbs"] = retry
            rows[0] = retry

    save_json(
        "service_throughput",
        {
            "bench": "service_throughput",
            "domain_size": 1 << D_EXP,
            "n_participants": N_PARTICIPANTS,
            "n_samples": N_SAMPLES,
            "target_submissions_per_s": TARGET_SUBMISSIONS_PER_S,
            "rows": rows,
        },
    )
    save_table(
        "service_throughput",
        format_table(
            rows,
            title=(
                f"Service throughput — D = 2^{D_EXP}, "
                f"{N_PARTICIPANTS} participants over TCP, m = {N_SAMPLES}"
            ),
        ),
    )

    assert (
        by_protocol["ni-cbs"]["submissions_per_s"] >= TARGET_SUBMISSIONS_PER_S
    ), (
        "service should sustain >= "
        f"{TARGET_SUBMISSIONS_PER_S} NI-CBS submissions/sec at D = 2^{D_EXP}, "
        f"measured {by_protocol['ni-cbs']['submissions_per_s']}"
    )
