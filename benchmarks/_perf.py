"""Performance-trajectory plumbing shared by the benchmarks.

Every perf bench appends one JSONL record to
``benchmarks/results/perf_trajectory.jsonl`` — the committed,
append-only participants/sec history of this repository — and gates
itself against the latest record from the *same machine fingerprint*.
Fingerprint matching is what makes the gate honest: a CI runner with
different hardware starts its own trajectory line instead of
false-failing against numbers measured on another box, while a real
regression on the same machine trips the floor.

Records are schema-versioned (:data:`BENCH_SCHEMA_VERSION`); bump the
version when a field changes meaning and old records stop gating.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import platform
import time

#: Version stamp carried by every saved bench record (JSON and
#: trajectory lines).  Readers skip records from other versions.
BENCH_SCHEMA_VERSION = 1

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
TRAJECTORY_FILE = RESULTS_DIR / "perf_trajectory.jsonl"

#: A bench run failing this far below its machine's committed
#: participants/sec baseline is a regression, not noise.
MAX_REGRESSION = 0.30


def cpu_model() -> str:
    """Human-readable CPU model (best effort, '' when unknowable)."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine()


def machine_fingerprint() -> str:
    """Short stable id for "the same perf environment".

    CPU model + usable core count + Python minor version: the three
    inputs that move these pure-Python benchmarks.  Same fingerprint →
    comparable numbers; different fingerprint → separate trajectory.
    """
    raw = "|".join(
        (
            cpu_model(),
            str(os.cpu_count()),
            platform.machine(),
            ".".join(platform.python_version_tuple()[:2]),
        )
    )
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:12]


class Trajectory:
    """Append-only perf history with fingerprint-matched baselines."""

    def __init__(self, path: pathlib.Path = TRAJECTORY_FILE) -> None:
        self.path = path
        self.fingerprint = machine_fingerprint()

    def records(self, bench: str, **where) -> list[dict]:
        """All schema-current records for ``bench`` matching ``where``."""
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # a corrupt line must not wedge the gate
            if (
                record.get("schema") == BENCH_SCHEMA_VERSION
                and record.get("bench") == bench
                and all(record.get(k) == v for k, v in where.items())
            ):
                out.append(record)
        return out

    def baseline(self, bench: str, metric: str, **where) -> float | None:
        """Latest committed ``metric`` for this machine, or ``None``.

        ``None`` (no record from this fingerprint yet) means the gate
        is vacuous — the run records a first trajectory point instead
        of failing against another machine's numbers.
        """
        matches = self.records(bench, fingerprint=self.fingerprint, **where)
        for record in reversed(matches):
            value = record.get(metric)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
        return None

    def append(self, bench: str, **metrics) -> dict:
        """Append one fingerprinted record; returns what was written."""
        record = {
            "schema": BENCH_SCHEMA_VERSION,
            "bench": bench,
            "fingerprint": self.fingerprint,
            "cpu": cpu_model(),
            "cores": os.cpu_count(),
            "python": platform.python_version(),
            "timestamp": round(time.time(), 1),
            **metrics,
        }
        self.path.parent.mkdir(exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        print(f"[trajectory: {bench} record appended to {self.path}]")
        return record
