"""E6 — Theorems 1–3 at population scale: detection and soundness.

Runs mixed populations through CBS and NI-CBS and tabulates:

* soundness — honest participants are never rejected (Theorem 1:
  zero false alarms, structurally, not statistically);
* uncheatability — cheaters at various ``r`` are caught at the
  ``1 − (r + (1−r)q)^m`` rate (Theorem 3);
* the malicious model (§2.2) — computes everything but corrupts the
  screener: CBS accepts it by design (the paper's stated scope), which
  the table records as the known limitation.
"""

from repro.analysis import cheat_success_probability, format_table
from repro.cheating import (
    HonestBehavior,
    MaliciousBehavior,
    SemiHonestCheater,
)
from repro.core import CBSScheme, NICBSScheme
from repro.engine import SchemeJob, run_scheme_jobs
from repro.grid.simulation import run_population
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment

M = 20
N_PARTICIPANTS = 20
DOMAIN = RangeDomain(0, 4000)
FN = PasswordSearch()


def detection_rows(engine="serial") -> list[dict]:
    rows = []
    for scheme in (CBSScheme(M, include_reports=False), NICBSScheme(M)):
        for label, behavior, expected_detection in (
            ("honest", HonestBehavior(), None),
            ("r=0.9", SemiHonestCheater(0.9), 1 - 0.9**M),
            ("r=0.5", SemiHonestCheater(0.5), 1 - 0.5**M),
            ("r=0.1", SemiHonestCheater(0.1), 1 - 0.1**M),
        ):
            report = run_population(
                DOMAIN,
                FN,
                scheme,
                behaviors=[behavior],
                n_participants=N_PARTICIPANTS,
                seed=42,
                engine=engine,
            )
            rejected = sum(1 for p in report.participants if not p.accepted)
            rows.append(
                {
                    "scheme": scheme.name,
                    "population": label,
                    "rejected": f"{rejected}/{N_PARTICIPANTS}",
                    "expected_detection": (
                        "-" if expected_detection is None else expected_detection
                    ),
                    "false_alarms": report.honest_rejected,
                }
            )
    return rows


def test_population_detection(benchmark, save_table, bench_engine):
    rows = benchmark.pedantic(
        detection_rows, args=(bench_engine,), rounds=1, iterations=1
    )
    table = format_table(
        rows,
        title=f"E6 — population detection, m={M}, {N_PARTICIPANTS} participants/row",
    )
    save_table("E6_detection_rates", table)

    for row in rows:
        if row["population"] == "honest":
            # Theorem 1: soundness is exact.
            assert row["rejected"] == f"0/{N_PARTICIPANTS}"
        else:
            # m=20 ⇒ even r=0.9 escapes w.p. 0.12; expect most caught.
            caught = int(row["rejected"].split("/")[0])
            assert caught >= N_PARTICIPANTS - 3, row
        assert row["false_alarms"] == 0


def test_malicious_model_out_of_scope(benchmark, save_table, bench_engine):
    """§2.2: CBS targets semi-honest cheating; malicious participants
    (full computation, corrupted screener) pass commitment checks."""

    def run():
        report = run_population(
            DOMAIN,
            FN,
            CBSScheme(M, include_reports=False),
            behaviors=[MaliciousBehavior()],
            n_participants=6,
            seed=7,
            engine=bench_engine,
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    accepted = sum(1 for p in report.participants if p.accepted)
    save_table(
        "E6_malicious_scope",
        "E6 — malicious model (computes f, corrupts reports): "
        f"{accepted}/6 accepted by CBS.\n"
        "Matches the paper's §2.2 scoping: commitments verify the\n"
        "computation, not the screener; defence requires report-level\n"
        "redundancy (see the double-check baseline).",
    )
    assert accepted == 6  # the documented limitation, reproduced


def test_escape_rate_at_small_m(benchmark, save_table, bench_engine):
    """With deliberately small m, measured escapes match Theorem 3."""

    def run():
        m, r = 3, 0.5
        scheme = CBSScheme(m, include_reports=False)
        trials = 400
        task = TaskAssignment("esc", RangeDomain(0, 200), FN)
        jobs = [
            SchemeJob(
                assignment=task, behavior=SemiHonestCheater(r), seed=seed
            )
            for seed in range(trials)
        ]
        results = run_scheme_jobs(scheme, jobs, engine=bench_engine)
        escapes = sum(result.outcome.accepted for result in results)
        return m, r, escapes, trials

    m, r, escapes, trials = benchmark.pedantic(run, rounds=1, iterations=1)
    analytic = cheat_success_probability(r, 0.0, m)
    measured = escapes / trials
    save_table(
        "E6_small_m_escape",
        f"E6 — escape rate at m={m}, r={r}: measured {measured:.3f} "
        f"vs analytic {analytic:.3f} ({escapes}/{trials} runs)",
    )
    assert abs(measured - analytic) < 0.06
