"""Cluster scaling — population throughput across remote worker pools.

The tentpole claim of the cluster engine: a coordinator sharding a
population across local worker daemons (one process each, dialled in
over real loopback TCP with pickled chunks, heartbeats and bounded
in-flight windows) beats the single-host serial loop once the domain
is large enough to amortize spawn and framing.  Results are
byte-identical to serial on every worker count — pinned by
tests/test_engine_cluster.py — so only wall-clock is at stake.

Runs the same population at ``D = 2^16`` on serial and on clusters of
2 and 4 workers, reports participants/sec, and — on hosts with at
least 4 usable cores — asserts the 4-worker cluster reaches >= 1.5×
serial throughput.  Single- and dual-core hosts record the measurement
honestly in the JSON and skip the assertion (worker daemons then share
cores with the coordinator, which measures spawn+framing overhead, not
scaling).

Emits ``benchmarks/results/cluster_scaling.json`` via the shared
``save_json`` path plus the usual rendered table.
"""

import time

from repro.analysis import format_table
from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme
from repro.engine import ClusterExecutor, default_workers, get_executor
from repro.grid import run_population
from repro.tasks import PasswordSearch, RangeDomain

D_EXP = 16
N_PARTICIPANTS = 64
N_SAMPLES = 16
CLUSTER_SIZES = (2, 4)
TARGET_SPEEDUP = 1.5


def _run_once(executor) -> float:
    """One population run; returns elapsed seconds."""
    start = time.perf_counter()
    report = run_population(
        RangeDomain(0, 1 << D_EXP),
        PasswordSearch(),
        CBSScheme(n_samples=N_SAMPLES),
        behaviors=[HonestBehavior(), SemiHonestCheater(0.5)],
        n_participants=N_PARTICIPANTS,
        seed=1,
        engine=executor,
    )
    elapsed = time.perf_counter() - start
    assert len(report.participants) == N_PARTICIPANTS
    assert report.detection_rate == 1.0
    return elapsed


def test_cluster_scaling(save_json, save_table):
    cores = default_workers()

    with get_executor("serial") as executor:
        serial_t = _run_once(executor)

    cluster_t: dict[int, float] = {}
    cluster_stats: dict[int, dict] = {}
    for n_workers in CLUSTER_SIZES:
        with ClusterExecutor(workers=n_workers) as executor:
            cluster_t[n_workers] = _run_once(executor)
            cluster_stats[n_workers] = executor.stats

    if cores >= 4 and serial_t / cluster_t[4] < TARGET_SPEEDUP:
        # Shared CI runners are noisy; each side gets one best-of-two
        # retry before the assertion fires.
        with get_executor("serial") as executor:
            serial_t = min(serial_t, _run_once(executor))
        with ClusterExecutor(workers=4) as executor:
            retry_t = _run_once(executor)
            if retry_t < cluster_t[4]:
                cluster_t[4] = retry_t
                cluster_stats[4] = executor.stats

    # Rows are built from the *final* timings so the saved record
    # always matches whatever the assertion below judged.
    rows = [
        {
            "engine": "serial",
            "workers": 1,
            "elapsed_s": round(serial_t, 4),
            "participants_per_s": round(N_PARTICIPANTS / serial_t, 1),
            "speedup_vs_serial": 1.0,
        }
    ]
    for n_workers in CLUSTER_SIZES:
        elapsed = cluster_t[n_workers]
        rows.append(
            {
                "engine": "cluster",
                "workers": n_workers,
                "elapsed_s": round(elapsed, 4),
                "participants_per_s": round(N_PARTICIPANTS / elapsed, 1),
                "speedup_vs_serial": round(serial_t / elapsed, 2),
                "chunks": cluster_stats[n_workers]["jobs_completed"],
                "requeued": cluster_stats[n_workers]["jobs_requeued"],
            }
        )

    save_json(
        "cluster_scaling",
        {
            "bench": "cluster_scaling",
            "domain_size": 1 << D_EXP,
            "n_participants": N_PARTICIPANTS,
            "n_samples": N_SAMPLES,
            "available_cores": cores,
            "target_speedup": TARGET_SPEEDUP,
            "rows": rows,
        },
    )
    save_table(
        "cluster_scaling",
        format_table(
            rows,
            title=(
                f"Cluster scaling — D = 2^{D_EXP}, "
                f"{N_PARTICIPANTS} participants, m = {N_SAMPLES}, "
                f"{cores} core(s)"
            ),
        ),
    )

    if cores >= 4:
        speedup = serial_t / cluster_t[4]
        assert speedup >= TARGET_SPEEDUP, (
            f"4-worker cluster should reach >= {TARGET_SPEEDUP}x serial "
            f"throughput at D = 2^{D_EXP} on a >=4-core host "
            f"(measured {speedup:.2f}x: serial {serial_t:.3f}s, "
            f"cluster {cluster_t[4]:.3f}s)"
        )
