"""Cluster scaling — population throughput across remote worker pools.

Three claims are pinned here:

1. **Scaling** — a coordinator sharding a population across local
   worker daemons (one process each, dialled in over real loopback TCP
   with typed job-spec chunks, heartbeats and bounded in-flight
   windows) beats the single-host serial loop once the domain is large
   enough to amortize spawn and framing: >= 1.5x serial with 4 workers
   at ``D = 2^16`` on a >= 4-core host.
2. **Adaptivity** — with one worker artificially slowed (the
   ``--throttle`` straggler hook), throughput-aware chunk sizing must
   beat fixed-size chunking by >= 10%: the EWMA scheduler learns the
   straggler's rate and strands less work on it, exactly the
   feedback-driven allocation the storage-subnet related repo applies
   to heterogeneous miners.
3. **Security price** — the PR-5 transport layer (mutual HMAC
   handshake + TLS, ``repro.net``) must cost < 15% throughput at the
   CI smoke size versus plaintext: authentication happens once per
   connection and TLS bulk crypto is cheap next to scheme compute, so
   a securely-deployed cluster stays on the perf trajectory.
4. **Wire economy** — the typed job codec (``repro.service.jobcodec``)
   must keep a population job spec >= 3x smaller on the wire than the
   retired pickle envelope at ``D = 2^16``: schemes travel as name +
   canonical params and tasks as registered structs, not as
   class-by-class pickle machinery, and the per-job encode+decode cost
   is reported alongside so the byte win is never bought blind.

Results are byte-identical to serial on every worker count and chunk
policy — pinned by tests/test_engine_cluster.py — so only wall-clock
is at stake.  Single- and dual-core hosts record the measurements
honestly in the JSON and skip the assertions (worker daemons then
share cores with the coordinator, which measures spawn+framing
overhead, not scheduling).

``--quick`` (the CI pull-request smoke) shrinks the domain and skips
the wall-clock assertions while still driving the whole plane —
spawn, adapt, stream, reassemble — end to end.

Emits ``benchmarks/results/cluster_scaling.json`` and
``cluster_skew.json`` via the shared ``save_json`` path plus the usual
rendered tables.
"""

import os
import socket
import subprocess
import sys
import time

import _perf
from _cluster_jobs import bench_item
from repro.analysis import format_table
from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme
from repro.engine import ClusterExecutor, default_workers, get_executor
from repro.grid import run_population
from repro.tasks import PasswordSearch, RangeDomain

D_EXP = 16
D_EXP_QUICK = 12
N_PARTICIPANTS = 64
N_PARTICIPANTS_QUICK = 16
N_SAMPLES = 16
CLUSTER_SIZES = (2, 4)
TARGET_SPEEDUP = 1.5

# Auth+TLS overhead scenario: always measured at the CI smoke size.
SECURITY_D_EXP = 12
SECURITY_PARTICIPANTS = 16
SECURITY_WORKERS = 2
MAX_SECURITY_OVERHEAD = 0.15  # < 15% throughput cost

# Skewed-worker scenario: 4 external workers, one throttled.
SKEW_WORKERS = 4
SKEW_THROTTLE_S = 0.08
SKEW_ITEMS = 96
SKEW_ITEMS_QUICK = 24
FIXED_CHUNK = 4  # min == max: the static baseline
ADAPTIVE_MIN, ADAPTIVE_MAX = 1, 8
TARGET_SKEW_GAIN = 1.10

# Typed-codec wire economy: job bytes vs the retired pickle envelope.
TARGET_BYTES_RATIO = 3.0
CODEC_TIMING_ROUNDS = 5


def _run_once(executor, d_exp: int, participants: int) -> float:
    """One population run; returns elapsed seconds."""
    start = time.perf_counter()
    report = run_population(
        RangeDomain(0, 1 << d_exp),
        PasswordSearch(),
        CBSScheme(n_samples=N_SAMPLES),
        behaviors=[HonestBehavior(), SemiHonestCheater(0.5)],
        n_participants=participants,
        seed=1,
        engine=executor,
    )
    elapsed = time.perf_counter() - start
    assert len(report.participants) == participants
    assert report.detection_rate == 1.0
    return elapsed


def test_cluster_scaling(save_json, save_table, trajectory, quick):
    cores = default_workers()
    d_exp = D_EXP_QUICK if quick else D_EXP
    participants = N_PARTICIPANTS_QUICK if quick else N_PARTICIPANTS

    with get_executor("serial") as executor:
        serial_t = _run_once(executor, d_exp, participants)

    cluster_t: dict[int, float] = {}
    cluster_stats: dict[int, dict] = {}
    for n_workers in CLUSTER_SIZES:
        with ClusterExecutor(workers=n_workers) as executor:
            cluster_t[n_workers] = _run_once(executor, d_exp, participants)
            cluster_stats[n_workers] = executor.stats

    assertable = cores >= 4 and not quick
    if assertable and serial_t / cluster_t[4] < TARGET_SPEEDUP:
        # Shared CI runners are noisy; each side gets one best-of-two
        # retry before the assertion fires.
        with get_executor("serial") as executor:
            serial_t = min(serial_t, _run_once(executor, d_exp, participants))
        with ClusterExecutor(workers=4) as executor:
            retry_t = _run_once(executor, d_exp, participants)
            if retry_t < cluster_t[4]:
                cluster_t[4] = retry_t
                cluster_stats[4] = executor.stats

    # Rows are built from the *final* timings so the saved record
    # always matches whatever the assertion below judged.
    rows = [
        {
            "engine": "serial",
            "workers": 1,
            "elapsed_s": round(serial_t, 4),
            "participants_per_s": round(participants / serial_t, 1),
            "speedup_vs_serial": 1.0,
        }
    ]
    for n_workers in CLUSTER_SIZES:
        elapsed = cluster_t[n_workers]
        rows.append(
            {
                "engine": "cluster",
                "workers": n_workers,
                "elapsed_s": round(elapsed, 4),
                "participants_per_s": round(participants / elapsed, 1),
                "speedup_vs_serial": round(serial_t / elapsed, 2),
                "jobs": cluster_stats[n_workers]["jobs_completed"],
                "chunks": cluster_stats[n_workers]["chunks_completed"],
                "requeued": cluster_stats[n_workers]["jobs_requeued"],
            }
        )

    save_json(
        "cluster_scaling",
        {
            "schema": _perf.BENCH_SCHEMA_VERSION,
            "bench": "cluster_scaling",
            "quick": quick,
            "domain_size": 1 << d_exp,
            "n_participants": participants,
            "n_samples": N_SAMPLES,
            "available_cores": cores,
            "target_speedup": TARGET_SPEEDUP,
            "fingerprint": trajectory.fingerprint,
            "rows": rows,
        },
    )
    save_table(
        "cluster_scaling",
        format_table(
            rows,
            title=(
                f"Cluster scaling — D = 2^{d_exp}, "
                f"{participants} participants, m = {N_SAMPLES}, "
                f"{cores} core(s){' [quick]' if quick else ''}"
            ),
        ),
    )

    if assertable:
        speedup = serial_t / cluster_t[4]
        assert speedup >= TARGET_SPEEDUP, (
            f"4-worker cluster should reach >= {TARGET_SPEEDUP}x serial "
            f"throughput at D = 2^{d_exp} on a >=4-core host "
            f"(measured {speedup:.2f}x: serial {serial_t:.3f}s, "
            f"cluster {cluster_t[4]:.3f}s)"
        )

    # Absolute participants/sec floor at the pinned domain for the
    # 4-worker cluster, against this machine's committed trajectory
    # (fingerprint-matched; quick and full sizes keep separate
    # baselines via the domain_size key).  Unmatched fingerprints gate
    # vacuously and start their own trajectory.
    cluster_pps = round(participants / cluster_t[4], 1)
    baseline = trajectory.baseline(
        "cluster_scaling",
        "cluster4_participants_per_s",
        domain_size=1 << d_exp,
    )
    if baseline is not None:
        floor = (1.0 - _perf.MAX_REGRESSION) * baseline
        assert cluster_pps >= floor, (
            f"4-worker cluster participants/sec at D = 2^{d_exp} "
            f"regressed >30% below this machine's committed trajectory: "
            f"{cluster_pps:.1f} vs baseline {baseline:.1f} "
            f"(floor {floor:.1f})"
        )
    # Append only after the gates pass — a regressed point must never
    # become the next run's (lower) baseline.
    trajectory.append(
        "cluster_scaling",
        quick=quick,
        domain_size=1 << d_exp,
        cluster4_participants_per_s=cluster_pps,
        available_cores=cores,
    )


# ----------------------------------------------------------------------
# Auth + TLS overhead: the security layer's price, pinned
# ----------------------------------------------------------------------


def test_auth_tls_overhead_under_15_percent(
    save_json, save_table, quick, security_material
):
    """Plaintext vs secured (HMAC auth + TLS) cluster at smoke size.

    Both runs use the same worker count and domain; the handshake is
    per-connection and the crypto is per-byte, while the work is
    per-job — so the measured cost stays small.  Best-of-two on each
    side tames shared-runner noise before the assertion fires.
    """
    secret_file, tls_cert, tls_key = security_material
    cores = default_workers()
    secured_kwargs = {
        "secret_file": secret_file,
        "tls_cert": tls_cert,
        "tls_key": tls_key,
    }

    def measure(**security_kwargs) -> tuple[float, dict]:
        with ClusterExecutor(
            workers=SECURITY_WORKERS, **security_kwargs
        ) as executor:
            elapsed = _run_once(
                executor, SECURITY_D_EXP, SECURITY_PARTICIPANTS
            )
            return elapsed, executor.stats

    plain_t, plain_stats = measure()
    secured_t, secured_stats = measure(**secured_kwargs)
    assert secured_stats["auth_rejects"] == 0

    if secured_t / plain_t > 1.0 + MAX_SECURITY_OVERHEAD:
        # One best-of-two retry per side before judging.
        plain_t = min(plain_t, measure()[0])
        secured_t = min(secured_t, measure(**secured_kwargs)[0])

    overhead = secured_t / plain_t - 1.0
    rows = [
        {
            "transport": "plaintext",
            "elapsed_s": round(plain_t, 4),
            "participants_per_s": round(SECURITY_PARTICIPANTS / plain_t, 1),
            "overhead_vs_plain": 0.0,
        },
        {
            "transport": "hmac auth + tls",
            "elapsed_s": round(secured_t, 4),
            "participants_per_s": round(SECURITY_PARTICIPANTS / secured_t, 1),
            "overhead_vs_plain": round(overhead, 3),
        },
    ]
    save_json(
        "cluster_security_overhead",
        {
            "bench": "cluster_security_overhead",
            "quick": quick,
            "domain_size": 1 << SECURITY_D_EXP,
            "n_participants": SECURITY_PARTICIPANTS,
            "workers": SECURITY_WORKERS,
            "available_cores": cores,
            "max_overhead": MAX_SECURITY_OVERHEAD,
            "rows": rows,
        },
    )
    save_table(
        "cluster_security_overhead",
        format_table(
            rows,
            title=(
                f"Cluster security overhead — D = 2^{SECURITY_D_EXP}, "
                f"{SECURITY_PARTICIPANTS} participants, "
                f"{SECURITY_WORKERS} workers, {cores} core(s)"
                f"{' [quick]' if quick else ''}"
            ),
        ),
    )
    assert overhead < MAX_SECURITY_OVERHEAD, (
        f"auth + TLS should cost < {MAX_SECURITY_OVERHEAD:.0%} throughput "
        f"at the smoke size (measured {overhead:.1%}: plaintext "
        f"{plain_t:.3f}s, secured {secured_t:.3f}s)"
    )


# ----------------------------------------------------------------------
# Skewed-worker scenario: adaptive vs fixed chunking under a straggler
# ----------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _spawn_worker(port: int, worker_id: str, throttle: float) -> subprocess.Popen:
    """One external worker daemon (the slow one gets ``--throttle``)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    entry = (
        "import sys; from repro.engine.cluster.worker import main; "
        "sys.exit(main(sys.argv[1:]))"
    )
    cmd = [
        sys.executable, "-c", entry,
        "--host", "127.0.0.1",
        "--port", str(port),
        "--engine", "serial",
        "--id", worker_id,
        "--heartbeat", "0.5",
        "--connect-retry", "30",
        "--preload", "_cluster_jobs",
    ]
    if throttle > 0:
        cmd += ["--throttle", str(throttle)]
    return subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL)


def _run_skewed(n_items: int, chunk_min: int, chunk_max: int) -> tuple[float, dict]:
    """Map ``n_items`` over 4 external workers, one throttled."""
    port = _free_port()
    procs = [
        _spawn_worker(
            port, f"skew-{i}", SKEW_THROTTLE_S if i == 0 else 0.0
        )
        for i in range(SKEW_WORKERS)
    ]
    try:
        with ClusterExecutor(
            port=port,
            spawn_local=False,
            min_workers=SKEW_WORKERS,
            chunk_min=chunk_min,
            chunk_max=chunk_max,
            chunk_target_s=0.2,
            startup_timeout=60.0,
        ) as executor:
            start = time.perf_counter()
            results = executor.map(bench_item, range(n_items))
            elapsed = time.perf_counter() - start
            stats = executor.stats
        assert len(results) == n_items
        assert results[1] == bench_item(1)  # remote work is honest
        return elapsed, stats
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)


def test_adaptive_beats_fixed_chunking_with_straggler(
    save_json, save_table, quick
):
    cores = default_workers()
    n_items = SKEW_ITEMS_QUICK if quick else SKEW_ITEMS

    fixed_t, fixed_stats = _run_skewed(n_items, FIXED_CHUNK, FIXED_CHUNK)
    adaptive_t, adaptive_stats = _run_skewed(
        n_items, ADAPTIVE_MIN, ADAPTIVE_MAX
    )

    assertable = cores >= 4 and not quick
    if assertable and fixed_t / adaptive_t < TARGET_SKEW_GAIN:
        # Best-of-two against CI noise, same policy as the scaling pin.
        retry_fixed, retry_fixed_stats = _run_skewed(
            n_items, FIXED_CHUNK, FIXED_CHUNK
        )
        if retry_fixed < fixed_t:  # each policy keeps its best run
            fixed_t, fixed_stats = retry_fixed, retry_fixed_stats
        retry_adaptive, retry_adaptive_stats = _run_skewed(
            n_items, ADAPTIVE_MIN, ADAPTIVE_MAX
        )
        if retry_adaptive < adaptive_t:
            adaptive_t, adaptive_stats = retry_adaptive, retry_adaptive_stats

    gain = fixed_t / adaptive_t
    rows = [
        {
            "policy": f"fixed (chunk={FIXED_CHUNK})",
            "elapsed_s": round(fixed_t, 4),
            "items_per_s": round(n_items / fixed_t, 1),
            "chunks": fixed_stats["chunks_completed"],
            "gain_vs_fixed": 1.0,
        },
        {
            "policy": f"adaptive ({ADAPTIVE_MIN}..{ADAPTIVE_MAX})",
            "elapsed_s": round(adaptive_t, 4),
            "items_per_s": round(n_items / adaptive_t, 1),
            "chunks": adaptive_stats["chunks_completed"],
            "gain_vs_fixed": round(gain, 2),
        },
    ]
    save_json(
        "cluster_skew",
        {
            "bench": "cluster_skew",
            "quick": quick,
            "n_items": n_items,
            "workers": SKEW_WORKERS,
            "throttle_s": SKEW_THROTTLE_S,
            "available_cores": cores,
            "target_gain": TARGET_SKEW_GAIN,
            "worker_rates_adaptive": adaptive_stats["worker_rates"],
            "rows": rows,
        },
    )
    save_table(
        "cluster_skew",
        format_table(
            rows,
            title=(
                f"Skewed cluster — {SKEW_WORKERS} workers, one throttled "
                f"{SKEW_THROTTLE_S * 1e3:.0f} ms/job, {n_items} items, "
                f"{cores} core(s){' [quick]' if quick else ''}"
            ),
        ),
    )

    if assertable:
        assert gain >= TARGET_SKEW_GAIN, (
            f"adaptive chunking should beat fixed chunking by >= "
            f"{(TARGET_SKEW_GAIN - 1) * 100:.0f}% with a straggler "
            f"(measured {gain:.2f}x: fixed {fixed_t:.3f}s, "
            f"adaptive {adaptive_t:.3f}s)"
        )


# ----------------------------------------------------------------------
# Wire economy: typed job codec vs the retired pickle envelope
# ----------------------------------------------------------------------


def _population_batches(d_exp: int, participants: int) -> list:
    """The exact job specs a cluster population run puts on the wire.

    Mirrors :meth:`repro.grid.simulation.GridSimulation.jobs` at
    batch_size=1 — one ``SchemeBatch`` per participant, same scheme,
    task workload and behaviour mix as :func:`_run_once`.
    """
    from repro.engine.jobs import SchemeBatch, SchemeJob
    from repro.engine.seeding import derive_seed
    from repro.tasks.result import TaskAssignment

    behaviors = [HonestBehavior(), SemiHonestCheater(0.5)]
    scheme = CBSScheme(n_samples=N_SAMPLES)
    function = PasswordSearch()
    return [
        SchemeBatch(
            scheme=scheme,
            jobs=(
                SchemeJob(
                    assignment=TaskAssignment(
                        task_id=f"task-{i}",
                        domain=subdomain,
                        function=function,
                    ),
                    behavior=behaviors[i % len(behaviors)],
                    seed=derive_seed(1, i),
                ),
            ),
        )
        for i, subdomain in enumerate(
            RangeDomain(0, 1 << d_exp).partition(participants)
        )
    ]


def _best_loop_seconds(fn, rounds: int) -> float:
    """Best-of-N wall clock of ``fn`` (one full pass over the jobs)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_job_codec_bytes_vs_pickle(save_json, save_table, trajectory, quick):
    """Typed job specs must be >= 3x smaller than the pickle envelope.

    Measures the exact coordinator submit path (``encode_job`` around
    ``execute_batch``) against what the retired wire did (stdlib pickle
    of the same ``(fn, args, kwargs)`` triple), on the same population
    job list the scaling scenario runs.  Decode runs through a worker's
    scheme cache — that is the production path, and it is exactly where
    the per-chunk scheme rebuild cost went.
    """
    import pickle  # the retired wire, kept only as the yardstick

    from repro.engine.jobs import execute_batch
    from repro.service.jobcodec import SchemeCache, decode_job, encode_job

    d_exp = D_EXP_QUICK if quick else D_EXP
    participants = N_PARTICIPANTS_QUICK if quick else N_PARTICIPANTS
    batches = _population_batches(d_exp, participants)
    n_jobs = len(batches)

    typed = [encode_job(execute_batch, (batch,), {}) for batch in batches]
    pickled = [
        pickle.dumps(
            (execute_batch, (batch,), {}),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        for batch in batches
    ]
    typed_bytes = sum(len(raw) for raw in typed) / n_jobs
    pickle_bytes = sum(len(raw) for raw in pickled) / n_jobs
    ratio = pickle_bytes / typed_bytes

    cache = SchemeCache()
    timings_s = {
        "typed_encode": _best_loop_seconds(
            lambda: [encode_job(execute_batch, (b,), {}) for b in batches],
            CODEC_TIMING_ROUNDS,
        ),
        "typed_decode": _best_loop_seconds(
            lambda: [decode_job(raw, cache=cache) for raw in typed],
            CODEC_TIMING_ROUNDS,
        ),
        "pickle_encode": _best_loop_seconds(
            lambda: [
                pickle.dumps((execute_batch, (b,), {}),
                             protocol=pickle.HIGHEST_PROTOCOL)
                for b in batches
            ],
            CODEC_TIMING_ROUNDS,
        ),
        "pickle_decode": _best_loop_seconds(
            lambda: [pickle.loads(raw) for raw in pickled],
            CODEC_TIMING_ROUNDS,
        ),
    }
    us_per_job = {
        key: round(seconds / n_jobs * 1e6, 1)
        for key, seconds in timings_s.items()
    }

    rows = [
        {
            "codec": "typed (wire v5)",
            "bytes_per_job": round(typed_bytes, 1),
            "encode_us_per_job": us_per_job["typed_encode"],
            "decode_us_per_job": us_per_job["typed_decode"],
            "size_vs_pickle": round(typed_bytes / pickle_bytes, 3),
        },
        {
            "codec": "pickle (retired v4)",
            "bytes_per_job": round(pickle_bytes, 1),
            "encode_us_per_job": us_per_job["pickle_encode"],
            "decode_us_per_job": us_per_job["pickle_decode"],
            "size_vs_pickle": 1.0,
        },
    ]
    save_json(
        "cluster_jobcodec",
        {
            "schema": _perf.BENCH_SCHEMA_VERSION,
            "bench": "cluster_jobcodec",
            "quick": quick,
            "domain_size": 1 << d_exp,
            "n_jobs": n_jobs,
            "n_samples": N_SAMPLES,
            "target_bytes_ratio": TARGET_BYTES_RATIO,
            "bytes_ratio": round(ratio, 3),
            "scheme_cache": cache.stats(),
            "fingerprint": trajectory.fingerprint,
            "rows": rows,
        },
    )
    save_table(
        "cluster_jobcodec",
        format_table(
            rows,
            title=(
                f"Job codec economy — D = 2^{d_exp}, {n_jobs} jobs, "
                f"m = {N_SAMPLES}, typed {ratio:.2f}x smaller"
                f"{' [quick]' if quick else ''}"
            ),
        ),
    )

    # The scheme travelled once per population, not once per job.
    assert cache.stats()["misses"] == 1
    assert cache.stats()["hits"] >= n_jobs - 1

    if not quick:
        assert ratio >= TARGET_BYTES_RATIO, (
            f"typed job specs must be >= {TARGET_BYTES_RATIO:.0f}x smaller "
            f"than the pickle envelope at D = 2^{d_exp} (measured "
            f"{ratio:.2f}x: typed {typed_bytes:.1f} B/job, pickle "
            f"{pickle_bytes:.1f} B/job)"
        )

    # Append only after the gate passes — same policy as the wall-clock
    # trajectories above.
    trajectory.append(
        "cluster_jobcodec",
        quick=quick,
        domain_size=1 << d_exp,
        typed_bytes_per_job=round(typed_bytes, 1),
        pickle_bytes_per_job=round(pickle_bytes, 1),
        bytes_ratio=round(ratio, 3),
        typed_encode_us_per_job=us_per_job["typed_encode"],
        typed_decode_us_per_job=us_per_job["typed_decode"],
    )
