"""E2 — Eq. (2): cheat-success probability, analytic vs measured.

Sweeps ``r × q × m`` and compares the closed form
``(r + (1 − r)q)^m`` against Monte-Carlo escape rates over full CBS
protocol executions (tree, wire messages, verification — everything).
Also reports the paper's §1 sanity point: at ``r = 0.5, q = 0``,
``m = 50`` pushes escape below ``2^−50``.
"""

from repro.analysis import (
    cheat_success_probability,
    estimate_escape_rate,
    format_table,
    sweep,
)
from repro.cheating import SemiHonestCheater
from repro.cheating.guessing import guess_model_for_q
from repro.core import CBSScheme
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment

TASK = TaskAssignment("eq2", RangeDomain(0, 300), PasswordSearch())
TRIALS = 200


def eq2_row(r: float, q: float, m: int) -> dict:
    estimate = estimate_escape_rate(
        CBSScheme(n_samples=m),
        TASK,
        lambda trial: SemiHonestCheater(r, guess_model_for_q(q)),
        n_trials=TRIALS,
        seed0=int(r * 1000) + int(q * 100) + m,
    )
    analytic = cheat_success_probability(r, q, m)
    return {
        "analytic": analytic,
        "measured": estimate.rate,
        "in_99ci": estimate.contains(analytic),
    }


def run_sweep() -> list[dict]:
    return sweep(
        {"r": [0.3, 0.5, 0.8], "q": [0.0, 0.5], "m": [1, 2, 4, 8]},
        eq2_row,
    )


def test_eq2_sweep_matches_analytic(benchmark, save_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        rows,
        columns=["r", "q", "m", "analytic", "measured", "in_99ci"],
        title=f"E2 / Eq. (2) — escape probability, {TRIALS} protocol runs per cell",
    )
    save_table("E2_eq2_sweep", table)
    agreement = sum(row["in_99ci"] for row in rows) / len(rows)
    # Allow a single 99%-CI miss across the 24 cells.
    assert agreement >= (len(rows) - 1) / len(rows)


def test_eq2_intro_example(benchmark, save_table):
    # §1: "If the dishonest participant computes only one half of the
    # inputs, the probability that it can successfully cheat the
    # supervisor is one out of 2^m ... m = 50, the cheating is almost
    # impossible."
    p = benchmark.pedantic(
        lambda: cheat_success_probability(0.5, 0.0, 50), rounds=1, iterations=1
    )
    assert p == 0.5**50
    save_table(
        "E2_intro_example",
        f"E2 — paper §1 example: r=0.5, q=0, m=50 → escape = 2^-50 = {p:.3e}",
    )
