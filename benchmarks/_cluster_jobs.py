"""Registered cluster job functions shared by the benchmarks.

The typed job codec only ships *registered* callables across the
cluster wire (jobs are data, never code), so bench work items live in
this importable module instead of inline in the bench files.  External
worker daemons load the registrations with ``--preload _cluster_jobs``
(the benchmarks directory rides the coordinator's ``PYTHONPATH``
propagation) — exactly the hook a deployment uses for its own job
modules.
"""

import hashlib

from repro.service.jobcodec import register_callable

SKEW_WORK_REPS = 30_000  # ~15-25 ms of sha256 per item


def bench_item(x: int) -> str:
    """One deterministic CPU-bound work item (~tens of ms of hashing)."""
    digest = hashlib.sha256(str(x).encode("ascii")).digest()
    for _ in range(SKEW_WORK_REPS):
        digest = hashlib.sha256(digest).digest()
    return digest.hex()


register_callable("bench.item", bench_item)
