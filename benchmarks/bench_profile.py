"""Profiling harness — where one worker-second actually goes.

Decomposes the participant hot path at a pinned domain size into
phase-attributed wall-clock: task-function evaluation, batched leaf
hashing, Merkle-root construction, the full CBS protocol run, cluster
(de)serialization, frame I/O, and warm-pool scheduling overhead (cold
pool spawn vs prewarmed dispatch).  Two gates ride on the numbers:

* **Speedup** — the batched-hashing Merkle path must hold >= 2x over
  the pre-batching implementation, reproduced verbatim from the seed
  tree code (``hashlib.new`` string lookup per digest, one Python call
  chain per leaf and per internal node).  Legacy and current are
  measured *interleaved*, best-of-N, so machine warm-up drift cannot
  flatter either side.
* **Trajectory** — participants/sec (Merkle commitments built per
  second at the pinned domain) is appended to
  ``benchmarks/results/perf_trajectory.jsonl`` and compared against
  the latest committed record from the same machine fingerprint: a
  >30% drop fails the bench.  The CI smoke job runs this ``--quick``
  on every PR and uploads the JSON as an artifact.

``--quick`` shrinks the domain (2^12 instead of 2^16) and skips the
absolute 2x assertion while keeping the whole harness — phases,
record, trajectory gate — live on every PR.
"""

import hashlib
import pickle  # retired from the cluster wire; kept as the yardstick
import time

import _perf
from repro.analysis import format_table
from repro.cheating import HonestBehavior
from repro.core import CBSScheme
from repro.engine import default_workers, get_executor
from repro.grid import run_population
from repro.merkle import get_hash
from repro.merkle.tree import _LEAF_TAG, _NODE_TAG, LeafEncoding, chunked_root
from repro.net.framing import frame_buffer, split_frame_buffer
from repro.service.codec import decode_cluster_payload, encode_cluster_payload
from repro.tasks import PasswordSearch, RangeDomain

D_EXP = 16
D_EXP_QUICK = 12
N_SAMPLES = 16
ROUNDS = 6
ROUNDS_QUICK = 3
TARGET_SPEEDUP = 2.0
SCHED_ITEMS = 128

FN = PasswordSearch()


# ----------------------------------------------------------------------
# The pre-batching hot path, reproduced verbatim from the seed tree
# code: ``hashlib.new`` resolves the algorithm by string on every
# digest (what ``_stdlib`` did before constructors were cached), every
# leaf goes through an ``encode_leaf`` call with its encoding check and
# a ``tag + payload`` concatenation, and every internal node through a
# ``combine`` call with explicit level indexing.  Measuring through
# the *new* batched structure's fallback loop would flatter the
# baseline — it already skips those per-item call layers.
# ----------------------------------------------------------------------


def _legacy_stdlib_fn(data: bytes) -> bytes:
    return hashlib.new("sha256", data).digest()


class _LegacyHash:
    digest_size = 32

    def __init__(self) -> None:
        self._fn = _legacy_stdlib_fn

    def digest(self, data: bytes) -> bytes:
        return self._fn(data)


def _legacy_encode_leaf(payload, hash_fn, encoding) -> bytes:
    if encoding is LeafEncoding.RAW:
        return payload
    return hash_fn.digest(_LEAF_TAG + payload)


def _legacy_combine(hash_fn, left: bytes, right: bytes) -> bytes:
    return hash_fn.digest(_NODE_TAG + left + right)


def _legacy_root(payloads, hash_fn) -> bytes:
    level = [
        _legacy_encode_leaf(payload, hash_fn, LeafEncoding.HASHED)
        for payload in payloads
    ]
    while len(level) > 1:
        level = [
            _legacy_combine(hash_fn, level[i], level[i + 1])
            for i in range(0, len(level), 2)
        ]
    return level[0]


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _interleaved_best(contenders: dict, rounds: int) -> dict:
    """Best-of-N with the contenders alternated inside every round.

    Measuring one side to completion first hands it whatever thermal /
    frequency state the machine happens to be in; interleaving gives
    both sides the same distribution of machine states and the min
    discards the noise.
    """
    best = {key: float("inf") for key in contenders}
    for _ in range(rounds):
        for key, fn in contenders.items():
            best[key] = min(best[key], _time(fn))
    return best


def _noop_item(_x: int) -> None:
    return None


def _phase_breakdown(n: int, payloads: list, raw_payload: bytes) -> dict:
    """Single-pass wall-clock attribution of the worker hot path."""
    hash_fn = get_hash("sha256")
    phases = {}
    phases["evaluate"] = _time(lambda: [FN.evaluate(i) for i in range(n)])
    phases["leaf_hash"] = _time(
        lambda: hash_fn.tagged_digest_many(_LEAF_TAG, payloads)
    )
    phases["merkle_root"] = _time(lambda: chunked_root(payloads))
    phases["scheme_run"] = _time(
        lambda: run_population(
            RangeDomain(0, n),
            FN,
            CBSScheme(n_samples=N_SAMPLES),
            behaviors=[HonestBehavior()],
            n_participants=1,
            seed=1,
            engine="serial",
        )
    )
    phases["serialize"] = _time(
        lambda: decode_cluster_payload(encode_cluster_payload(payloads))
    )
    phases["serialize_pickle"] = _time(
        lambda: pickle.loads(
            pickle.dumps(payloads, protocol=pickle.HIGHEST_PROTOCOL)
        )
    )
    phases["framing"] = _time(
        lambda: [split_frame_buffer(frame_buffer(raw_payload)) for _ in range(64)]
    )

    # Scheduling overhead: what chunk dispatch costs on a cold pool
    # (process spawn on the request path) versus a prewarmed one.
    workers = min(default_workers(), 4)
    with get_executor("processes", workers) as executor:
        phases["pool_cold_first_map"] = _time(
            lambda: executor.map(_noop_item, range(SCHED_ITEMS))
        )
        executor.prewarm()
        phases["pool_warm_dispatch"] = _time(
            lambda: executor.map(_noop_item, range(SCHED_ITEMS))
        )
    return phases


def test_profile_worker_second(save_json, save_table, trajectory, quick):
    d_exp = D_EXP_QUICK if quick else D_EXP
    rounds = ROUNDS_QUICK if quick else ROUNDS
    n = 1 << d_exp
    payloads = [FN.evaluate(i) for i in range(n)]
    raw_payload = encode_cluster_payload(payloads[: 1 << 10])

    legacy_hash = _LegacyHash()
    # Same commitment either way — the speedup is pure call-path.
    assert _legacy_root(payloads, legacy_hash) == chunked_root(payloads)
    best = _interleaved_best(
        {
            "legacy": lambda: _legacy_root(payloads, legacy_hash),
            "current": lambda: chunked_root(payloads),
        },
        rounds,
    )
    speedup = best["legacy"] / best["current"]
    participants_per_s = 1.0 / best["current"]

    phases = _phase_breakdown(n, payloads, raw_payload)

    # Wire economy of the serialize phase: the same payload list
    # through the typed codec vs the retired pickle envelope, as
    # bytes/item and round-trip µs/item.
    typed_raw = encode_cluster_payload(payloads)
    pickle_raw = pickle.dumps(payloads, protocol=pickle.HIGHEST_PROTOCOL)
    serialize_wire = {
        "items": n,
        "typed_bytes_per_item": round(len(typed_raw) / n, 2),
        "pickle_bytes_per_item": round(len(pickle_raw) / n, 2),
        "typed_us_per_item": round(phases["serialize"] / n * 1e6, 3),
        "pickle_us_per_item": round(phases["serialize_pickle"] / n * 1e6, 3),
    }

    rows = [
        {"phase": name, "seconds": round(seconds, 5)}
        for name, seconds in phases.items()
    ]
    rows.append(
        {"phase": "merkle_root_legacy", "seconds": round(best["legacy"], 5)}
    )
    rows.append(
        {"phase": "merkle_root_best", "seconds": round(best["current"], 5)}
    )
    save_table(
        "profile_phases",
        format_table(
            rows,
            title=(
                f"Worker-second profile at D = 2^{d_exp} "
                f"(batched vs legacy Merkle: {speedup:.2f}x)"
            ),
        ),
    )
    save_json(
        "profile",
        {
            "schema": _perf.BENCH_SCHEMA_VERSION,
            "bench": "profile",
            "quick": quick,
            "domain_size": n,
            "rounds": rounds,
            "phases_s": {k: round(v, 6) for k, v in phases.items()},
            "serialize_wire": serialize_wire,
            "merkle_legacy_s": round(best["legacy"], 6),
            "merkle_current_s": round(best["current"], 6),
            "speedup_vs_legacy": round(speedup, 3),
            "participants_per_s": round(participants_per_s, 2),
            "fingerprint": trajectory.fingerprint,
        },
    )

    # Regression gate first (it also applies --quick, i.e. on every
    # PR): fall below the machine's own committed trajectory by >30%
    # and the bench fails before recording the regressed point.
    baseline = trajectory.baseline(
        "profile", "participants_per_s", domain_size=n
    )
    floor = None if baseline is None else (1.0 - _perf.MAX_REGRESSION) * baseline
    if floor is not None:
        assert participants_per_s >= floor, (
            f"participants/sec regressed >30% below this machine's "
            f"committed trajectory: {participants_per_s:.2f} vs "
            f"baseline {baseline:.2f} (floor {floor:.2f})"
        )
    if not quick:
        assert speedup >= TARGET_SPEEDUP, (
            f"batched Merkle path must hold >= {TARGET_SPEEDUP}x over the "
            f"pre-batching implementation, got {speedup:.2f}x "
            f"(legacy {best['legacy']:.3f}s vs current {best['current']:.3f}s)"
        )

    # Append only after the gates pass: a regressed point must never
    # become the next run's (lower) baseline.
    trajectory.append(
        "profile",
        quick=quick,
        domain_size=n,
        participants_per_s=round(participants_per_s, 2),
        speedup_vs_legacy=round(speedup, 3),
        merkle_current_s=round(best["current"], 6),
        merkle_legacy_s=round(best["legacy"], 6),
    )
