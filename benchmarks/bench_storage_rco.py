"""E4 — §3.3 / Fig. 3: the storage/computation trade-off.

Paper claims reproduced:

* storing the tree only up to level ``H − ℓ`` cuts storage to
  ``O(|D| / 2^ℓ)`` (we measure stored digests exactly);
* answering one sample then costs a height-``ℓ`` subtree rebuild,
  i.e. ``2^ℓ`` evaluations of ``f``;
* the relative computation overhead is ``rco = m·2^ℓ/|D| = 2m/S``,
  *independent of task size*;
* the paper's worked example: ``m = 64`` with 4 GB (``S = 2^32``)
  of tree storage gives ``rco = 2^−25`` for any task size.
"""

from repro.analysis import format_table
from repro.cheating import HonestBehavior
from repro.core import CBSScheme, predicted_rco, storage_for_rco
from repro.core.storage_opt import rco_from_storage
from repro.merkle import PartialMerkleTree
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment

N = 4096
M = 16


def run_ell_sweep() -> list[dict]:
    task = TaskAssignment("rco", RangeDomain(0, N), PasswordSearch())
    rows = []
    for ell in (0, 2, 4, 6, 8):
        result = CBSScheme(
            n_samples=M,
            subtree_height=ell or None,
            with_replacement=False,
            include_reports=False,
        ).run(task, HonestBehavior(), seed=3)
        assert result.outcome.accepted
        extra = result.participant_ledger.evaluations - N
        rows.append(
            {
                "ell": ell,
                "stored_digests": result.participant_ledger.storage_digests,
                "rebuild_evals": extra,
                "measured_rco": extra / N,
                "paper_rco": predicted_rco(M, N, ell),
            }
        )
    return rows


def test_storage_rco_sweep(benchmark, save_table):
    rows = benchmark.pedantic(run_ell_sweep, rounds=1, iterations=1)
    table = format_table(
        rows, title=f"E4 / §3.3 — storage vs recompute (n = {N}, m = {M})"
    )
    save_table("E4_storage_rco", table)

    by_ell = {row["ell"]: row for row in rows}
    # Storage drops 4x per 2 levels; measured rco tracks the paper's
    # formula exactly when samples hit distinct subtrees (<= otherwise).
    for ell in (2, 4, 6, 8):
        assert by_ell[ell]["stored_digests"] < by_ell[ell - 2]["stored_digests"]
        assert by_ell[ell]["measured_rco"] <= by_ell[ell]["paper_rco"] + 1e-12
    # At ℓ=8 subtrees are 256 leaves wide: a full rebuild per sample.
    assert by_ell[8]["rebuild_evals"] % 256 == 0


def test_paper_4gb_example(benchmark, save_table):
    # m = 64, S = 2^32 digests ⇒ rco = 2^-25, regardless of |D|.
    rco = benchmark.pedantic(
        lambda: rco_from_storage(m=64, storage_digests=1 << 32),
        rounds=1,
        iterations=1,
    )
    assert rco == 2.0**-25
    assert storage_for_rco(m=64, target_rco=2.0**-25) == 1 << 32
    lines = [
        "E4 — paper §3.3 worked example",
        f"m=64, S=2^32 stored digests  =>  rco = {rco:.3e} = 2^-25",
        "independent of task size (table below: same rco at any H):",
    ]
    rows = [
        {
            "task_size": f"2^{height}",
            "ell": height - 31,
            "rco": predicted_rco(64, 1 << height, height - 31),
        }
        for height in (36, 40, 44)
    ]
    save_table(
        "E4_paper_example", "\n".join(lines) + "\n" + format_table(rows)
    )
    for row in rows:
        assert row["rco"] == 2.0**-25


def test_partial_tree_proof_latency(benchmark):
    """Wall-clock: one storage-optimized proof (subtree rebuild included)."""
    n, ell = 4096, 6
    fn = PasswordSearch()
    payloads = [fn.evaluate(i) for i in range(n)]
    tree = PartialMerkleTree(
        payloads, lambda i: payloads[i], subtree_height=ell
    )
    counter = iter(range(10**9))

    def prove_one():
        return tree.auth_path(next(counter) % n)

    benchmark(prove_one)
