"""E7 — §1.1 positioning: CBS vs ringers vs hardening vs redundancy.

The paper positions CBS against Golle–Mironov ringers [8] and the
Szajda et al. hardening [10]:

* ringers require one-way ``f`` and "cannot be applied to generic
  computations" — measured here as an outright refusal on the
  guessable workload;
* redundancy (double-checking) detects everything but wastes the grid
  (k× cycles) and keeps ``O(n)`` traffic;
* naive sampling and hardened probes detect well but keep ``O(n)``
  traffic;
* CBS/NI-CBS handle both workload classes at ``O(m log n)`` traffic
  with supervisor work proportional to ``m``.
"""

from repro.analysis import estimate_escape_rate, format_table
from repro.baselines import (
    DoubleCheckScheme,
    HardenedProbeScheme,
    NaiveSamplingScheme,
    RingerScheme,
)
from repro.cheating import HonestBehavior, SemiHonestCheater, UniformValueGuess
from repro.core import CBSScheme, NICBSScheme
from repro.exceptions import SchemeConfigurationError
from repro.tasks import (
    PasswordSearch,
    RangeDomain,
    SignalSearch,
    TaskAssignment,
)

N = 2048
BUDGET = 20  # samples / ringers / probes per scheme
TRIALS = 120


def schemes():
    return [
        DoubleCheckScheme(2),
        NaiveSamplingScheme(BUDGET),
        RingerScheme(BUDGET),
        HardenedProbeScheme(BUDGET),
        CBSScheme(BUDGET, include_reports=False),
        NICBSScheme(BUDGET),
    ]


def compare_on(task, cheater_factory, engine="serial") -> list[dict]:
    rows = []
    for scheme in schemes():
        try:
            honest = scheme.run(task, HonestBehavior(), seed=0)
        except SchemeConfigurationError:
            rows.append(
                {"scheme": scheme.name, "applicable": False}
            )
            continue
        escape = estimate_escape_rate(
            scheme,
            task,
            cheater_factory,
            n_trials=TRIALS,
            seed0=500,
            engine=engine,
        )
        rows.append(
            {
                "scheme": scheme.name,
                "applicable": True,
                "escape_rate": escape.rate,
                "supervisor_bytes_in": honest.supervisor_ledger.bytes_received,
                "supervisor_compute": round(
                    honest.supervisor_ledger.total_compute_cost
                ),
                "grid_waste_evals": honest.other_ledger.evaluations,
                "false_alarm": not honest.outcome.accepted,
            }
        )
    return rows


def test_one_way_workload_comparison(benchmark, save_table, bench_engine):
    task = TaskAssignment("cmp-pw", RangeDomain(0, N), PasswordSearch())
    rows = benchmark.pedantic(
        lambda: compare_on(task, lambda t: SemiHonestCheater(0.5), bench_engine),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        rows,
        title=f"E7a — one-way workload (password, q≈0), r=0.5, budget={BUDGET}",
    )
    save_table("E7a_one_way_comparison", table)

    by_name = {row["scheme"]: row for row in rows}
    # Everyone is applicable on a one-way f; detection is near-total.
    assert all(row["applicable"] for row in rows)
    for row in rows:
        assert row["escape_rate"] < 0.05, row
    # CBS traffic beats the O(n) schemes at n=2048.
    assert (
        by_name[f"cbs(m={BUDGET})"]["supervisor_bytes_in"]
        < by_name[f"naive-sampling(m={BUDGET})"]["supervisor_bytes_in"] / 3
    )
    # Redundancy wastes a full extra sweep.
    assert by_name["double-check(k=2)"]["grid_waste_evals"] == N


def test_generic_workload_comparison(benchmark, save_table, bench_engine):
    task = TaskAssignment("cmp-sig", RangeDomain(0, N), SignalSearch())
    guesser = UniformValueGuess([b"\x00", b"\x01"])
    rows = benchmark.pedantic(
        lambda: compare_on(
            task, lambda t: SemiHonestCheater(0.5, guesser), bench_engine
        ),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        rows,
        title=f"E7b — generic workload (signal, q=0.5), r=0.5, budget={BUDGET}",
    )
    save_table("E7b_generic_comparison", table)

    by_name = {row["scheme"]: row for row in rows}
    # The §1.1 claim: ringers refuse the non-one-way workload...
    assert by_name[f"ringer(d={BUDGET})"]["applicable"] is False
    # ...while CBS handles it (with the q-inflated escape of Eq. 2:
    # (0.75)^20 ≈ 0.003).
    assert by_name[f"cbs(m={BUDGET})"]["applicable"] is True
    assert by_name[f"cbs(m={BUDGET})"]["escape_rate"] < 0.05
    # No scheme false-alarms on honest work.
    assert not any(row.get("false_alarm") for row in rows if row["applicable"])
