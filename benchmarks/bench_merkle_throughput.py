"""E8 — Merkle substrate performance and the O(log n) proof-size table.

Wall-clock benchmarks for the three hot paths of CBS — tree build,
proof generation, proof verification — plus the proof-size table
backing §3.1's "the communication cost of this process is proportional
to the height of the tree".
"""

import time

import pytest

import _perf
from repro.analysis import format_table
from repro.merkle import MerkleTree, StreamingMerkleBuilder, get_hash
from repro.tasks import PasswordSearch

FN = PasswordSearch()


def payloads(n: int) -> list[bytes]:
    return [FN.evaluate(i) for i in range(n)]


@pytest.fixture(scope="module")
def leaves_4k():
    return payloads(4096)


@pytest.fixture(scope="module")
def tree_4k(leaves_4k):
    return MerkleTree(leaves_4k)


def test_tree_build_4k(benchmark, leaves_4k):
    benchmark(lambda: MerkleTree(leaves_4k).root)


def test_streaming_build_4k(benchmark, leaves_4k):
    def build():
        builder = StreamingMerkleBuilder()
        builder.add_leaves(leaves_4k)
        return builder.finalize()

    benchmark(build)


def test_proof_generation_4k(benchmark, tree_4k):
    counter = iter(range(10**9))
    benchmark(lambda: tree_4k.auth_path(next(counter) % 4096))


def test_proof_verification_4k(benchmark, tree_4k, leaves_4k):
    path = tree_4k.auth_path(1234)
    root = tree_4k.root
    hash_fn = tree_4k.hash_fn

    def verify():
        assert path.verify(leaves_4k[1234], root, hash_fn)

    benchmark(verify)


def test_proof_size_table(benchmark, save_table):
    def measure():
        rows = []
        for exp in (8, 10, 12, 14, 16):
            n = 1 << exp
            tree = MerkleTree(payloads(n))
            size = tree.auth_path(0).wire_size()
            rows.append(
                {
                    "n": f"2^{exp}",
                    "height": tree.height,
                    "proof_bytes": size,
                    "bytes_per_level": round(size / tree.height, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        rows, title="E8 — proof size grows with log n (33 B per level)"
    )
    save_table("E8_proof_sizes", table)

    # Perfectly linear in the height: constant bytes per level.
    per_level = {row["bytes_per_level"] for row in rows}
    assert max(per_level) - min(per_level) < 2.0
    # Doubling the exponent adds exactly height-delta levels.
    heights = [row["height"] for row in rows]
    assert heights == [8, 10, 12, 14, 16]


def test_streaming_memory_footprint(benchmark, save_table):
    """The O(log n) builder keeps its stack logarithmic."""

    def run():
        builder = StreamingMerkleBuilder()
        peak = 0
        for i in range(1 << 14):
            builder.add_leaf(FN.evaluate(i))
            peak = max(peak, len(builder._stack))
        builder.finalize()
        return peak

    peak = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "E8_streaming_memory",
        f"E8 — streaming builder peak stack over 2^14 leaves: {peak} "
        "slots (vs 32767 nodes for the in-memory tree)",
    )
    assert peak <= 15


def test_throughput_record(benchmark, save_json, trajectory, leaves_4k):
    """Machine-readable build throughput, same record schema as the
    profiling harness (``bench_profile``): schema-versioned, carrying
    the machine fingerprint, diffable across commits."""
    n = len(leaves_4k)

    def best_of(fn, rounds=5):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def streaming():
        builder = StreamingMerkleBuilder()
        builder.add_leaves(leaves_4k)
        return builder.finalize()

    tree_s = benchmark.pedantic(
        lambda: best_of(lambda: MerkleTree(leaves_4k).root),
        rounds=1,
        iterations=1,
    )
    streaming_s = best_of(streaming)
    save_json(
        "merkle_throughput",
        {
            "schema": _perf.BENCH_SCHEMA_VERSION,
            "bench": "merkle_throughput",
            "n_leaves": n,
            "tree_build_s": round(tree_s, 6),
            "streaming_build_s": round(streaming_s, 6),
            "tree_leaves_per_s": round(n / tree_s, 1),
            "streaming_leaves_per_s": round(n / streaming_s, 1),
            "fingerprint": trajectory.fingerprint,
        },
    )
