"""E11 — batched multiproofs: compressing CBS's proof traffic.

A post-paper optimization on §3.1's proof bundle: the ``m``
authentication paths share interior digests, so one compressed
multiproof is strictly smaller than ``m`` independent paths.  The
``O(m log n)`` bound is unchanged; this bench measures the constant.
"""

from repro.analysis import format_table
from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.core import CBSScheme
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment


def sweep_batching() -> list[dict]:
    rows = []
    for n, m in ((4096, 10), (4096, 50), (65536, 50), (65536, 200)):
        task = TaskAssignment(f"b{n}-{m}", RangeDomain(0, n), PasswordSearch())
        classic = CBSScheme(m, include_reports=False).run(
            task, HonestBehavior(), seed=0
        )
        batched = CBSScheme(m, include_reports=False, batch_proofs=True).run(
            task, HonestBehavior(), seed=0
        )
        assert classic.outcome.accepted and batched.outcome.accepted
        a = classic.participant_ledger.bytes_sent
        b = batched.participant_ledger.bytes_sent
        rows.append(
            {
                "n": n,
                "m": m,
                "classic_bytes": a,
                "batched_bytes": b,
                "saving": f"{(1 - b / a) * 100:.0f}%",
            }
        )
    return rows


def test_batched_proof_compression(benchmark, save_table):
    rows = benchmark.pedantic(sweep_batching, rounds=1, iterations=1)
    table = format_table(
        rows, title="E11 — classic proof bundle vs compressed multiproof"
    )
    save_table("E11_batched_proofs", table)
    for row in rows:
        assert row["batched_bytes"] < row["classic_bytes"]
    # Larger m over the same tree ⇒ more shared interiors ⇒ bigger
    # relative saving.
    by_key = {(row["n"], row["m"]): row for row in rows}
    saving_small = 1 - by_key[(65536, 50)]["batched_bytes"] / by_key[(65536, 50)]["classic_bytes"]
    saving_large = 1 - by_key[(65536, 200)]["batched_bytes"] / by_key[(65536, 200)]["classic_bytes"]
    assert saving_large > saving_small


def test_batched_detection_unchanged(benchmark, save_table):
    def run():
        task = TaskAssignment("bd", RangeDomain(0, 1024), PasswordSearch())
        classic = CBSScheme(8)
        batched = CBSScheme(8, batch_proofs=True)
        agree = 0
        trials = 80
        for seed in range(trials):
            behavior = SemiHonestCheater(0.75)
            a = classic.run(task, behavior, seed=seed).outcome.accepted
            b = batched.run(task, behavior, seed=seed).outcome.accepted
            agree += a == b
        return agree, trials

    agree, trials = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "E11_batched_equivalence",
        f"E11 — batched vs classic verdict agreement: {agree}/{trials}",
    )
    assert agree == trials
