"""Cost accounting: the ledger every scheme charges against.

The paper's claims are cost claims — ``O(n)`` vs ``O(m log n)``
communication (§3), ``rco = 2m/S`` recompute overhead (§3.3), and the
Eq. (5) economics of the regrinding attack.  Rather than measure noisy
wall-clock, every metered component charges a :class:`CostLedger`:

* ``f``-evaluations and verifications, in abstract cost units
  (``C_f`` per call, see :class:`repro.tasks.function.TaskFunction`);
* hash invocations (``C_g`` per call for the NI-CBS sample generator);
* bytes sent/received on the simulated network;
* storage slots (Merkle digests held);
* discrete event counters (commitments, proofs, regrind attempts...).

Ledgers add, subtract and snapshot, so experiments can diff phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.exceptions import LedgerError


@dataclass
class CostLedger:
    """Mutable cost accumulator with named counters.

    Cost fields are floats in abstract cost units; count fields are
    plain integers.  All mutators validate non-negative charges.
    """

    #: Total cost of f-evaluations (Σ C_f).
    evaluation_cost: float = 0.0
    #: Number of f-evaluations.
    evaluations: int = 0
    #: Total cost of result verifications at the supervisor.
    verification_cost: float = 0.0
    #: Number of verifications.
    verifications: int = 0
    #: Total cost of hash invocations (tree building + sample generation).
    hash_cost: float = 0.0
    #: Number of hash invocations.
    hashes: int = 0
    #: Bytes sent over the network by the owning node.
    bytes_sent: int = 0
    #: Bytes received over the network by the owning node.
    bytes_received: int = 0
    #: Messages sent.
    messages_sent: int = 0
    #: Messages received.
    messages_received: int = 0
    #: Peak number of stored Merkle digests (storage footprint).
    storage_digests: int = 0
    #: Screener invocations cost.
    screening_cost: float = 0.0
    #: Free-form counters (e.g. "regrind_attempts").
    counters: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Charging API (used by metered wrappers)
    # ------------------------------------------------------------------

    def _check(self, amount: float, what: str) -> None:
        if amount < 0:
            raise LedgerError(f"negative {what} charge: {amount}")

    def charge_evaluation(self, cost: float) -> None:
        """Record one ``f`` evaluation of the given cost."""
        self._check(cost, "evaluation")
        self.evaluation_cost += cost
        self.evaluations += 1

    def charge_verification(self, cost: float) -> None:
        """Record one result verification of the given cost."""
        self._check(cost, "verification")
        self.verification_cost += cost
        self.verifications += 1

    def charge_hash(self, cost: float) -> None:
        """Record one hash invocation of the given cost."""
        self._check(cost, "hash")
        self.hash_cost += cost
        self.hashes += 1

    def charge_screening(self, cost: float) -> None:
        """Record one screener invocation."""
        self._check(cost, "screening")
        self.screening_cost += cost

    def record_send(self, n_bytes: int) -> None:
        """Record an outbound message of ``n_bytes``."""
        self._check(n_bytes, "send")
        self.bytes_sent += n_bytes
        self.messages_sent += 1

    def record_receive(self, n_bytes: int) -> None:
        """Record an inbound message of ``n_bytes``."""
        self._check(n_bytes, "receive")
        self.bytes_received += n_bytes
        self.messages_received += 1

    def record_storage(self, n_digests: int) -> None:
        """Record a storage footprint; keeps the peak."""
        self._check(n_digests, "storage")
        self.storage_digests = max(self.storage_digests, n_digests)

    def bump(self, counter: str, by: int = 1) -> None:
        """Increment a free-form counter."""
        self._check(by, "counter")
        self.counters[counter] = self.counters.get(counter, 0) + by

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    @property
    def total_compute_cost(self) -> float:
        """Evaluations + verifications + hashing + screening."""
        return (
            self.evaluation_cost
            + self.verification_cost
            + self.hash_cost
            + self.screening_cost
        )

    def snapshot(self) -> "CostLedger":
        """A deep copy for phase diffing."""
        clone = CostLedger()
        for f_ in fields(self):
            if f_.name == "counters":
                clone.counters = dict(self.counters)
            else:
                setattr(clone, f_.name, getattr(self, f_.name))
        return clone

    def diff(self, earlier: "CostLedger") -> "CostLedger":
        """The charge accumulated since ``earlier`` (a snapshot)."""
        delta = CostLedger()
        for f_ in fields(self):
            if f_.name == "counters":
                keys = set(self.counters) | set(earlier.counters)
                delta.counters = {
                    k: self.counters.get(k, 0) - earlier.counters.get(k, 0)
                    for k in keys
                    if self.counters.get(k, 0) != earlier.counters.get(k, 0)
                }
            elif f_.name == "storage_digests":
                delta.storage_digests = self.storage_digests
            else:
                setattr(
                    delta, f_.name, getattr(self, f_.name) - getattr(earlier, f_.name)
                )
        return delta

    def merge(self, other: "CostLedger") -> None:
        """Accumulate ``other`` into this ledger (population totals)."""
        self.evaluation_cost += other.evaluation_cost
        self.evaluations += other.evaluations
        self.verification_cost += other.verification_cost
        self.verifications += other.verifications
        self.hash_cost += other.hash_cost
        self.hashes += other.hashes
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received
        self.storage_digests = max(self.storage_digests, other.storage_digests)
        self.screening_cost += other.screening_cost
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value

    def as_dict(self) -> dict:
        """Flat dict of all counters (for table rows)."""
        out = {
            "evaluation_cost": self.evaluation_cost,
            "evaluations": self.evaluations,
            "verification_cost": self.verification_cost,
            "verifications": self.verifications,
            "hash_cost": self.hash_cost,
            "hashes": self.hashes,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "storage_digests": self.storage_digests,
            "screening_cost": self.screening_cost,
        }
        out.update(self.counters)
        return out
