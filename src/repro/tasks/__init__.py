"""Workload substrate: domains, task functions and screeners (paper §2.1).

The paper's computation model is a function ``f : X -> T`` over a finite
domain, partitioned into per-participant subdomains ``D``, plus a
screener ``S(x, f(x))`` that selects the "results of interest" actually
reported to the supervisor.  This package provides:

* :class:`~repro.tasks.domain.Domain` implementations
  (:class:`~repro.tasks.domain.RangeDomain`,
  :class:`~repro.tasks.domain.ExplicitDomain`) with partitioning.
* :class:`~repro.tasks.function.TaskFunction` — the black-box ``f`` with
  an abstract per-evaluation cost ``C_f``, an optional cheap verifier
  (the paper's factoring example), and a one-wayness flag that gates
  the ringer baseline.
* Concrete workloads in :mod:`repro.tasks.workloads` modelled on the
  paper's motivating applications (password search / key cracking,
  smallpox-style molecule screening, SETI-style signal search, GIMPS
  Mersenne testing, Monte-Carlo estimation, optimization search).
* :class:`~repro.tasks.screener.Screener` implementations.
"""

from repro.tasks.domain import Domain, ExplicitDomain, RangeDomain
from repro.tasks.function import GuessableFunction, TaskFunction
from repro.tasks.result import ReportOfInterest, TaskAssignment, TaskResult
from repro.tasks.screener import (
    MatchScreener,
    Screener,
    ThresholdScreener,
    TopKScreener,
)
from repro.tasks.workloads import (
    FactoringTask,
    MersenneCheck,
    MoleculeScreening,
    MonteCarloEstimate,
    OptimizationSearch,
    PasswordSearch,
    SignalSearch,
)

__all__ = [
    "Domain",
    "RangeDomain",
    "ExplicitDomain",
    "TaskFunction",
    "GuessableFunction",
    "TaskAssignment",
    "TaskResult",
    "ReportOfInterest",
    "Screener",
    "MatchScreener",
    "ThresholdScreener",
    "TopKScreener",
    "PasswordSearch",
    "FactoringTask",
    "MoleculeScreening",
    "SignalSearch",
    "MersenneCheck",
    "MonteCarloEstimate",
    "OptimizationSearch",
]
