"""Screeners: selecting the "results of interest" (paper §2.1).

The screener ``S`` takes ``(x, f(x))`` and returns a report string for
valuable outputs (or nothing).  Its run time is "of negligible cost
compared to the evaluation of f", which we model with a configurable
small cost.  The malicious cheating model (§2.2) corrupts exactly this
step — computing ``S(x, z)`` for random ``z`` — so screeners are
first-class objects the behaviour models can interpose on.
"""

from __future__ import annotations

import abc
import heapq
import struct
from typing import Any

from repro.exceptions import TaskError


class Screener(abc.ABC):
    """Maps ``(x, result)`` pairs to optional report strings."""

    #: Abstract cost of one screening call (negligible vs C_f by §2.1).
    cost: float = 0.01

    @abc.abstractmethod
    def screen(self, x: Any, result: bytes) -> str | None:
        """Return a report string if the result is of interest."""

    def reset(self) -> None:
        """Clear any cross-input state (stateful screeners override)."""


class MatchScreener(Screener):
    """Report inputs whose result equals a target digest.

    The password-cracking screener: the supervisor publishes the target
    hash; a hit report carries the input (the recovered key).
    """

    def __init__(self, target: bytes) -> None:
        if not target:
            raise TaskError("empty target digest")
        self.target = target

    def screen(self, x: Any, result: bytes) -> str | None:
        if result == self.target:
            return f"match:{x}"
        return None


class ThresholdScreener(Screener):
    """Report results whose integer encoding crosses a threshold.

    Used by the molecule-screening workload: docking scores are 4-byte
    big-endian quantized levels; candidates below/above the cut are
    reported for wet-lab follow-up.
    """

    def __init__(self, threshold: int, direction: str = "below") -> None:
        if direction not in ("below", "above"):
            raise TaskError(f"direction must be 'below' or 'above', got {direction!r}")
        self.threshold = threshold
        self.direction = direction

    def screen(self, x: Any, result: bytes) -> str | None:
        if len(result) != 4:
            raise TaskError(
                f"ThresholdScreener expects 4-byte results, got {len(result)}"
            )
        (level,) = struct.unpack(">I", result)
        hit = level <= self.threshold if self.direction == "below" else level >= self.threshold
        if hit:
            return f"candidate:{x}:{level}"
        return None


class TopKScreener(Screener):
    """Keep the ``k`` best (lowest-value) results seen so far.

    A stateful screener for optimization workloads: only the running
    top-k are of interest.  Reports are emitted when an input enters
    the current top-k; the final :meth:`top` gives the survivors.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise TaskError(f"k must be >= 1, got {k}")
        self.k = k
        # Max-heap via negation: root is the worst of the current best-k.
        self._heap: list[tuple[int, Any]] = []

    def screen(self, x: Any, result: bytes) -> str | None:
        if len(result) != 4:
            raise TaskError(f"TopKScreener expects 4-byte results, got {len(result)}")
        (level,) = struct.unpack(">I", result)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-level, x))
            return f"topk:{x}:{level}"
        worst = -self._heap[0][0]
        if level < worst:
            heapq.heapreplace(self._heap, (-level, x))
            return f"topk:{x}:{level}"
        return None

    def top(self) -> list[tuple[Any, int]]:
        """Current best-k as ``(input, level)`` sorted best-first."""
        return [(x, -neg) for neg, x in sorted(self._heap, reverse=True)]

    def reset(self) -> None:
        self._heap.clear()


class ReportAllScreener(Screener):
    """Report every result — degenerate screener used by the naive
    sampling baseline, which requires *all* results on the wire."""

    def screen(self, x: Any, result: bytes) -> str | None:
        return f"result:{x}:{result.hex()}"
