"""Input domains and partitioning (paper §2.1).

The supervisor partitions the global domain ``X`` into subdomains and
assigns subdomain ``X_i`` to participant ``i``.  A domain here is an
ordered, finite, indexable collection of *inputs* (opaque Python
values); CBS identifies inputs by their 0-based index, which is what
the Merkle leaves and sample challenges refer to.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, Sequence

from repro.exceptions import DomainError


class Domain(abc.ABC):
    """An ordered finite collection of task inputs."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of inputs ``n = |D|``."""

    @abc.abstractmethod
    def __getitem__(self, index: int) -> Any:
        """The input ``x_index`` (0-based)."""

    def __iter__(self) -> Iterator[Any]:
        for i in range(len(self)):
            yield self[i]

    def indices(self) -> range:
        """``range(n)`` over the domain's leaf indices."""
        return range(len(self))

    def partition(self, n_parts: int) -> list["Domain"]:
        """Split into ``n_parts`` contiguous subdomains of near-equal size.

        The first ``len(self) % n_parts`` parts receive one extra input,
        so sizes differ by at most one and every input is assigned
        exactly once.
        """
        n = len(self)
        if n_parts <= 0:
            raise DomainError(f"n_parts must be positive, got {n_parts}")
        if n_parts > n:
            raise DomainError(
                f"cannot partition {n} inputs into {n_parts} non-empty parts"
            )
        base, extra = divmod(n, n_parts)
        parts: list[Domain] = []
        start = 0
        for i in range(n_parts):
            size = base + (1 if i < extra else 0)
            parts.append(self.slice(start, start + size))
            start += size
        return parts

    @abc.abstractmethod
    def slice(self, start: int, stop: int) -> "Domain":
        """The subdomain covering indices ``[start, stop)``."""

    def _check_slice(self, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= len(self):
            raise DomainError(
                f"slice [{start}, {stop}) invalid for domain of size {len(self)}"
            )
        if start == stop:
            raise DomainError("empty subdomain")


class RangeDomain(Domain):
    """Consecutive integers ``[start, stop)`` — key spaces, chunk ids.

    This is the shape of the paper's examples: a 64-bit password key
    space, molecule indices, work-unit ids.
    """

    def __init__(self, start: int, stop: int) -> None:
        if stop <= start:
            raise DomainError(f"empty range [{start}, {stop})")
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def __getitem__(self, index: int) -> int:
        if not 0 <= index < len(self):
            raise DomainError(f"index {index} outside [0, {len(self)})")
        return self.start + index

    def slice(self, start: int, stop: int) -> "RangeDomain":
        self._check_slice(start, stop)
        return RangeDomain(self.start + start, self.start + stop)

    def __repr__(self) -> str:
        return f"RangeDomain({self.start}, {self.stop})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangeDomain)
            and self.start == other.start
            and self.stop == other.stop
        )

    def __hash__(self) -> int:
        return hash(("RangeDomain", self.start, self.stop))


class ExplicitDomain(Domain):
    """An explicit sequence of arbitrary hashable inputs."""

    def __init__(self, inputs: Sequence[Any]) -> None:
        items = list(inputs)
        if not items:
            raise DomainError("empty explicit domain")
        self._items = items

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Any:
        if not 0 <= index < len(self):
            raise DomainError(f"index {index} outside [0, {len(self)})")
        return self._items[index]

    def slice(self, start: int, stop: int) -> "ExplicitDomain":
        self._check_slice(start, stop)
        return ExplicitDomain(self._items[start:stop])

    def __repr__(self) -> str:
        preview = ", ".join(repr(x) for x in self._items[:3])
        suffix = ", ..." if len(self._items) > 3 else ""
        return f"ExplicitDomain([{preview}{suffix}], n={len(self._items)})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExplicitDomain) and self._items == other._items

    def __hash__(self) -> int:
        return hash(("ExplicitDomain", tuple(self._items)))
