"""Task assignment and result containers shared across schemes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.tasks.domain import Domain
from repro.tasks.function import TaskFunction
from repro.tasks.screener import Screener


@dataclass(frozen=True)
class TaskAssignment:
    """A unit of work handed to one participant (paper Problem 1).

    Attributes
    ----------
    task_id:
        Opaque identifier used by the protocol layer to correlate
        commitments, challenges and proofs.
    domain:
        The subdomain ``D`` the participant must evaluate.
    function:
        The task function ``f``.
    screener:
        The screener ``S`` selecting results of interest (may be
        ``None`` for pure verification experiments).
    """

    task_id: str
    domain: Domain
    function: TaskFunction
    screener: Screener | None = None

    @property
    def n_inputs(self) -> int:
        """``n = |D|``."""
        return len(self.domain)


@dataclass
class TaskResult:
    """One ``(index, result)`` pair produced by a participant."""

    index: int
    result: bytes


@dataclass
class ReportOfInterest:
    """A screener hit reported back to the supervisor."""

    task_id: str
    index: int
    input_value: Any
    report: str

    def wire_size(self) -> int:
        """Approximate serialized size in bytes."""
        return 8 + len(str(self.input_value)) + len(self.report)


@dataclass
class WorkOutput:
    """Everything a participant produced for an assignment.

    ``reports`` are the screener hits (the only payload an honest grid
    normally returns); ``results`` is the full result vector, retained
    participant-side for commitment/proof purposes and only shipped by
    the naive baselines.
    """

    task_id: str
    results: list[bytes] = field(default_factory=list)
    reports: list[ReportOfInterest] = field(default_factory=list)
