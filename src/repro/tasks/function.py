"""The black-box task function ``f`` and its cost model (paper §2.1).

Every verification scheme in this library treats ``f`` as an opaque
deterministic function with:

* a canonical byte encoding of its result (what goes into the Merkle
  leaves — the paper's ``Φ(L_i) = f(x_i)``);
* an abstract per-evaluation cost ``C_f`` in *cost units* (the same
  units hash costs use), so analyses like Eq. (5) are expressible
  without wall-clock noise;
* an optional *cheap verifier*: §3.1 notes that verifying ``f(x_i)``
  "does not necessarily mean that the supervisor has to re-compute
  f(x_i)" (e.g. factoring).  When ``verify_cost`` is cheaper than
  ``cost``, the supervisor uses :meth:`TaskFunction.verify`; otherwise
  it re-computes.
* a ``one_way`` flag: whether recovering ``x`` from ``f(x)`` is
  infeasible.  The Golle–Mironov ringer baseline *requires* this
  (paper §1.1) and refuses non-one-way workloads; CBS does not care.
* a ``guess_success_probability``: the paper's ``q`` — the probability
  that a participant who skipped the evaluation nevertheless guesses
  the exact result (``Pr_guess(Φ(L) = f(x)) = q``, Theorem 3).  For a
  one-way hash image ``q ≈ 0``; for a boolean-output screener-style
  function ``q`` can be as high as 0.5.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.exceptions import TaskError


class TaskFunction(abc.ABC):
    """Deterministic task function with canonical result encoding."""

    #: Abstract cost of one evaluation (cost units).
    cost: float = 1.0
    #: Cost of verifying a claimed result; defaults to re-computation.
    verify_cost: float | None = None
    #: Whether f is one-way (x infeasible to recover from f(x)).
    one_way: bool = False
    #: The paper's q: probability a guess matches f(x) exactly.
    guess_success_probability: float = 0.0

    @abc.abstractmethod
    def evaluate(self, x: Any) -> bytes:
        """Compute ``f(x)`` and return its canonical byte encoding."""

    def verify(self, x: Any, claimed: bytes) -> bool:
        """Check a claimed result, re-computing by default.

        Subclasses with an asymmetric verifier (factoring-style)
        override this and set ``verify_cost`` accordingly.
        """
        return self.evaluate(x) == claimed

    @property
    def effective_verify_cost(self) -> float:
        """Cost units charged for one verification."""
        return self.cost if self.verify_cost is None else self.verify_cost

    @property
    def result_size(self) -> int:
        """Size in bytes of one encoded result (for wire accounting).

        Subclasses with fixed-size results override; the default probes
        lazily and caches.  Variable-size results should override
        explicitly.
        """
        cached = getattr(self, "_result_size", None)
        if cached is None:
            raise TaskError(
                f"{type(self).__name__} must define result_size "
                "(fixed-size results) or override the property"
            )
        return cached

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(cost={self.cost},"
            f" one_way={self.one_way}, q={self.guess_success_probability})"
        )


class GuessableFunction(TaskFunction):
    """Wrap a function to expose a different guess probability ``q``.

    Used in experiments that sweep ``q`` (Fig. 2 has ``q = 0`` and
    ``q = 0.5`` curves) while holding the underlying workload fixed: the
    wrapped function's outputs are unchanged, only the adversary's
    modelled guessing power differs.
    """

    def __init__(self, inner: TaskFunction, q: float) -> None:
        if not 0.0 <= q <= 1.0:
            raise TaskError(f"q must be in [0, 1], got {q}")
        self.inner = inner
        self.cost = inner.cost
        self.verify_cost = inner.verify_cost
        self.one_way = inner.one_way
        self.guess_success_probability = q

    def evaluate(self, x: Any) -> bytes:
        return self.inner.evaluate(x)

    def verify(self, x: Any, claimed: bytes) -> bool:
        return self.inner.verify(x, claimed)

    @property
    def result_size(self) -> int:
        return self.inner.result_size


class MeteredFunction(TaskFunction):
    """Charge every evaluation/verification of ``inner`` to a ledger.

    The ledger is duck-typed (``charge_evaluation(cost)`` /
    ``charge_verification(cost)``) to avoid importing the grid layer.
    """

    def __init__(self, inner: TaskFunction, ledger) -> None:
        self.inner = inner
        self.ledger = ledger
        self.cost = inner.cost
        self.verify_cost = inner.verify_cost
        self.one_way = inner.one_way
        self.guess_success_probability = inner.guess_success_probability

    def evaluate(self, x: Any) -> bytes:
        self.ledger.charge_evaluation(self.inner.cost)
        return self.inner.evaluate(x)

    def verify(self, x: Any, claimed: bytes) -> bool:
        self.ledger.charge_verification(self.inner.effective_verify_cost)
        return self.inner.verify(x, claimed)

    @property
    def result_size(self) -> int:
        return self.inner.result_size
