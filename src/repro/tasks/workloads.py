"""Concrete workloads modelled on the paper's motivating applications.

The paper motivates grid computing with SETI@home, IBM's smallpox
screening, GIMPS and brute-force password cracking (§1 and §3).  Those
pipelines are proprietary or impractically large, but the verification
schemes only interact with ``f`` through (a) its canonical output
bytes, (b) its abstract cost ``C_f``, (c) one-wayness and (d) the guess
probability ``q``.  Each workload here reproduces exactly those four
properties with a deterministic PRF-backed kernel (substitution table
in DESIGN.md §2):

* :class:`PasswordSearch` — find the key whose hash matches a target;
  genuinely one-way (it *is* a hash), ``q ≈ 0``.  This is the §3
  "break a 64-bit password" example and the classic ringer setting.
* :class:`MoleculeScreening` — smallpox-style docking-score screening;
  scores are PRF floats quantized to a grid, so ``q`` is small but
  nonzero and tunable.
* :class:`SignalSearch` — SETI-style chunk analysis producing a power
  metric; outputs boolean "interesting" verdicts with threshold
  chosen so ``q`` can be large (e.g. 0.5) — the hard case for naive
  guessing analysis and the Fig. 2 ``q = 0.5`` curve.
* :class:`MersenneCheck` — a *real* computation: the Lucas–Lehmer
  primality test on Mersenne exponents (GIMPS).  Boolean output with
  an overwhelming prior toward "composite".
* :class:`MonteCarloEstimate` — seed-indexed Monte-Carlo estimation
  (the Szajda et al. extension target [10]); deterministic given the
  work-unit seed.
* :class:`OptimizationSearch` — grid-cell objective evaluation (the
  other Szajda target); supports planting known optima for the
  hardening baseline.
"""

from __future__ import annotations

import math
import struct
from typing import Any

from repro.exceptions import TaskError
from repro.tasks.function import TaskFunction
from repro.utils.prf import prf_bytes, prf_float


def _encode_int(x: Any) -> bytes:
    if isinstance(x, bytes):
        return x
    if isinstance(x, int):
        return x.to_bytes((max(x.bit_length(), 1) + 7) // 8, "big", signed=False)
    if isinstance(x, str):
        return x.encode("utf-8")
    raise TaskError(f"unsupported input type {type(x).__name__}")


class PasswordSearch(TaskFunction):
    """Brute-force key search: ``f(x) = H(salt || x)``.

    The supervisor holds a target digest; participants hash every key in
    their subdomain and report matches.  ``f`` is one-way, so the
    ringer scheme applies and ``q ≈ 0`` (guessing a 16-byte digest).

    Parameters
    ----------
    salt:
        Public salt mixed into every hash (prevents rainbow reuse).
    digest_bytes:
        Truncated digest length; 16 mirrors the paper's MD5 setting.
    cost:
        Abstract ``C_f``; defaults to 1.0 cost unit per key.
    """

    one_way = True
    guess_success_probability = 0.0

    def __init__(
        self, salt: bytes = b"repro/password", digest_bytes: int = 16, cost: float = 1.0
    ) -> None:
        if digest_bytes < 4:
            raise TaskError(f"digest_bytes must be >= 4, got {digest_bytes}")
        self.salt = salt
        self.digest_bytes = digest_bytes
        self.cost = cost
        self._result_size = digest_bytes

    def evaluate(self, x: Any) -> bytes:
        return prf_bytes(self.salt, _encode_int(x), n_bytes=self.digest_bytes)

    @property
    def result_size(self) -> int:
        return self.digest_bytes

    def target_for(self, x: Any) -> bytes:
        """The digest a supervisor would publish to hunt for key ``x``."""
        return self.evaluate(x)


class MoleculeScreening(TaskFunction):
    """Synthetic docking-score screening (IBM smallpox grid analogue).

    Each molecule id maps to a deterministic pseudo-docking score in
    ``[0, 1)``, quantized to ``resolution`` levels.  The canonical
    result is the 4-byte big-endian quantized score.  Guessing succeeds
    with probability ``1/resolution`` under a uniform guesser, which is
    the value exposed as ``q``.
    """

    one_way = False

    def __init__(
        self,
        library_seed: bytes = b"repro/smallpox",
        resolution: int = 1024,
        cost: float = 50.0,
    ) -> None:
        if resolution < 2:
            raise TaskError(f"resolution must be >= 2, got {resolution}")
        self.library_seed = library_seed
        self.resolution = resolution
        self.cost = cost
        self.guess_success_probability = 1.0 / resolution

    def evaluate(self, x: Any) -> bytes:
        score = prf_float(self.library_seed, _encode_int(x))
        level = min(int(score * self.resolution), self.resolution - 1)
        return struct.pack(">I", level)

    @property
    def result_size(self) -> int:
        return 4

    def score(self, x: Any) -> float:
        """The un-quantized docking score, for screener thresholds."""
        return prf_float(self.library_seed, _encode_int(x))


class SignalSearch(TaskFunction):
    """SETI-style chunk analysis with a boolean "interesting" verdict.

    A work-unit id maps to a simulated spectral peak power; the result
    is ``b"\\x01"`` if the power exceeds ``threshold`` else ``b"\\x00"``.
    With ``threshold = 0.5`` the output is an unbiased coin, so a
    guessing cheater succeeds with ``q = 0.5`` — precisely the
    pessimistic curve in Fig. 2 of the paper.
    """

    one_way = False

    def __init__(
        self,
        sky_seed: bytes = b"repro/seti",
        threshold: float = 0.5,
        cost: float = 200.0,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise TaskError(f"threshold must be in (0, 1), got {threshold}")
        self.sky_seed = sky_seed
        self.threshold = threshold
        self.cost = cost
        # Optimal guesser always predicts the likelier symbol.
        self.guess_success_probability = max(threshold, 1.0 - threshold)

    def power(self, x: Any) -> float:
        """Simulated peak spectral power for work unit ``x``."""
        return prf_float(self.sky_seed, _encode_int(x))

    def evaluate(self, x: Any) -> bytes:
        return b"\x01" if self.power(x) >= self.threshold else b"\x00"

    @property
    def result_size(self) -> int:
        return 1


class MersenneCheck(TaskFunction):
    """Lucas–Lehmer primality of ``2^p − 1`` (GIMPS analogue).

    This is a *real* computation, not a PRF: input ``p`` (an odd prime
    exponent) is accepted iff ``M_p = 2^p − 1`` is prime.  Result is one
    byte.  Verification cost equals evaluation cost (no shortcut is
    known), and the output is guessable — almost all ``M_p`` are
    composite — so ``q`` is close to 1 and CBS's commitment (not
    guess-resistance) is what provides the defence; the bench E7 uses
    this to show where ringers fail.
    """

    one_way = False

    def __init__(self, cost: float = 100.0) -> None:
        self.cost = cost
        # A cheater answering the constant "composite" is almost always
        # right; model q conservatively as 0.9 (the share of composite
        # M_p among small prime exponents is higher still).
        self.guess_success_probability = 0.9

    def evaluate(self, x: Any) -> bytes:
        p = int(x)
        return b"\x01" if self.is_mersenne_prime(p) else b"\x00"

    @staticmethod
    def is_mersenne_prime(p: int) -> bool:
        """Lucas–Lehmer test; handles the ``p = 2`` special case."""
        if p < 2:
            return False
        if p == 2:
            return True  # M_2 = 3 is prime.
        if not MersenneCheck._is_prime(p):
            return False  # M_p composite whenever p is.
        m = (1 << p) - 1
        s = 4
        for _ in range(p - 2):
            s = (s * s - 2) % m
        return s == 0

    @staticmethod
    def _is_prime(n: int) -> bool:
        if n < 2:
            return False
        if n % 2 == 0:
            return n == 2
        limit = int(math.isqrt(n))
        for d in range(3, limit + 1, 2):
            if n % d == 0:
                return False
        return True

    @property
    def result_size(self) -> int:
        return 1


class MonteCarloEstimate(TaskFunction):
    """Seed-indexed Monte-Carlo π estimation work units.

    Work unit ``x`` is a seed; the participant draws ``n_samples``
    PRF points in the unit square and reports the hit count for the
    quarter circle, encoded as 4 bytes.  Deterministic given the seed,
    which is what makes it verifiable at all (the Szajda et al. [10]
    prerequisite).  ``q`` follows the binomial's mode probability.
    """

    one_way = False

    def __init__(self, n_samples: int = 64, cost: float = 10.0) -> None:
        if n_samples < 1:
            raise TaskError(f"n_samples must be >= 1, got {n_samples}")
        self.n_samples = n_samples
        self.cost = cost
        # Mode of Binomial(n, π/4): guessing the single likeliest count.
        p = math.pi / 4.0
        mode = int((self.n_samples + 1) * p)
        self.guess_success_probability = float(
            math.comb(self.n_samples, mode) * p**mode * (1 - p) ** (self.n_samples - mode)
        )

    def evaluate(self, x: Any) -> bytes:
        seed = _encode_int(x)
        hits = 0
        for i in range(self.n_samples):
            tag = i.to_bytes(4, "big")
            u = prf_float(b"mc-x", seed, tag)
            v = prf_float(b"mc-y", seed, tag)
            if u * u + v * v <= 1.0:
                hits += 1
        return struct.pack(">I", hits)

    @property
    def result_size(self) -> int:
        return 4


class FactoringTask(TaskFunction):
    """Semiprime factoring: expensive to compute, trivial to verify.

    §3.1's asymmetric-verification remark made concrete: "factoring
    large numbers is an expensive computation, but verifying the
    factoring results is trivial."  Input ``k`` indexes a deterministic
    semiprime ``N_k = p·q`` (both primes drawn PRF-uniformly from
    ``[2^(bits−1), 2^bits)``); the result is the smaller factor.
    :meth:`verify` multiplies and divides instead of re-factoring, so
    ``verify_cost ≪ cost`` — the supervisor's per-sample cost in CBS
    drops accordingly (covered by the E7 comparison and unit tests).

    ``bits`` is kept small (trial division must actually run); the
    *cost model* carries the expensive-to-compute semantics.
    """

    one_way = False
    guess_success_probability = 0.0  # guessing a factor ≈ impossible

    def __init__(self, bits: int = 14, cost: float = 500.0,
                 verify_cost: float = 1.0,
                 seed: bytes = b"repro/factoring") -> None:
        if not 6 <= bits <= 20:
            raise TaskError(f"bits must be in [6, 20], got {bits}")
        self.bits = bits
        self.cost = cost
        self.verify_cost = verify_cost
        self.seed = seed

    def _prime_near(self, tag: bytes, k: int) -> int:
        lo = 1 << (self.bits - 1)
        candidate = lo + prf_float(self.seed, tag, _encode_int(k)) * lo
        candidate = int(candidate) | 1
        while not _is_prime(candidate):
            candidate += 2
        return candidate

    def semiprime(self, k: int) -> int:
        """The public challenge number ``N_k``."""
        return self._prime_near(b"p", int(k)) * self._prime_near(b"q", int(k))

    def evaluate(self, x: Any) -> bytes:
        n = self.semiprime(int(x))
        # Trial division — genuinely the expensive step.
        f = 3
        while f * f <= n:
            if n % f == 0:
                return f.to_bytes(8, "big")
            f += 2
        raise TaskError(f"internal error: {n} did not factor")  # pragma: no cover

    def verify(self, x: Any, claimed: bytes) -> bool:
        if len(claimed) != 8:
            return False
        factor = int.from_bytes(claimed, "big")
        n = self.semiprime(int(x))
        if factor <= 1 or factor >= n or n % factor != 0:
            return False
        # The canonical answer is the *smaller* prime factor.
        return factor == min(factor, n // factor) and _is_prime(factor)

    @property
    def result_size(self) -> int:
        return 8


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    d = 3
    while d * d <= n:
        if n % d == 0:
            return False
        d += 2
    return True


class OptimizationSearch(TaskFunction):
    """Grid-cell objective evaluation for distributed optimization.

    Each input indexes a cell of the search lattice; ``f`` returns the
    objective value at the cell's centre, quantized to ``resolution``
    levels (4 bytes).  The landscape is a deterministic sum of PRF-
    placed Gaussian wells, so there exist genuine optima the hardening
    baseline [10] can plant and check.
    """

    one_way = False

    def __init__(
        self,
        landscape_seed: bytes = b"repro/opt",
        n_wells: int = 8,
        resolution: int = 4096,
        grid_side: int = 1 << 12,
        cost: float = 25.0,
    ) -> None:
        if n_wells < 1:
            raise TaskError(f"n_wells must be >= 1, got {n_wells}")
        if resolution < 2:
            raise TaskError(f"resolution must be >= 2, got {resolution}")
        self.landscape_seed = landscape_seed
        self.resolution = resolution
        self.grid_side = grid_side
        self.cost = cost
        self.guess_success_probability = 1.0 / resolution
        self.wells = [
            (
                prf_float(landscape_seed, b"wx", i.to_bytes(4, "big")),
                prf_float(landscape_seed, b"wy", i.to_bytes(4, "big")),
                0.05 + 0.2 * prf_float(landscape_seed, b"ws", i.to_bytes(4, "big")),
            )
            for i in range(n_wells)
        ]

    def cell_center(self, x: Any) -> tuple[float, float]:
        """Map cell index to its centre in the unit square."""
        index = int(x)
        row, col = divmod(index % (self.grid_side**2), self.grid_side)
        return ((col + 0.5) / self.grid_side, (row + 0.5) / self.grid_side)

    def objective(self, x: Any) -> float:
        """Continuous objective (lower is better) at the cell centre."""
        cx, cy = self.cell_center(x)
        value = 1.0
        for wx, wy, width in self.wells:
            d2 = (cx - wx) ** 2 + (cy - wy) ** 2
            value -= math.exp(-d2 / (2.0 * width**2))
        return value

    def evaluate(self, x: Any) -> bytes:
        # Objective is in (-n_wells, 1]; normalize to [0, 1) then quantize.
        raw = self.objective(x)
        lo = 1.0 - len(self.wells)
        norm = (raw - lo) / (1.0 - lo + 1e-12)
        norm = min(max(norm, 0.0), 1.0 - 1e-12)
        return struct.pack(">I", int(norm * self.resolution))

    @property
    def result_size(self) -> int:
        return 4
