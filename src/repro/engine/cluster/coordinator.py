"""Cluster coordinator: the distributed :class:`Executor` backend.

:class:`ClusterExecutor` satisfies the engine protocol — ``map(fn,
items)`` with results in submission order — by sharding typed
``(fn, args, kwargs)`` job specs (:mod:`repro.service.jobcodec`:
registered callable names plus schema-checked arguments — data, never
code) across remote worker daemons
(:mod:`repro.engine.cluster.worker`) over the service layer's
length-prefixed frame protocol.  Call sites do not change: anything
that dispatches through :func:`repro.engine.executor.get_executor`
(``GridSimulation``, ``analysis.montecarlo``, ``analysis.sweep``, the
supervisor service, every ``--engine`` CLI flag) gains multi-host
execution by naming ``"cluster"``.

Topology and scheduling:

* the coordinator binds a TCP listener; workers dial in and register
  with a ``hello`` frame (id, capacity, wire version);
* each worker gets a **bounded in-flight window** (capacity ×
  ``window_depth`` chunks): a slow worker fills its window and simply
  stops receiving work — backpressure, not starvation of the fast
  workers;
* scheduling is **throughput-adaptive**: every completed chunk updates
  the worker's EWMA jobs/sec, and the next chunk sent to that worker
  is sized so it takes roughly ``chunk_target_s`` seconds, clamped to
  ``[chunk_min, chunk_max]`` and to a fair share of the remaining
  queue.  Fast workers get bigger chunks, stragglers get smaller ones
  — resizing regroups jobs at the transport layer only, so results
  stay byte-identical to serial no matter how the chunks fall;
* liveness is EOF *plus* heartbeats: a SIGKILLed worker drops its
  socket and is detected immediately; a silently wedged one trips the
  heartbeat timeout.  Either way its in-flight chunks are disbanded
  and their jobs requeued (bounded by ``max_attempts`` per job);
* ``job_timeout`` (optional) additionally requeues chunks stuck on a
  *live but slow* worker — the budget scales with the chunk's job
  count, so a big chunk is not punished for being big.  The race
  between the slow original and the reassigned copy is settled per
  job, exactly once: the **first arriving result wins** (every job is
  a pure function of its payload, so the copies are byte-identical)
  and the loser's duplicate is dropped cleanly — never double-set,
  never double-requeued, even when the loser dies mid-stream;
* large results arrive as ``result_part`` sub-frames closed by a
  ``result_end``; the coordinator reassembles the ordered outcome
  list per chunk and requeues cleanly if the worker dies mid-stream;
* results are reassembled in submission order, which is what makes a
  cluster population run produce byte-identical
  :class:`~repro.grid.report.DetectionReport`'s to the serial backend.

Deployment modes: **spawn-local** (default — the coordinator launches
``workers`` daemon subprocesses on this host; benches, tests, and the
CLI's ``--engine cluster --cluster-workers N``) and **external**
(``spawn_local=False`` — bind a fixed port and let operators start
workers on other hosts with ``python -m repro.cli worker``;
``min_workers`` optionally blocks the first dispatch until that many
have registered).

The coordinator's event loop runs on a dedicated background thread, so
the synchronous ``map()`` contract holds whether the caller is a plain
script, a pytest process, or the supervisor service (whose asyncio
loop reaches the cluster through :attr:`ClusterExecutor.futures_pool`).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import logging
import math
import os
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Sequence

from repro.engine.executor import Executor, _metered_map, default_workers
from repro.exceptions import CodecError, EngineError, ReproError
from repro.net.transport import SecurityConfig
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import SIZE_BUCKETS, MetricsRegistry, log_buckets
from repro.obs.spans import Span, SpanBuffer, default_span_buffer
from repro.obs.trace import bind_trace, current_trace, new_span_id
from repro.service.codec import (
    COMPAT_CLUSTER_WIRE_VERSIONS,
    CLUSTER_WIRE_VERSION,
    DEFAULT_STREAM_THRESHOLD_BYTES,
    MAX_CLUSTER_FRAME_BYTES,
    MAX_CLUSTER_PAYLOAD_BYTES,
    ByeFrame,
    HeartbeatFrame,
    JobFrame,
    ResultEndFrame,
    ResultFrame,
    ResultPartFrame,
    WorkerHello,
    decode_cluster_outcomes,
    decode_cluster_payload,
    encode_cluster_chunk,
    read_frame,
    write_frame,
)
from repro.service.jobcodec import encode_job

#: Seconds between liveness beacons requested from spawned workers.
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: Seconds of silence (no frame, no heartbeat) before a worker is
#: declared dead.  Generous relative to the beacon interval: EOF
#: detection catches crashes instantly, this only fences network
#: half-death.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0

#: Smallest chunk the adaptive scheduler will send.  One job is the
#: probing size: an unmeasured (or demoted) worker costs at most one
#: job's latency to size up.
DEFAULT_CHUNK_MIN = 1

#: Largest chunk the adaptive scheduler will send.  Bounds both the
#: work stranded on a worker that dies and the result bytes one frame
#: or stream has to carry.
DEFAULT_CHUNK_MAX = 32

#: Target seconds of work per chunk: a worker's next chunk is sized as
#: ``ewma_rate * chunk_target_s`` jobs (clamped).  Small enough to
#: re-observe throughput frequently, large enough to amortize framing.
DEFAULT_CHUNK_TARGET_S = 0.25

#: EWMA smoothing for per-worker throughput samples.  0.4 weights the
#: newest chunk heavily (workers change speed when co-tenants arrive)
#: without letting one noisy sample whipsaw the chunk size.
EWMA_ALPHA = 0.4

#: Byte budget for one outgoing chunk payload: leave chunk-envelope
#: headroom under the hard payload cap so regrouped jobs always frame.
_CHUNK_BYTE_BUDGET = MAX_CLUSTER_PAYLOAD_BYTES // 2

#: Chunk-size histogram buckets: chunk job counts are small powers-ish.
_CHUNK_JOBS_BUCKETS = tuple(float(1 << i) for i in range(11))

_log = get_logger("cluster.coordinator")


class _Job:
    """One submitted call: payload, caller future, retry accounting.

    ``trace_id`` is the population-level trace the submitting caller
    had bound (if any); chunks built from this job inherit it.
    """

    __slots__ = ("job_id", "payload", "future", "attempts", "trace_id")

    def __init__(
        self,
        job_id: int,
        payload: bytes,
        future: concurrent.futures.Future,
        trace_id: str | None = None,
    ) -> None:
        self.job_id = job_id
        self.payload = payload
        self.future = future
        self.attempts = 0
        self.trace_id = trace_id


class _Chunk:
    """One wire assignment: an ordered group of jobs on one worker.

    Chunk ids are never reused, and every job resolves its caller
    future exactly once no matter how many assignments raced: the
    first arriving copy of a job's result wins (all copies are
    byte-identical — jobs are pure functions of their payload), and
    any later duplicate is dropped exactly once, cleanly.

    ``requeued`` marks a chunk whose jobs went back to the queue after
    a ``job_timeout`` while its worker is still *live*: the chunk
    lingers as a zombie so the slow worker's late result can still win
    the race for any job the reassigned copy has not finished — and is
    retired the moment its worker's link dies (no result can arrive on
    a dead link) or all its jobs are resolved.
    """

    __slots__ = ("chunk_id", "job_ids", "worker_id", "started_at",
                 "entries", "parts_received", "requeued",
                 "trace_id", "span_id")

    def __init__(
        self,
        chunk_id: int,
        job_ids: tuple[int, ...],
        worker_id: str,
        started_at: float,
        trace_id: str | None = None,
        span_id: str | None = None,
    ) -> None:
        self.chunk_id = chunk_id
        self.job_ids = job_ids
        self.worker_id = worker_id
        self.started_at = started_at
        self.entries: list[tuple[bool, bytes]] = []  # streamed outcomes
        self.parts_received = 0
        self.requeued = False
        # Trace of the population this chunk serves; span minted per
        # chunk at dispatch.  Ride the JobFrame so the worker's records
        # line up with the coordinator's.
        self.trace_id = trace_id
        self.span_id = span_id


class _WorkerLink:
    """Coordinator-side state for one registered worker connection."""

    __slots__ = ("worker_id", "capacity", "writer", "window", "inflight",
                 "last_seen", "ewma_rate")

    def __init__(
        self, worker_id: str, capacity: int, writer, window: int, now: float
    ) -> None:
        self.worker_id = worker_id
        self.capacity = capacity
        self.writer = writer
        self.window = window
        self.inflight: set[int] = set()  # chunk ids
        self.last_seen = now
        self.ewma_rate: float | None = None  # jobs/sec, None until observed


class _Coordinator:
    """Loop-thread-only scheduling state.  Never touched off-loop."""

    def __init__(
        self,
        *,
        max_frame: int,
        window_depth: int,
        heartbeat_timeout: float,
        job_timeout: float | None,
        max_attempts: int,
        chunk_min: int,
        chunk_max: int,
        chunk_target_s: float,
        more_workers_expected: Callable[[], bool],
        security: SecurityConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        registry: MetricsRegistry | None = None,
        trace: bool = False,
        span_buffer: SpanBuffer | None = None,
    ) -> None:
        self.max_frame = max_frame
        self.security = security
        self.window_depth = window_depth
        self.heartbeat_timeout = heartbeat_timeout
        self.job_timeout = job_timeout
        self.max_attempts = max_attempts
        self.chunk_min = chunk_min
        self.chunk_max = chunk_max
        self.chunk_target_s = chunk_target_s
        self.more_workers_expected = more_workers_expected
        self.clock = clock

        self.workers: dict[str, _WorkerLink] = {}
        self.jobs: dict[int, _Job] = {}
        self.chunks: dict[int, _Chunk] = {}
        self.pending: deque[int] = deque()
        # job_id -> park time: jobs at max_attempts whose only hope is
        # a zombie chunk's late result (see _requeue_jobs).  Bounded by
        # one extra job_timeout of grace in _scan_timeouts.
        self.parked: dict[int, float] = {}
        # All scheduling counters live in the registry (one per
        # executor by default; the CLI injects the process-global one).
        # The cached label children keep the hot paths to one inc().
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        # Distributed span assembly: root coordinator.chunk spans plus
        # worker-exported spans land here for trace_get / trace view.
        self.span_buffer = (
            span_buffer if span_buffer is not None else default_span_buffer()
        )
        # Stall watchdog input: monotonic stamp of the last dispatch or
        # accepted chunk; the monitor turns it into a gauge while jobs
        # are pending so /readyz can flag a wedged cluster.
        self._last_progress = self.clock()
        jobs = self.registry.counter(
            "repro_cluster_jobs_total", "Cluster jobs, by event", ("event",)
        )
        chunks = self.registry.counter(
            "repro_cluster_chunks_total", "Cluster chunks, by event", ("event",)
        )
        self._m_jobs_completed = jobs.labels(event="completed")
        self._m_jobs_requeued = jobs.labels(event="requeued")
        self._m_chunks_completed = chunks.labels(event="completed")
        self._m_chunks_requeued = chunks.labels(event="requeued")
        self._m_result_parts = self.registry.counter(
            "repro_cluster_result_parts_total", "Streamed result sub-frames"
        )
        self._m_workers_lost = self.registry.counter(
            "repro_cluster_workers_lost_total",
            "Workers dropped (EOF, heartbeat timeout, protocol violation)",
        )
        self._m_auth_rejects = self.registry.counter(
            "repro_auth_failures_total",
            "Rejected authentication handshakes, by plane",
            ("plane",),
        ).labels(plane="cluster")
        self._m_errors = self.registry.counter(
            "repro_errors_total",
            "Errors that dropped a connection or request, by site",
            ("site",),
        )
        self._m_workers_live = self.registry.gauge(
            "repro_cluster_workers_live", "Workers currently registered"
        )
        self._m_chunk_jobs = self.registry.histogram(
            "repro_cluster_chunk_jobs",
            "Jobs per dispatched chunk (adaptive sizing)",
            buckets=_CHUNK_JOBS_BUCKETS,
        )
        self._m_dispatch_latency = self.registry.histogram(
            "repro_cluster_chunk_seconds",
            "Wall-clock from chunk dispatch to accepted result",
            buckets=log_buckets(1e-3, 100.0),
        )
        self._m_worker_rate = self.registry.gauge(
            "repro_cluster_worker_rate_jobs_per_s",
            "Per-worker EWMA throughput",
            ("worker",),
        )
        self._m_stall = self.registry.gauge(
            "repro_cluster_stall_seconds",
            "Seconds since the coordinator last dispatched or accepted "
            "a chunk while jobs were pending (0 when idle or flowing)",
        )
        # The coordinator's view of the typed job plane: spec bytes at
        # submission, plus the cluster-wide scheme-cache totals summed
        # from the ``ch``/``cm`` deltas workers ship on result frames
        # (workers count their own activity under plane="worker" on
        # their own registries — distinct labels, no double counting
        # when both ends share a process).
        self._m_job_bytes = self.registry.histogram(
            "repro_job_bytes",
            "Encoded job-spec payload bytes, by plane",
            ("plane",),
            buckets=SIZE_BUCKETS,
        ).labels(plane="coordinator")
        self._m_cache_hits = self.registry.counter(
            "repro_scheme_cache_hits_total",
            "Scheme-cache hits (schemes reused across chunks), by plane",
            ("plane",),
        ).labels(plane="coordinator")
        self._m_cache_misses = self.registry.counter(
            "repro_scheme_cache_misses_total",
            "Scheme-cache misses (schemes constructed), by plane",
            ("plane",),
        ).labels(plane="coordinator")
        self._next_job_id = 0
        self._next_chunk_id = 0
        self._server: asyncio.base_events.Server | None = None
        self._monitor_task: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._send_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Counter views (the pre-registry int attributes, now read-only)
    # ------------------------------------------------------------------

    @property
    def jobs_completed(self) -> int:
        return int(self._m_jobs_completed.value)

    @property
    def jobs_requeued(self) -> int:
        return int(self._m_jobs_requeued.value)

    @property
    def chunks_completed(self) -> int:
        return int(self._m_chunks_completed.value)

    @property
    def chunks_requeued(self) -> int:
        return int(self._m_chunks_requeued.value)

    @property
    def result_parts(self) -> int:
        return int(self._m_result_parts.value)

    @property
    def workers_lost(self) -> int:
        return int(self._m_workers_lost.value)

    @property
    def auth_rejects(self) -> int:
        return int(self._m_auth_rejects.value)

    @property
    def scheme_cache_hits(self) -> int:
        return int(self._m_cache_hits.value)

    @property
    def scheme_cache_misses(self) -> int:
        return int(self._m_cache_misses.value)

    # ------------------------------------------------------------------
    # Lifecycle (awaited from the loop thread)
    # ------------------------------------------------------------------

    async def start(self, host: str, port: int) -> tuple[str, int]:
        ssl_context = (
            self.security.server_ssl_context()
            if self.security is not None
            else None
        )
        self._server = await asyncio.start_server(
            self._spawn_connection, host, port, ssl=ssl_context
        )
        self._monitor_task = asyncio.ensure_future(self._monitor())
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def stop(self) -> None:
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._monitor_task
            self._monitor_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for link in list(self.workers.values()):
            with contextlib.suppress(Exception):
                await write_frame(
                    link.writer,
                    ByeFrame(reason="coordinator shutdown"),
                    max_frame=self.max_frame,
                )
            with contextlib.suppress(Exception):
                link.writer.close()
        self.workers.clear()
        for task in list(self._conn_tasks) + list(self._send_tasks):
            task.cancel()
        for task in list(self._conn_tasks) + list(self._send_tasks):
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self._conn_tasks.clear()
        self._send_tasks.clear()
        self._fail_all(EngineError("cluster executor closed"))

    def _fail_all(self, exc: Exception) -> None:
        for job in list(self.jobs.values()):
            if not job.future.done():
                job.future.set_exception(exc)
        self.jobs.clear()
        self.chunks.clear()
        self.pending.clear()
        self.parked.clear()

    # ------------------------------------------------------------------
    # Submission (scheduled onto the loop via call_soon_threadsafe)
    # ------------------------------------------------------------------

    def submit(
        self,
        payload: bytes,
        future: concurrent.futures.Future,
        trace_id: str | None = None,
    ) -> None:
        job_id = self._next_job_id
        self._next_job_id += 1
        self.jobs[job_id] = _Job(job_id, payload, future, trace_id=trace_id)
        self.pending.append(job_id)
        self._pump()

    # ------------------------------------------------------------------
    # Adaptive scheduling
    # ------------------------------------------------------------------

    def _observe_rate(self, link: _WorkerLink, sample: float) -> None:
        """Fold one throughput sample (jobs/sec) into the worker EWMA."""
        if link.ewma_rate is None:
            link.ewma_rate = sample
        else:
            link.ewma_rate = (
                EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * link.ewma_rate
            )
        self._m_worker_rate.labels(worker=link.worker_id).set(link.ewma_rate)

    def _chunk_size(self, link: _WorkerLink) -> int:
        """How many jobs the next chunk for this worker should carry.

        Unmeasured workers probe at ``chunk_min``; measured ones aim
        for ``chunk_target_s`` seconds of work.  The fair-share clamp
        (remaining queue / live workers) keeps one fast worker from
        swallowing the whole tail while its peers idle.
        """
        if link.ewma_rate is None:
            size = self.chunk_min
        else:
            size = int(link.ewma_rate * self.chunk_target_s)
        size = max(self.chunk_min, min(self.chunk_max, size))
        fair = math.ceil(len(self.pending) / max(1, len(self.workers)))
        return max(1, min(size, fair))

    def _take_jobs(self, limit: int) -> list[_Job]:
        """Pop up to ``limit`` live pending jobs (byte-budget bounded)."""
        taken: list[_Job] = []
        total_bytes = 0
        while self.pending and len(taken) < limit:
            if taken and total_bytes + len(
                self.jobs.get(self.pending[0], _EMPTY_JOB).payload
            ) > _CHUNK_BYTE_BUDGET:
                break
            job_id = self.pending.popleft()
            job = self.jobs.get(job_id)
            if job is None:
                continue
            if job.future.done():
                # Cancelled by the caller: forget it.
                del self.jobs[job_id]
                continue
            taken.append(job)
            total_bytes += len(job.payload)
        return taken

    def _pump(self) -> None:
        """Assign pending jobs to workers with free window slots."""
        progress = True
        while self.pending and progress:
            progress = False
            for link in list(self.workers.values()):
                if not self.pending:
                    break
                if len(link.inflight) >= link.window:
                    continue
                chunk_jobs = self._take_jobs(self._chunk_size(link))
                if not chunk_jobs:
                    continue
                now = self.clock()
                chunk_id = self._next_chunk_id
                self._next_chunk_id += 1
                for job in chunk_jobs:
                    job.attempts += 1
                trace_id = next(
                    (j.trace_id for j in chunk_jobs if j.trace_id), None
                )
                span_id = (
                    new_span_id()
                    if (trace_id is not None or self.trace)
                    else None
                )
                chunk = _Chunk(
                    chunk_id,
                    tuple(job.job_id for job in chunk_jobs),
                    link.worker_id,
                    now,
                    trace_id=trace_id,
                    span_id=span_id,
                )
                self.chunks[chunk_id] = chunk
                link.inflight.add(chunk_id)
                self._last_progress = now
                self._m_chunk_jobs.observe(len(chunk_jobs))
                with bind_trace(chunk.trace_id, chunk.span_id):
                    log_event(
                        _log,
                        "chunk_dispatched",
                        level=logging.DEBUG,
                        chunk=chunk_id,
                        worker=link.worker_id,
                        jobs=len(chunk_jobs),
                        attempt=max(j.attempts for j in chunk_jobs),
                    )
                payloads = tuple(job.payload for job in chunk_jobs)
                task = asyncio.ensure_future(
                    self._send_chunk(link, chunk, payloads)
                )
                self._send_tasks.add(task)
                task.add_done_callback(self._send_tasks.discard)
                progress = True

    async def _send_chunk(
        self, link: _WorkerLink, chunk: _Chunk, payloads: tuple[bytes, ...]
    ) -> None:
        try:
            frame = JobFrame(
                job_id=chunk.chunk_id,
                payload=encode_cluster_chunk(payloads),
                trace_id=chunk.trace_id,
                span_id=chunk.span_id,
            )
        except CodecError as exc:
            # The byte budget makes this unreachable in practice; if a
            # pathological payload set slips through anyway, fail those
            # jobs loudly rather than punishing the worker.
            self._retire_chunk(link, chunk.chunk_id)
            self._fail_jobs(
                chunk.job_ids, EngineError(f"chunk does not frame: {exc}")
            )
            return
        try:
            await write_frame(link.writer, frame, max_frame=self.max_frame)
        except Exception as exc:
            # The link is dead mid-write; _drop_worker requeues the
            # chunk.  Counted and logged — a worker vanishing on the
            # send path must be distinguishable from a scheduler bug.
            self._m_errors.labels(site="cluster.chunk_send").inc()
            log_event(
                _log,
                "chunk_send_failed",
                level=logging.WARNING,
                worker=link.worker_id,
                chunk=chunk.chunk_id,
                error=str(exc),
            )
            self._drop_worker(link)

    # ------------------------------------------------------------------
    # Worker connections
    # ------------------------------------------------------------------

    def _spawn_connection(self, reader, writer) -> None:
        task = asyncio.ensure_future(self._serve_worker(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _serve_worker(self, reader, writer) -> None:
        link: _WorkerLink | None = None
        try:
            if self.security is not None:
                # The repro.net HMAC handshake gates the job plane: a
                # peer without the shared secret is rejected here,
                # before any envelope — frame JSON or typed payload —
                # is decoded.
                try:
                    await self.security.authenticate_inbound(reader, writer)
                except (ReproError, ConnectionError, OSError) as exc:
                    self._m_auth_rejects.inc()
                    log_event(
                        _log,
                        "auth_failure",
                        level=logging.WARNING,
                        plane="cluster",
                        error=str(exc),
                    )
                    return
            frame = await read_frame(reader, max_frame=self.max_frame)
            if not isinstance(frame, WorkerHello):
                with contextlib.suppress(Exception):
                    await write_frame(
                        writer,
                        ByeFrame(reason="expected hello"),
                        max_frame=self.max_frame,
                    )
                return
            if frame.version not in COMPAT_CLUSTER_WIRE_VERSIONS:
                # Version skew (e.g. a v4 pickle-era worker): refuse
                # loudly with the required version so the operator
                # knows exactly what to upgrade, then hang up before
                # any job bytes flow.
                log_event(
                    _log,
                    "worker_version_rejected",
                    level=logging.WARNING,
                    worker=frame.worker_id,
                    version=frame.version,
                )
                with contextlib.suppress(Exception):
                    await write_frame(
                        writer,
                        ByeFrame(
                            reason=(
                                f"incompatible cluster wire version "
                                f"{frame.version}: this coordinator "
                                f"speaks v{CLUSTER_WIRE_VERSION} (typed "
                                f"job codec); upgrade the worker"
                            )
                        ),
                        max_frame=self.max_frame,
                    )
                return
            if frame.worker_id in self.workers:
                with contextlib.suppress(Exception):
                    await write_frame(
                        writer,
                        ByeFrame(reason=f"duplicate id {frame.worker_id!r}"),
                        max_frame=self.max_frame,
                    )
                return
            link = _WorkerLink(
                worker_id=frame.worker_id,
                capacity=frame.capacity,
                writer=writer,
                window=max(1, frame.capacity) * self.window_depth,
                now=self.clock(),
            )
            self.workers[link.worker_id] = link
            self._m_workers_live.set(len(self.workers))
            log_event(
                _log,
                "worker_registered",
                worker=link.worker_id,
                capacity=link.capacity,
            )
            self._pump()
            while True:
                frame = await read_frame(reader, max_frame=self.max_frame)
                if frame is None or isinstance(frame, ByeFrame):
                    return
                link.last_seen = self.clock()
                if isinstance(frame, ResultFrame):
                    self._on_result(link, frame)
                elif isinstance(frame, ResultPartFrame):
                    self._on_result_part(link, frame)
                elif isinstance(frame, ResultEndFrame):
                    self._on_result_end(link, frame)
                elif isinstance(frame, HeartbeatFrame):
                    pass
                # Anything else from a registered worker is ignored.
                if self.workers.get(link.worker_id) is not link:
                    return  # dropped for a protocol violation mid-loop
        except (ReproError, ConnectionError, OSError) as exc:
            # A misbehaving/dying worker never takes the pool down —
            # but the drop is counted and logged, never silent.
            self._m_errors.labels(site="cluster.worker_conn").inc()
            log_event(
                _log,
                "worker_connection_error",
                level=logging.WARNING,
                worker=link.worker_id if link is not None else None,
                error=str(exc),
            )
        finally:
            if link is not None:
                self._drop_worker(link)
            with contextlib.suppress(Exception):
                writer.close()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # Results (single-frame and streamed)
    # ------------------------------------------------------------------

    def _observe_cache(self, hits: int, misses: int) -> None:
        """Fold one result frame's worker cache deltas into the totals.

        Counted even for zombie/duplicate chunks — the construction
        (or reuse) really happened on the worker either way.
        """
        if hits:
            self._m_cache_hits.inc(hits)
        if misses:
            self._m_cache_misses.inc(misses)

    def _on_result(self, link: _WorkerLink, frame: ResultFrame) -> None:
        link.inflight.discard(frame.job_id)
        self._observe_cache(frame.cache_hits, frame.cache_misses)
        chunk = self.chunks.pop(frame.job_id, None)
        if chunk is None:
            # The chunk id was retired (its worker was declared dead
            # and the jobs rehomed, or it already delivered) — this
            # straggler duplicate is dropped here, exactly once.
            self._pump()
            return
        if not frame.ok:
            if chunk.requeued:
                # A zombie chunk erroring changes nothing: its jobs
                # were requeued at timeout and will be (or were)
                # delivered by the reassigned copies.
                self._pump()
                return
            try:
                message = decode_cluster_payload(frame.payload)
            except CodecError:
                message = "<undecodable error payload>"
            self._fail_jobs(
                chunk.job_ids,
                EngineError(
                    f"remote chunk {frame.job_id} failed on "
                    f"{link.worker_id}: {message}"
                ),
            )
            self._pump()
            return
        try:
            entries = decode_cluster_outcomes(frame.payload)
        except CodecError as exc:
            if not chunk.requeued:
                self._fail_jobs(
                    chunk.job_ids,
                    EngineError(
                        f"undecodable result from {link.worker_id}: {exc}"
                    ),
                )
            self._pump()
            return
        self._complete_chunk(link, chunk, entries, frame.spans)
        self._pump()

    def _on_result_part(
        self, link: _WorkerLink, frame: ResultPartFrame
    ) -> None:
        chunk = self.chunks.get(frame.job_id)
        if chunk is None:
            return  # late stream for a retired chunk: drop silently
        if frame.seq != chunk.parts_received:
            # The transport is ordered, so a gap can only be a worker
            # bug; its chunks are requeued elsewhere.
            self._drop_worker(link)
            return
        try:
            entries = decode_cluster_outcomes(frame.payload)
        except CodecError:
            self._drop_worker(link)
            return
        if len(chunk.entries) + len(entries) > len(chunk.job_ids):
            self._drop_worker(link)  # more outcomes than jobs: nonsense
            return
        chunk.parts_received += 1
        self._m_result_parts.inc()
        chunk.entries.extend(entries)

    def _on_result_end(
        self, link: _WorkerLink, frame: ResultEndFrame
    ) -> None:
        link.inflight.discard(frame.job_id)
        self._observe_cache(frame.cache_hits, frame.cache_misses)
        chunk = self.chunks.pop(frame.job_id, None)
        if chunk is None:
            self._pump()
            return
        if (
            frame.parts != chunk.parts_received
            or len(chunk.entries) != len(chunk.job_ids)
        ):
            # Incomplete stream ended: never partially accept — requeue
            # the whole chunk (attempts bound a deterministic repeat).
            # A zombie's jobs are already back in the queue.
            if not chunk.requeued:
                self._m_chunks_requeued.inc()
                with bind_trace(chunk.trace_id, chunk.span_id):
                    log_event(
                        _log,
                        "chunk_requeued",
                        level=logging.WARNING,
                        chunk=chunk.chunk_id,
                        worker=link.worker_id,
                        reason="incomplete_stream",
                    )
                self._requeue_jobs(chunk.job_ids)
            self._pump()
            return
        self._complete_chunk(link, chunk, chunk.entries, frame.spans)
        self._pump()

    def _complete_chunk(
        self,
        link: _WorkerLink,
        chunk: _Chunk,
        entries: list[tuple[bool, bytes]],
        wire_spans: tuple = (),
    ) -> None:
        if len(entries) != len(chunk.job_ids):
            # A zombie's malformed answer changes nothing — its jobs
            # were requeued at timeout and the live copies own them.
            if not chunk.requeued:
                self._fail_jobs(
                    chunk.job_ids,
                    EngineError(
                        f"worker {link.worker_id} returned {len(entries)} "
                        f"outcomes for a {len(chunk.job_ids)}-job chunk"
                    ),
                )
            return
        elapsed = max(self.clock() - chunk.started_at, 1e-9)
        self._last_progress = self.clock()
        self._observe_rate(link, len(chunk.job_ids) / elapsed)
        self._m_chunks_completed.inc()
        self._m_dispatch_latency.observe(elapsed)
        with bind_trace(chunk.trace_id, chunk.span_id):
            log_event(
                _log,
                "chunk_completed",
                level=logging.DEBUG,
                chunk=chunk.chunk_id,
                worker=link.worker_id,
                jobs=len(chunk.job_ids),
                elapsed_s=round(elapsed, 6),
            )
        accept_span: Span | None = None
        if chunk.trace_id is not None and chunk.span_id is not None:
            # Root of the distributed waterfall: wall-clock bracket of
            # the whole dispatch→accept round trip, carrying the same
            # span id the worker parented its spans under.
            now_wall = time.time()
            self.span_buffer.add(
                Span(
                    trace_id=chunk.trace_id,
                    span_id=chunk.span_id,
                    parent_id=None,
                    name="coordinator.chunk",
                    start_wall=now_wall - elapsed,
                    start_mono=0.0,
                    end_wall=now_wall,
                    end_mono=elapsed,
                    attributes={
                        "worker": link.worker_id,
                        "chunk": chunk.chunk_id,
                        "jobs": len(chunk.job_ids),
                    },
                )
            )
            for wire in wire_spans:
                # Codec validation already bounded these; a decode
                # surprise must not fail the chunk's jobs.
                try:
                    self.span_buffer.add(Span.from_wire(wire))
                except (KeyError, TypeError, ValueError):
                    pass
            accept_span = Span.begin(
                "coordinator.accept",
                trace_id=chunk.trace_id,
                parent_id=chunk.span_id,
            )
        for job_id, (ok, payload) in zip(chunk.job_ids, entries):
            job = self.jobs.pop(job_id, None)
            if job is None or job.future.done():
                # Cancelled by the caller (a sibling failed mid-map):
                # drop the bookkeeping so a long-lived pool cannot
                # accumulate it.
                continue
            self._m_jobs_completed.inc()
            if ok:
                try:
                    result = decode_cluster_payload(payload)
                except CodecError as exc:
                    job.future.set_exception(
                        EngineError(
                            f"undecodable result from {link.worker_id}: {exc}"
                        )
                    )
                else:
                    job.future.set_result(result)
            else:
                try:
                    message = decode_cluster_payload(payload)
                except CodecError:
                    message = "<undecodable error payload>"
                job.future.set_exception(
                    EngineError(
                        f"remote job {job_id} failed on "
                        f"{link.worker_id}: {message}"
                    )
                )
        if accept_span is not None:
            self.span_buffer.add(accept_span.finish(jobs=len(chunk.job_ids)))

    def _fail_jobs(self, job_ids: Sequence[int], exc: Exception) -> None:
        for job_id in job_ids:
            job = self.jobs.pop(job_id, None)
            if job is not None and not job.future.done():
                job.future.set_exception(exc)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    def _retire_chunk(self, link: _WorkerLink, chunk_id: int) -> None:
        link.inflight.discard(chunk_id)
        self.chunks.pop(chunk_id, None)

    def _drop_worker(self, link: _WorkerLink) -> None:
        if self.workers.get(link.worker_id) is link:
            del self.workers[link.worker_id]
            self._m_workers_lost.inc()
            self._m_workers_live.set(len(self.workers))
            log_event(
                _log,
                "worker_lost",
                level=logging.WARNING,
                worker=link.worker_id,
                inflight_chunks=len(link.inflight),
            )
        with contextlib.suppress(Exception):
            link.writer.close()
        # Sorted so jobs re-enter the queue in submission order — the
        # scheduler keeps its front-of-queue bias after any failure.
        for chunk_id in sorted(link.inflight):
            self._requeue_chunk(chunk_id)
        link.inflight.clear()
        # Zombie chunks (timed out earlier, jobs already requeued) can
        # never deliver on a dead link: retire their ids now, so any
        # frame claiming them later is dropped.
        for chunk in [
            c for c in self.chunks.values()
            if c.worker_id == link.worker_id
        ]:
            del self.chunks[chunk.chunk_id]
        self._pump()

    def _requeue_chunk(self, chunk_id: int) -> None:
        """Disband one in-flight chunk and retire its id for good."""
        chunk = self.chunks.pop(chunk_id, None)
        if chunk is None:
            return
        if chunk.requeued:
            return  # zombie: its jobs were already requeued at timeout
        self._m_chunks_requeued.inc()
        with bind_trace(chunk.trace_id, chunk.span_id):
            log_event(
                _log,
                "chunk_requeued",
                level=logging.WARNING,
                chunk=chunk.chunk_id,
                worker=chunk.worker_id,
                reason="worker_lost",
            )
        self._requeue_jobs(chunk.job_ids)

    def _requeue_jobs(self, job_ids: Sequence[int]) -> None:
        # appendleft in reverse keeps the jobs contiguous and ordered
        # at the front of the queue.
        for job_id in reversed(job_ids):
            job = self.jobs.get(job_id)
            if job is None:
                continue
            if job.future.done():  # cancelled by the caller: forget it
                del self.jobs[job_id]
                continue
            if job.attempts >= self.max_attempts:
                if self._zombie_holds(job_id):
                    # Every assignment is spent, but a timed-out copy
                    # is still running on a live worker and first
                    # result wins: park the job for one more grace
                    # window (_scan_timeouts) rather than failing it
                    # while an answer may be seconds away.
                    self.parked.setdefault(job_id, self.clock())
                    continue
                del self.jobs[job_id]
                job.future.set_exception(
                    EngineError(
                        f"cluster job {job_id} failed after "
                        f"{job.attempts} assignments"
                    )
                )
                continue
            self._m_jobs_requeued.inc()
            self.pending.appendleft(job_id)

    def _zombie_holds(self, job_id: int) -> bool:
        """True if a live worker's zombie chunk still carries this job.

        Such a chunk timed out but its link is up, so its late result
        can still resolve the job (first result wins).
        """
        return any(
            chunk.requeued
            and chunk.worker_id in self.workers
            and job_id in chunk.job_ids
            for chunk in self.chunks.values()
        )

    def _scan_timeouts(self, now: float) -> None:
        """Requeue chunks stuck past their (size-scaled) job timeout.

        The timed-out chunk's jobs go back to the queue, but the chunk
        itself lingers as a zombie (``requeued=True``) on its still-live
        worker: whichever copy of a job finishes first wins, so a slow
        worker that eventually answers is progress, not garbage.
        Zombies whose jobs have all been resolved elsewhere are GC'd
        here, so a long-lived pool cannot accumulate them.

        Parked jobs (out of assignments, waiting only on a zombie's
        late result) are swept last: they fail once their grace window
        expires or the last zombie holding them dies, so a hung worker
        still bounds every job at roughly
        ``(max_attempts + 1) * job_timeout``.
        """
        if self.job_timeout is None:
            return
        for chunk in list(self.chunks.values()):
            if chunk.requeued:
                if all(jid not in self.jobs for jid in chunk.job_ids):
                    link = self.workers.get(chunk.worker_id)
                    if link is not None:
                        link.inflight.discard(chunk.chunk_id)
                    del self.chunks[chunk.chunk_id]
                continue
            budget = self.job_timeout * max(1, len(chunk.job_ids))
            if now - chunk.started_at > budget:
                chunk.requeued = True
                self._m_chunks_requeued.inc()
                with bind_trace(chunk.trace_id, chunk.span_id):
                    log_event(
                        _log,
                        "chunk_requeued",
                        level=logging.WARNING,
                        chunk=chunk.chunk_id,
                        worker=chunk.worker_id,
                        reason="timeout",
                    )
                link = self.workers.get(chunk.worker_id)
                if link is not None:
                    link.inflight.discard(chunk.chunk_id)
                self._requeue_jobs(chunk.job_ids)
        for job_id, since in list(self.parked.items()):
            if job_id not in self.jobs:
                del self.parked[job_id]  # a zombie's copy won the race
                continue
            if (
                now - since <= self.job_timeout
                and self._zombie_holds(job_id)
            ):
                continue
            del self.parked[job_id]
            job = self.jobs.pop(job_id)
            if not job.future.done():
                job.future.set_exception(
                    EngineError(
                        f"cluster job {job_id} failed after "
                        f"{job.attempts} assignments"
                    )
                )

    async def _monitor(self) -> None:
        interval = min(self.heartbeat_timeout / 4.0, 0.25)
        while True:
            await asyncio.sleep(interval)
            now = self.clock()
            self._m_stall.set(
                max(now - self._last_progress, 0.0) if self.jobs else 0.0
            )
            for link in list(self.workers.values()):
                if now - link.last_seen > self.heartbeat_timeout:
                    self._drop_worker(link)
            self._scan_timeouts(now)
            if (
                self.jobs
                and not self.workers
                and not self.more_workers_expected()
            ):
                self._fail_all(
                    EngineError(
                        "all cluster workers are gone and none can rejoin"
                    )
                )
            self._pump()


#: Sentinel for :meth:`_Coordinator._take_jobs`'s byte-budget peek when
#: the head-of-queue job was already forgotten.
_EMPTY_JOB = _Job(-1, b"", concurrent.futures.Future())


class _ClusterFuturesPool(concurrent.futures.Executor):
    """``concurrent.futures`` facade over a :class:`ClusterExecutor`.

    This is the asyncio bridge: the supervisor service hands this to
    ``loop.run_in_executor``, so ``--engine cluster`` pushes
    verification jobs to remote workers with zero server changes.
    Lifetime belongs to the owning executor — ``shutdown`` is a no-op.
    """

    def __init__(self, owner: "ClusterExecutor") -> None:
        self._owner = owner

    def submit(self, fn, /, *args, **kwargs) -> concurrent.futures.Future:
        return self._owner.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        pass  # the ClusterExecutor owns the worker pool lifecycle


class ClusterExecutor(Executor):
    """Distributed engine backend over remote worker daemons.

    ``workers`` is the number of *local worker daemons* to spawn in
    the default self-hosting mode (tests, benches, ``--engine cluster
    --cluster-workers N``).  With ``spawn_local=False`` the coordinator
    only binds ``host:port`` and serves whatever external workers
    register — start them with ``python -m repro.cli worker --host
    <coordinator> --port <port>`` on any number of hosts
    (``min_workers`` blocks the first dispatch until that many joined).

    Tuning surface (see README "Cluster tuning"): ``chunk_min`` /
    ``chunk_max`` bound the adaptive per-worker chunk size,
    ``chunk_target_s`` sets how many seconds of work one chunk should
    carry, and ``stream_threshold`` is the worker-side byte count above
    which chunk results stream as bounded ``result_part`` frames.

    Security surface (see README "Security model"): ``secret_file``
    enables the mutual repro.net HMAC handshake — every worker must
    prove the shared secret *before* any envelope is decoded — and
    ``tls_cert``/``tls_key`` put the listener behind TLS (external
    workers pin the cert with ``repro.cli worker --tls-cert``;
    spawn-local daemons inherit both flags automatically).  Jobs
    themselves are data, never code: :func:`repro.service.jobcodec.encode_job`
    only ships registered callable names with schema-checked
    arguments, so the port is not a code-execution surface even to an
    authenticated peer.  ``worker_preload`` names modules each
    spawn-local worker imports at startup — the registration hook for
    jobs defined outside the built-in registry (external workers use
    ``repro.cli worker --preload``).
    """

    name = "cluster"

    def __init__(
        self,
        workers: int | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_local: bool = True,
        min_workers: int | None = None,
        worker_engine: str = "serial",
        worker_processes: int | None = None,
        window_depth: int = 2,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        job_timeout: float | None = None,
        max_attempts: int = 3,
        chunk_min: int = DEFAULT_CHUNK_MIN,
        chunk_max: int = DEFAULT_CHUNK_MAX,
        chunk_target_s: float = DEFAULT_CHUNK_TARGET_S,
        stream_threshold: int = DEFAULT_STREAM_THRESHOLD_BYTES,
        secret_file: str | None = None,
        tls_cert: str | None = None,
        tls_key: str | None = None,
        startup_timeout: float = 60.0,
        max_frame: int = MAX_CLUSTER_FRAME_BYTES,
        registry: MetricsRegistry | None = None,
        trace: bool = False,
        span_buffer: SpanBuffer | None = None,
        worker_preload: Sequence[str] = (),
    ) -> None:
        if workers is not None and workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        if min_workers is not None and min_workers < 1:
            raise EngineError(f"min_workers must be >= 1, got {min_workers}")
        if window_depth < 1:
            raise EngineError(f"window_depth must be >= 1, got {window_depth}")
        if max_attempts < 1:
            raise EngineError(f"max_attempts must be >= 1, got {max_attempts}")
        if chunk_min < 1:
            raise EngineError(f"chunk_min must be >= 1, got {chunk_min}")
        if chunk_max < chunk_min:
            raise EngineError(
                f"chunk_max ({chunk_max}) must be >= chunk_min ({chunk_min})"
            )
        if chunk_target_s <= 0:
            raise EngineError(
                f"chunk_target_s must be positive, got {chunk_target_s}"
            )
        if stream_threshold < 1:
            raise EngineError(
                f"stream_threshold must be >= 1 byte, got {stream_threshold}"
            )
        if heartbeat_interval <= 0:
            raise EngineError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        if heartbeat_timeout <= 0:
            raise EngineError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        if job_timeout is not None and job_timeout <= 0:
            raise EngineError(
                f"job_timeout must be positive or None, got {job_timeout}"
            )
        if startup_timeout <= 0:
            raise EngineError(
                f"startup_timeout must be positive, got {startup_timeout}"
            )
        if worker_engine == "cluster":
            raise EngineError("cluster workers cannot use the cluster engine")
        # Security material (repro.net): shared-secret HMAC auth gates
        # every worker connection before the pickle plane; the TLS
        # cert/key pair encrypts the wire.  A TLS coordinator needs
        # both; workers pin the cert (no key) — validated here so a
        # misconfigured deployment fails at construction, not mid-map.
        if tls_cert is not None and tls_key is None:
            raise EngineError(
                "a TLS coordinator needs both tls_cert and tls_key"
            )
        try:
            self._security = SecurityConfig.from_options(
                secret_file=secret_file, tls_cert=tls_cert, tls_key=tls_key
            )
        except ReproError as exc:
            raise EngineError(f"bad cluster security options: {exc}") from exc
        self._secret_file = secret_file
        self._tls_cert = tls_cert
        self._n_local = workers or default_workers()
        if (
            spawn_local
            and min_workers is not None
            and min_workers > self._n_local
        ):
            raise EngineError(
                f"min_workers ({min_workers}) cannot exceed the "
                f"{self._n_local} spawn-local worker daemons — startup "
                "would stall until the timeout"
            )
        self._host = host
        self._port = port
        self._spawn_local = spawn_local
        self._min_workers = min_workers
        self._worker_engine = worker_engine
        self._worker_processes = worker_processes
        self._window_depth = window_depth
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._job_timeout = job_timeout
        self._max_attempts = max_attempts
        self._chunk_min = chunk_min
        self._chunk_max = chunk_max
        self._chunk_target_s = chunk_target_s
        self._stream_threshold = stream_threshold
        self._startup_timeout = startup_timeout
        self._max_frame = max_frame
        self._registry = registry
        self._trace = trace
        self._span_buffer = span_buffer
        self._worker_preload = tuple(worker_preload)
        for module_name in self._worker_preload:
            if not isinstance(module_name, str) or not module_name:
                raise EngineError(
                    "worker_preload entries must be non-empty module "
                    f"names, got {module_name!r}"
                )

        self._lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._co: _Coordinator | None = None
        self._procs: list[subprocess.Popen] = []
        self._address: tuple[str, int] | None = None
        # Built eagerly: the facade is a stateless handle on `self`, and
        # creating it lazily in the property was an unlocked check-then-
        # set race (two threads could each build one).
        self._pool_facade = _ClusterFuturesPool(self)
        self._closed = False

    # ------------------------------------------------------------------
    # Executor protocol
    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Total registered capacity (spawn target before startup)."""
        co = self._co
        if co is not None and co.workers:
            return max(1, sum(w.capacity for w in co.workers.values()))
        return max(1, self._n_local)

    @property
    def address(self) -> tuple[str, int] | None:
        """The coordinator's bound ``(host, port)`` once started."""
        return self._address

    @property
    def stats(self) -> dict:
        """Scheduling counters (jobs/chunks completed and requeued,
        streamed parts, worker churn, per-worker EWMA rates)."""
        co = self._co
        if co is None:
            return {"jobs_completed": 0, "jobs_requeued": 0,
                    "chunks_completed": 0, "chunks_requeued": 0,
                    "result_parts": 0, "workers_lost": 0,
                    "auth_rejects": 0,
                    "scheme_cache_hits": 0, "scheme_cache_misses": 0,
                    "workers_live": 0, "worker_rates": {}}
        return {
            "jobs_completed": co.jobs_completed,
            "jobs_requeued": co.jobs_requeued,
            "chunks_completed": co.chunks_completed,
            "chunks_requeued": co.chunks_requeued,
            "result_parts": co.result_parts,
            "workers_lost": co.workers_lost,
            "auth_rejects": co.auth_rejects,
            "scheme_cache_hits": co.scheme_cache_hits,
            "scheme_cache_misses": co.scheme_cache_misses,
            "workers_live": len(co.workers),
            "worker_rates": {
                link.worker_id: round(link.ewma_rate, 3)
                # list() snapshots atomically under the GIL: the loop
                # thread mutates co.workers while callers read stats.
                for link in list(co.workers.values())
                if link.ewma_rate is not None
            },
        }

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> list[Any]:
        if not items:
            if self._closed:
                raise EngineError("cluster executor already closed")
            return []
        with _metered_map(self.name, len(items)):
            futures = [self.submit(fn, item) for item in items]
            try:
                return [future.result() for future in futures]
            except BaseException:
                for future in futures:
                    future.cancel()
                raise

    def submit(self, fn, /, *args, **kwargs) -> concurrent.futures.Future:
        """Ship one call to the cluster; returns a waitable future.

        ``fn`` must be jobcodec-registered (and its arguments
        encodable): the job travels as a typed spec, not code, so an
        unregistered callable raises
        :class:`~repro.exceptions.CodecError` here — before anything
        touches the wire.
        """
        self._ensure_started()
        payload = encode_job(fn, args, kwargs)
        future: concurrent.futures.Future = concurrent.futures.Future()
        assert self._loop is not None and self._co is not None
        self._co._m_job_bytes.observe(len(payload))
        # The caller's trace context lives in this thread's contextvars;
        # the coordinator runs on its own loop thread, so the id is
        # captured here and handed over explicitly.
        self._loop.call_soon_threadsafe(
            self._co.submit, payload, future, current_trace()
        )
        return future

    @property
    def futures_pool(self) -> concurrent.futures.Executor:
        self._ensure_started()
        return self._pool_facade

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            loop, thread, co = self._loop, self._thread, self._co
            self._loop = self._thread = self._co = None
        if loop is not None and co is not None:
            with contextlib.suppress(Exception):
                asyncio.run_coroutine_threadsafe(co.stop(), loop).result(
                    timeout=10.0
                )
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=10.0)
            loop.close()
        # Detach the daemon list under the lock, then tear the
        # processes down unlocked — terminate/wait can block for
        # seconds and must not hold up concurrent callers.
        with self._lock:
            procs, self._procs = self._procs, []
        for proc in procs:
            with contextlib.suppress(Exception):
                proc.terminate()
        for proc in procs:
            with contextlib.suppress(Exception):
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    def _more_workers_expected(self) -> bool:
        """May a worker (re)join?  External pools: always.  Spawn-local
        pools: only while at least one daemon process is alive."""
        if not self._spawn_local:
            return True
        return any(proc.poll() is None for proc in self._procs)

    def _ensure_started(self) -> None:
        with self._lock:
            if self._closed:
                raise EngineError("cluster executor already closed")
            if self._thread is not None:
                return
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever, name="repro-cluster", daemon=True
            )
            thread.start()
            co = _Coordinator(
                max_frame=self._max_frame,
                window_depth=self._window_depth,
                heartbeat_timeout=self._heartbeat_timeout,
                job_timeout=self._job_timeout,
                max_attempts=self._max_attempts,
                chunk_min=self._chunk_min,
                chunk_max=self._chunk_max,
                chunk_target_s=self._chunk_target_s,
                more_workers_expected=self._more_workers_expected,
                security=self._security,
                registry=self._registry,
                trace=self._trace,
                span_buffer=self._span_buffer,
            )
            try:
                self._address = asyncio.run_coroutine_threadsafe(
                    co.start(self._host, self._port), loop
                ).result(timeout=self._startup_timeout)
            except Exception:
                loop.call_soon_threadsafe(loop.stop)
                thread.join(timeout=5.0)
                loop.close()
                raise
            self._loop, self._thread, self._co = loop, thread, co
        if self._spawn_local:
            self._spawn_workers()
            self._await_workers(self._min_workers or self._n_local)
        else:
            self._await_workers(self._min_workers or 1)

    def _spawn_workers(self) -> None:
        assert self._address is not None
        host, port = self._address
        env = dict(os.environ)
        # Workers must import repro exactly as this process does,
        # wherever pytest/CLI put it on sys.path.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        # A -c shim rather than -m: runpy re-executing worker.py under
        # a package whose __init__ already imported it would warn.
        entry = (
            "import sys; from repro.engine.cluster.worker import main; "
            "sys.exit(main(sys.argv[1:]))"
        )
        spawned: list[subprocess.Popen] = []
        for i in range(self._n_local):
            cmd = [
                sys.executable, "-c", entry,
                "--host", host,
                "--port", str(port),
                "--engine", self._worker_engine,
                "--id", f"local-{i}",
                "--heartbeat", str(self._heartbeat_interval),
                "--stream-threshold", str(self._stream_threshold),
            ]
            if self._worker_processes is not None:
                cmd += ["--workers", str(self._worker_processes)]
            for module_name in self._worker_preload:
                cmd += ["--preload", module_name]
            if self._secret_file is not None:
                cmd += ["--secret-file", self._secret_file]
            if self._tls_cert is not None:
                cmd += ["--tls-cert", self._tls_cert]
            if self._trace:
                cmd += ["--trace"]
            spawned.append(
                subprocess.Popen(
                    cmd, env=env, stdout=subprocess.DEVNULL
                )
            )
        # Publish in one locked step: close() snapshots _procs under
        # the same lock, so a concurrent teardown either sees all these
        # daemons or none — never a half-appended list.
        with self._lock:
            self._procs.extend(spawned)

    def _await_workers(self, target: int) -> None:
        """Block until ``target`` workers registered (or fail loudly)."""
        deadline = time.monotonic() + self._startup_timeout
        while True:
            co = self._co
            if co is None:
                raise EngineError("cluster executor closed during startup")
            if len(co.workers) >= target:
                return
            if self._spawn_local:
                dead = [p for p in self._procs if p.poll() is not None]
                if dead and len(co.workers) + sum(
                    1 for p in self._procs if p.poll() is None
                ) < target:
                    raise EngineError(
                        f"cluster worker exited with code "
                        f"{dead[0].returncode} before registering"
                    )
            if time.monotonic() >= deadline:
                raise EngineError(
                    f"only {len(co.workers)} of {target} cluster workers "
                    f"registered within {self._startup_timeout}s"
                )
            time.sleep(0.02)

    # ------------------------------------------------------------------
    # Local worker management (test hooks)
    # ------------------------------------------------------------------

    @property
    def local_worker_pids(self) -> list[int]:
        """PIDs of spawned local workers (fault-injection tests)."""
        return [proc.pid for proc in self._procs if proc.poll() is None]
