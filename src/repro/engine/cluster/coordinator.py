"""Cluster coordinator: the distributed :class:`Executor` backend.

:class:`ClusterExecutor` satisfies the engine protocol — ``map(fn,
items)`` with results in submission order — by sharding pickled
``(fn, args, kwargs)`` chunks across remote worker daemons
(:mod:`repro.engine.cluster.worker`) over the service layer's
length-prefixed frame protocol.  Call sites do not change: anything
that dispatches through :func:`repro.engine.executor.get_executor`
(``GridSimulation``, ``analysis.montecarlo``, ``analysis.sweep``, the
supervisor service, every ``--engine`` CLI flag) gains multi-host
execution by naming ``"cluster"``.

Topology and scheduling:

* the coordinator binds a TCP listener; workers dial in and register
  with a ``hello`` frame (id, capacity, wire version);
* each worker gets a **bounded in-flight window** (capacity ×
  ``window_depth`` chunks): a slow worker fills its window and simply
  stops receiving work — backpressure, not starvation of the fast
  workers;
* liveness is EOF *plus* heartbeats: a SIGKILLed worker drops its
  socket and is detected immediately; a silently wedged one trips the
  heartbeat timeout.  Either way its in-flight chunks are requeued
  (bounded by ``max_attempts``) and reassigned;
* ``job_timeout`` (optional) additionally requeues chunks stuck on a
  *live but slow* worker; results are accepted **at most once** per
  chunk id, so a straggler's late duplicate is ignored — and because
  every chunk is a pure function of its payload, whichever copy
  arrives first is byte-identical to any other;
* results are reassembled in submission order, which is what makes a
  cluster population run produce byte-identical
  :class:`~repro.grid.report.DetectionReport`'s to the serial backend.

Deployment modes: **spawn-local** (default — the coordinator launches
``workers`` daemon subprocesses on this host; benches, tests, and the
CLI's ``--engine cluster --cluster-workers N``) and **external**
(``spawn_local=False`` — bind a fixed port and let operators start
workers on other hosts with ``python -m repro.cli worker``).

The coordinator's event loop runs on a dedicated background thread, so
the synchronous ``map()`` contract holds whether the caller is a plain
script, a pytest process, or the supervisor service (whose asyncio
loop reaches the cluster through :attr:`ClusterExecutor.futures_pool`).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import os
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Sequence

from repro.engine.executor import Executor, default_workers
from repro.exceptions import CodecError, EngineError, ReproError
from repro.service.codec import (
    MAX_CLUSTER_FRAME_BYTES,
    ByeFrame,
    HeartbeatFrame,
    JobFrame,
    ResultFrame,
    WorkerHello,
    decode_cluster_payload,
    encode_cluster_payload,
    read_frame,
    write_frame,
)

#: Seconds between liveness beacons requested from spawned workers.
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: Seconds of silence (no frame, no heartbeat) before a worker is
#: declared dead.  Generous relative to the beacon interval: EOF
#: detection catches crashes instantly, this only fences network
#: half-death.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0


class _Job:
    """One chunk in flight: payload, caller future, retry accounting."""

    __slots__ = ("job_id", "payload", "future", "worker_id", "attempts",
                 "started_at")

    def __init__(
        self,
        job_id: int,
        payload: bytes,
        future: concurrent.futures.Future,
    ) -> None:
        self.job_id = job_id
        self.payload = payload
        self.future = future
        self.worker_id: str | None = None
        self.attempts = 0
        self.started_at: float | None = None


class _WorkerLink:
    """Coordinator-side state for one registered worker connection."""

    __slots__ = ("worker_id", "capacity", "writer", "window", "inflight",
                 "last_seen")

    def __init__(
        self, worker_id: str, capacity: int, writer, window: int, now: float
    ) -> None:
        self.worker_id = worker_id
        self.capacity = capacity
        self.writer = writer
        self.window = window
        self.inflight: set[int] = set()
        self.last_seen = now


class _Coordinator:
    """Loop-thread-only scheduling state.  Never touched off-loop."""

    def __init__(
        self,
        *,
        max_frame: int,
        window_depth: int,
        heartbeat_timeout: float,
        job_timeout: float | None,
        max_attempts: int,
        more_workers_expected: Callable[[], bool],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_frame = max_frame
        self.window_depth = window_depth
        self.heartbeat_timeout = heartbeat_timeout
        self.job_timeout = job_timeout
        self.max_attempts = max_attempts
        self.more_workers_expected = more_workers_expected
        self.clock = clock

        self.workers: dict[str, _WorkerLink] = {}
        self.jobs: dict[int, _Job] = {}
        self.pending: deque[int] = deque()
        self.jobs_completed = 0
        self.jobs_requeued = 0
        self.workers_lost = 0
        self._next_job_id = 0
        self._server: asyncio.base_events.Server | None = None
        self._monitor_task: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._send_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle (awaited from the loop thread)
    # ------------------------------------------------------------------

    async def start(self, host: str, port: int) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._spawn_connection, host, port
        )
        self._monitor_task = asyncio.ensure_future(self._monitor())
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def stop(self) -> None:
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._monitor_task
            self._monitor_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for link in list(self.workers.values()):
            with contextlib.suppress(Exception):
                await write_frame(
                    link.writer,
                    ByeFrame(reason="coordinator shutdown"),
                    max_frame=self.max_frame,
                )
            with contextlib.suppress(Exception):
                link.writer.close()
        self.workers.clear()
        for task in list(self._conn_tasks) + list(self._send_tasks):
            task.cancel()
        for task in list(self._conn_tasks) + list(self._send_tasks):
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self._conn_tasks.clear()
        self._send_tasks.clear()
        self._fail_all(EngineError("cluster executor closed"))

    def _fail_all(self, exc: Exception) -> None:
        for job in list(self.jobs.values()):
            if not job.future.done():
                job.future.set_exception(exc)
        self.jobs.clear()
        self.pending.clear()

    # ------------------------------------------------------------------
    # Submission (scheduled onto the loop via call_soon_threadsafe)
    # ------------------------------------------------------------------

    def submit(
        self, payload: bytes, future: concurrent.futures.Future
    ) -> None:
        job_id = self._next_job_id
        self._next_job_id += 1
        self.jobs[job_id] = _Job(job_id, payload, future)
        self.pending.append(job_id)
        self._pump()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        """Assign pending chunks to workers with free window slots."""
        progress = True
        while self.pending and progress:
            progress = False
            for link in list(self.workers.values()):
                if not self.pending:
                    break
                if len(link.inflight) >= link.window:
                    continue
                job = None
                while self.pending and job is None:
                    job_id = self.pending.popleft()
                    job = self.jobs.get(job_id)
                    if job is not None and job.future.done():
                        # Cancelled by the caller: forget it.
                        del self.jobs[job_id]
                        job = None
                if job is None:
                    continue
                job.worker_id = link.worker_id
                job.started_at = self.clock()
                job.attempts += 1
                link.inflight.add(job.job_id)
                task = asyncio.ensure_future(self._send_job(link, job))
                self._send_tasks.add(task)
                task.add_done_callback(self._send_tasks.discard)
                progress = True

    async def _send_job(self, link: _WorkerLink, job: _Job) -> None:
        try:
            await write_frame(
                link.writer,
                JobFrame(job_id=job.job_id, payload=job.payload),
                max_frame=self.max_frame,
            )
        except Exception:
            self._drop_worker(link)

    # ------------------------------------------------------------------
    # Worker connections
    # ------------------------------------------------------------------

    def _spawn_connection(self, reader, writer) -> None:
        task = asyncio.ensure_future(self._serve_worker(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _serve_worker(self, reader, writer) -> None:
        link: _WorkerLink | None = None
        try:
            frame = await read_frame(reader, max_frame=self.max_frame)
            if not isinstance(frame, WorkerHello):
                with contextlib.suppress(Exception):
                    await write_frame(
                        writer,
                        ByeFrame(reason="expected hello"),
                        max_frame=self.max_frame,
                    )
                return
            if frame.worker_id in self.workers:
                with contextlib.suppress(Exception):
                    await write_frame(
                        writer,
                        ByeFrame(reason=f"duplicate id {frame.worker_id!r}"),
                        max_frame=self.max_frame,
                    )
                return
            link = _WorkerLink(
                worker_id=frame.worker_id,
                capacity=frame.capacity,
                writer=writer,
                window=max(1, frame.capacity) * self.window_depth,
                now=self.clock(),
            )
            self.workers[link.worker_id] = link
            self._pump()
            while True:
                frame = await read_frame(reader, max_frame=self.max_frame)
                if frame is None or isinstance(frame, ByeFrame):
                    return
                link.last_seen = self.clock()
                if isinstance(frame, ResultFrame):
                    self._on_result(link, frame)
                elif isinstance(frame, HeartbeatFrame):
                    pass
                # Anything else from a registered worker is ignored.
        except (ReproError, ConnectionError, OSError):
            pass  # a misbehaving/dying worker never takes the pool down
        finally:
            if link is not None:
                self._drop_worker(link)
            with contextlib.suppress(Exception):
                writer.close()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await writer.wait_closed()

    def _on_result(self, link: _WorkerLink, frame: ResultFrame) -> None:
        link.inflight.discard(frame.job_id)
        job = self.jobs.get(frame.job_id)
        if job is None or job.future.done():
            # Late duplicate of a requeued chunk, or a chunk whose
            # caller cancelled (a sibling failed mid-map): drop the
            # bookkeeping so a long-lived pool cannot accumulate it.
            if job is not None:
                del self.jobs[frame.job_id]
            self._pump()
            return
        del self.jobs[frame.job_id]
        self.jobs_completed += 1
        if frame.ok:
            try:
                result = decode_cluster_payload(frame.payload)
            except CodecError as exc:
                job.future.set_exception(
                    EngineError(
                        f"undecodable result from {link.worker_id}: {exc}"
                    )
                )
            else:
                job.future.set_result(result)
        else:
            try:
                message = decode_cluster_payload(frame.payload)
            except CodecError:
                message = "<undecodable error payload>"
            job.future.set_exception(
                EngineError(
                    f"remote chunk {frame.job_id} failed on "
                    f"{link.worker_id}: {message}"
                )
            )
        self._pump()

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    def _drop_worker(self, link: _WorkerLink) -> None:
        if self.workers.get(link.worker_id) is link:
            del self.workers[link.worker_id]
            self.workers_lost += 1
        with contextlib.suppress(Exception):
            link.writer.close()
        for job_id in list(link.inflight):
            self._requeue(job_id)
        link.inflight.clear()
        self._pump()

    def _requeue(self, job_id: int) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            return
        if job.future.done():  # cancelled by the caller: forget it
            del self.jobs[job_id]
            return
        if job.attempts >= self.max_attempts:
            del self.jobs[job_id]
            job.future.set_exception(
                EngineError(
                    f"cluster chunk {job_id} failed after "
                    f"{job.attempts} assignments"
                )
            )
            return
        job.worker_id = None
        job.started_at = None
        self.jobs_requeued += 1
        self.pending.appendleft(job_id)

    async def _monitor(self) -> None:
        interval = min(self.heartbeat_timeout / 4.0, 0.25)
        while True:
            await asyncio.sleep(interval)
            now = self.clock()
            for link in list(self.workers.values()):
                if now - link.last_seen > self.heartbeat_timeout:
                    self._drop_worker(link)
            if self.job_timeout is not None:
                for job in list(self.jobs.values()):
                    if (
                        job.worker_id is not None
                        and job.started_at is not None
                        and now - job.started_at > self.job_timeout
                    ):
                        link = self.workers.get(job.worker_id)
                        if link is not None:
                            link.inflight.discard(job.job_id)
                        self._requeue(job.job_id)
            if (
                self.jobs
                and not self.workers
                and not self.more_workers_expected()
            ):
                self._fail_all(
                    EngineError(
                        "all cluster workers are gone and none can rejoin"
                    )
                )
            self._pump()


class _ClusterFuturesPool(concurrent.futures.Executor):
    """``concurrent.futures`` facade over a :class:`ClusterExecutor`.

    This is the asyncio bridge: the supervisor service hands this to
    ``loop.run_in_executor``, so ``--engine cluster`` pushes
    verification jobs to remote workers with zero server changes.
    Lifetime belongs to the owning executor — ``shutdown`` is a no-op.
    """

    def __init__(self, owner: "ClusterExecutor") -> None:
        self._owner = owner

    def submit(self, fn, /, *args, **kwargs) -> concurrent.futures.Future:
        return self._owner.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        pass  # the ClusterExecutor owns the worker pool lifecycle


class ClusterExecutor(Executor):
    """Distributed engine backend over remote worker daemons.

    ``workers`` is the number of *local worker daemons* to spawn in
    the default self-hosting mode (tests, benches, ``--engine cluster
    --cluster-workers N``).  With ``spawn_local=False`` the coordinator
    only binds ``host:port`` and serves whatever external workers
    register — start them with ``python -m repro.cli worker --host
    <coordinator> --port <port>`` on any number of hosts.
    """

    name = "cluster"

    def __init__(
        self,
        workers: int | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_local: bool = True,
        worker_engine: str = "serial",
        worker_processes: int | None = None,
        window_depth: int = 2,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        job_timeout: float | None = None,
        max_attempts: int = 3,
        startup_timeout: float = 60.0,
        max_frame: int = MAX_CLUSTER_FRAME_BYTES,
    ) -> None:
        if workers is not None and workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        if window_depth < 1:
            raise EngineError(f"window_depth must be >= 1, got {window_depth}")
        if max_attempts < 1:
            raise EngineError(f"max_attempts must be >= 1, got {max_attempts}")
        if worker_engine == "cluster":
            raise EngineError("cluster workers cannot use the cluster engine")
        self._n_local = workers or default_workers()
        self._host = host
        self._port = port
        self._spawn_local = spawn_local
        self._worker_engine = worker_engine
        self._worker_processes = worker_processes
        self._window_depth = window_depth
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._job_timeout = job_timeout
        self._max_attempts = max_attempts
        self._startup_timeout = startup_timeout
        self._max_frame = max_frame

        self._lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._co: _Coordinator | None = None
        self._procs: list[subprocess.Popen] = []
        self._address: tuple[str, int] | None = None
        self._pool_facade: _ClusterFuturesPool | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Executor protocol
    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Total registered capacity (spawn target before startup)."""
        co = self._co
        if co is not None and co.workers:
            return max(1, sum(w.capacity for w in co.workers.values()))
        return max(1, self._n_local)

    @property
    def address(self) -> tuple[str, int] | None:
        """The coordinator's bound ``(host, port)`` once started."""
        return self._address

    @property
    def stats(self) -> dict:
        """Scheduling counters (chunks completed/requeued, worker churn)."""
        co = self._co
        if co is None:
            return {"jobs_completed": 0, "jobs_requeued": 0,
                    "workers_lost": 0, "workers_live": 0}
        return {
            "jobs_completed": co.jobs_completed,
            "jobs_requeued": co.jobs_requeued,
            "workers_lost": co.workers_lost,
            "workers_live": len(co.workers),
        }

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> list[Any]:
        if not items:
            if self._closed:
                raise EngineError("cluster executor already closed")
            return []
        futures = [self.submit(fn, item) for item in items]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            raise

    def submit(self, fn, /, *args, **kwargs) -> concurrent.futures.Future:
        """Ship one call to the cluster; returns a waitable future."""
        self._ensure_started()
        payload = encode_cluster_payload((fn, args, kwargs))
        future: concurrent.futures.Future = concurrent.futures.Future()
        assert self._loop is not None and self._co is not None
        self._loop.call_soon_threadsafe(self._co.submit, payload, future)
        return future

    @property
    def futures_pool(self) -> concurrent.futures.Executor:
        self._ensure_started()
        if self._pool_facade is None:
            self._pool_facade = _ClusterFuturesPool(self)
        return self._pool_facade

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            loop, thread, co = self._loop, self._thread, self._co
            self._loop = self._thread = self._co = None
        if loop is not None and co is not None:
            with contextlib.suppress(Exception):
                asyncio.run_coroutine_threadsafe(co.stop(), loop).result(
                    timeout=10.0
                )
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=10.0)
            loop.close()
        for proc in self._procs:
            with contextlib.suppress(Exception):
                proc.terminate()
        for proc in self._procs:
            with contextlib.suppress(Exception):
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
        self._procs.clear()

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    def _more_workers_expected(self) -> bool:
        """May a worker (re)join?  External pools: always.  Spawn-local
        pools: only while at least one daemon process is alive."""
        if not self._spawn_local:
            return True
        return any(proc.poll() is None for proc in self._procs)

    def _ensure_started(self) -> None:
        with self._lock:
            if self._closed:
                raise EngineError("cluster executor already closed")
            if self._thread is not None:
                return
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever, name="repro-cluster", daemon=True
            )
            thread.start()
            co = _Coordinator(
                max_frame=self._max_frame,
                window_depth=self._window_depth,
                heartbeat_timeout=self._heartbeat_timeout,
                job_timeout=self._job_timeout,
                max_attempts=self._max_attempts,
                more_workers_expected=self._more_workers_expected,
            )
            try:
                self._address = asyncio.run_coroutine_threadsafe(
                    co.start(self._host, self._port), loop
                ).result(timeout=self._startup_timeout)
            except Exception:
                loop.call_soon_threadsafe(loop.stop)
                thread.join(timeout=5.0)
                loop.close()
                raise
            self._loop, self._thread, self._co = loop, thread, co
        if self._spawn_local:
            self._spawn_workers()
            self._await_workers(self._n_local)
        else:
            self._await_workers(1)

    def _spawn_workers(self) -> None:
        assert self._address is not None
        host, port = self._address
        env = dict(os.environ)
        # Workers must import repro exactly as this process does,
        # wherever pytest/CLI put it on sys.path.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        # A -c shim rather than -m: runpy re-executing worker.py under
        # a package whose __init__ already imported it would warn.
        entry = (
            "import sys; from repro.engine.cluster.worker import main; "
            "sys.exit(main(sys.argv[1:]))"
        )
        for i in range(self._n_local):
            cmd = [
                sys.executable, "-c", entry,
                "--host", host,
                "--port", str(port),
                "--engine", self._worker_engine,
                "--id", f"local-{i}",
                "--heartbeat", str(self._heartbeat_interval),
            ]
            if self._worker_processes is not None:
                cmd += ["--workers", str(self._worker_processes)]
            self._procs.append(
                subprocess.Popen(
                    cmd, env=env, stdout=subprocess.DEVNULL
                )
            )

    def _await_workers(self, target: int) -> None:
        """Block until ``target`` workers registered (or fail loudly)."""
        deadline = time.monotonic() + self._startup_timeout
        while True:
            co = self._co
            if co is None:
                raise EngineError("cluster executor closed during startup")
            if len(co.workers) >= target:
                return
            if self._spawn_local:
                dead = [p for p in self._procs if p.poll() is not None]
                if dead and len(co.workers) + sum(
                    1 for p in self._procs if p.poll() is None
                ) < target:
                    raise EngineError(
                        f"cluster worker exited with code "
                        f"{dead[0].returncode} before registering"
                    )
            if time.monotonic() >= deadline:
                raise EngineError(
                    f"only {len(co.workers)} of {target} cluster workers "
                    f"registered within {self._startup_timeout}s"
                )
            time.sleep(0.02)

    # ------------------------------------------------------------------
    # Local worker management (test hooks)
    # ------------------------------------------------------------------

    @property
    def local_worker_pids(self) -> list[int]:
        """PIDs of spawned local workers (fault-injection tests)."""
        return [proc.pid for proc in self._procs if proc.poll() is None]
