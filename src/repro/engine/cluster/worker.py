"""Cluster worker daemon: execute typed job chunks for a coordinator.

One worker is one long-lived process on one host.  It dials the
coordinator, registers with a ``hello`` frame (id, capacity, wire
version), then serves ``job`` frames until a ``bye``, an EOF or a
shutdown signal: each payload is a *chunk* — an ordered sequence of
typed ``(fn, args, kwargs)`` job specs (:mod:`repro.service.jobcodec`
— data, never code: functions arrive as registered names, arguments as
schema-checked values), sized per worker by the coordinator's
throughput tracker — executed on the worker's *local* execution engine
(serial, threads or processes — a cluster worker is itself a
single-host engine user) and answered with the chunk's ordered
per-job ``(ok, payload)`` outcomes in the same typed encoding.

Scheme memory: cacheable structs (the verification schemes) decode
through a bounded process-wide LRU keyed by (scheme name, canonical
param bytes), so one population constructs its scheme once per worker
process, not once per chunk.  Hit/miss deltas ride back on each
result frame (``ch``/``cm``) and feed this worker's own
``repro_scheme_cache_*_total`` counters.

Small outcome lists travel as one ``result`` frame; once the encoded
outcomes exceed ``stream_threshold`` bytes the worker streams them as
bounded ``result_part`` sub-frames closed by a ``result_end`` — so a
giant chunk never materialises as one giant envelope on either side
of the wire.

Survival contract: a worker never dies because of a job.  A corrupted
or oversized chunk payload comes back as a chunk-level ``ok=False``
result; a single job whose function raises (or whose result the typed
codec cannot encode) comes back as that job's ``ok=False`` outcome
while its chunk siblings succeed — and the worker keeps serving.
Jobs run off the event loop (on the engine's pool, or a thread for
the serial engine) so heartbeats keep flowing while a chunk computes
— that is what lets the coordinator tell *busy* from *dead*.

Run it standalone (``python -m repro.engine.cluster.worker``) or via
the CLI (``python -m repro.cli worker``); the coordinator's spawn-local
mode launches exactly this module.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import functools
import importlib
import logging
import os
import secrets
import signal
import sys
import time

from repro.engine.executor import get_executor
from repro.exceptions import EngineError, ReproError
from repro.net.transport import (
    SecurityConfig,
    close_writer,
    heartbeat_loop,
    open_connection,
)
from repro.obs.health import HealthState
from repro.obs.http import MetricsServer
from repro.obs.recorder import FlightRecorder, install_flight_recorder
from repro.obs.spans import Span, default_span_buffer
from repro.obs.logging import configure_logging, get_logger, log_event
from repro.obs.metrics import LATENCY_BUCKETS, SIZE_BUCKETS, default_registry
from repro.obs.trace import bind_trace
from repro.service.jobcodec import (
    SchemeCache,
    decode_job,
    ensure_default_registry,
)
from repro.service.codec import (
    DEFAULT_STREAM_THRESHOLD_BYTES,
    MAX_CLUSTER_FRAME_BYTES,
    ByeFrame,
    HeartbeatFrame,
    JobFrame,
    ResultEndFrame,
    ResultFrame,
    ResultPartFrame,
    WorkerHello,
    decode_cluster_chunk,
    encode_cluster_outcomes,
    encode_cluster_payload,
    read_frame,
    write_frame,
)

#: Default seconds between liveness beacons.
DEFAULT_HEARTBEAT_INTERVAL = 1.0

_log = get_logger("cluster.worker")

# Worker-side instruments live on the process-global registry: one
# worker daemon is one process, so there is no instance to scope to,
# and ``--metrics-port`` scrapes exactly this registry.
_metrics_handles: tuple | None = None


def _worker_metrics():
    global _metrics_handles
    if _metrics_handles is None:
        reg = default_registry()
        _metrics_handles = (
            reg.counter(
                "repro_worker_chunks_total",
                "Chunks executed by this worker, by outcome",
                ("outcome",),
            ),
            reg.counter(
                "repro_worker_jobs_total",
                "Jobs executed by this worker (chunk entries)",
            ),
            reg.histogram(
                "repro_worker_dispatch_seconds",
                "Seconds a chunk waits for a local pool slot",
                buckets=LATENCY_BUCKETS,
            ),
            reg.histogram(
                "repro_job_bytes",
                "Encoded job-spec payload bytes, by plane",
                ("plane",),
                buckets=SIZE_BUCKETS,
            ),
            reg.counter(
                "repro_scheme_cache_hits_total",
                "Scheme-cache hits (schemes reused across chunks), by plane",
                ("plane",),
            ),
            reg.counter(
                "repro_scheme_cache_misses_total",
                "Scheme-cache misses (schemes constructed), by plane",
                ("plane",),
            ),
        )
    return _metrics_handles


# One scheme cache per worker *process*: the daemon shares it across
# chunks on the serial/threads engines, and each process-pool child
# grows its own copy — either way a population's scheme is built once
# per process, not once per chunk.
_scheme_cache = SchemeCache()


def scheme_cache() -> SchemeCache:
    """This process's job-decode scheme cache (tests and stats)."""
    return _scheme_cache


def _import_preload(preload: tuple[str, ...]) -> None:
    """Import codec-registration modules by name (idempotent).

    ``sys.modules`` makes repeat calls free, so this can run inside
    every chunk execution — which is exactly what gets third-party
    struct/callable registrations into process-pool children that
    never ran the daemon's startup path.
    """
    for name in preload:
        importlib.import_module(name)


def default_worker_id() -> str:
    """A collision-resistant id: pid plus a random suffix."""
    return f"worker-{os.getpid()}-{secrets.token_hex(3)}"


def execute_payload(raw: bytes) -> object:
    """Decode one typed job spec and run it (the worker-side hot path).

    The payload must decode to a ``(fn, args, kwargs)`` job spec whose
    ``fn`` is a registered callable; anything else — junk bytes, an
    unregistered name, the wrong shape — raises
    :class:`~repro.exceptions.CodecError`.  Cacheable schemes decode
    through this process's :func:`scheme_cache`.  Module-level so the
    process-engine pool can ship it by reference.
    """
    fn, args, kwargs = decode_job(raw, cache=_scheme_cache)
    return fn(*args, **kwargs)


def execute_chunk_report(
    raw: bytes,
    throttle: float = 0.0,
    preload: tuple[str, ...] = (),
) -> tuple[list[tuple[bool, bytes]], dict]:
    """Run one chunk payload; return outcomes plus an execution report.

    The chunk envelope itself must decode (a corrupted chunk raises
    :class:`~repro.exceptions.CodecError` — the chunk-level failure
    path); inside it, every job is isolated: a job that raises, or
    whose result the typed codec cannot encode, becomes its own
    ``ok=False`` outcome carrying the error text while its siblings
    still succeed.  Module-level so the process-engine pool can ship
    it by reference — the report travels back with the outcomes, which
    is how scheme-cache activity inside pool children reaches the
    daemon.

    The report dict carries ``cache_hits``/``cache_misses`` (this
    chunk's scheme-cache deltas) and ``job_bytes`` (per-job encoded
    spec sizes).  ``throttle`` sleeps that many seconds after each job
    — an artificial straggler for benchmarks and scheduler tests,
    never set in production.
    """
    ensure_default_registry()
    _import_preload(preload)
    before = _scheme_cache.stats()
    out: list[tuple[bool, bytes]] = []
    job_bytes: list[int] = []
    for job_raw in decode_cluster_chunk(raw):
        job_bytes.append(len(job_raw))
        try:
            result = execute_payload(job_raw)
            out.append((True, encode_cluster_payload(result)))
        except Exception as exc:
            out.append(
                (False, encode_cluster_payload(f"{type(exc).__name__}: {exc}"))
            )
        if throttle > 0.0:
            time.sleep(throttle)
    after = _scheme_cache.stats()
    report = {
        "cache_hits": after["hits"] - before["hits"],
        "cache_misses": after["misses"] - before["misses"],
        "job_bytes": job_bytes,
    }
    return out, report


def execute_chunk(raw: bytes, throttle: float = 0.0) -> list[tuple[bool, bytes]]:
    """:func:`execute_chunk_report` without the report (compat shim)."""
    entries, _report = execute_chunk_report(raw, throttle)
    return entries


def pack_outcome_parts(
    entries: "list[tuple[bool, bytes]]", threshold: int
) -> list[list[tuple[bool, bytes]]]:
    """Split an outcome list into contiguous runs of ~``threshold`` bytes.

    Greedy packing over the encoded payload sizes: a part closes as
    soon as adding the next outcome would push it past ``threshold``.
    A single outcome larger than the threshold gets a part of its own
    — entries are never split, so reassembly is pure concatenation.
    """
    if threshold < 1:
        raise EngineError(f"stream threshold must be >= 1, got {threshold}")
    parts: list[list[tuple[bool, bytes]]] = []
    current: list[tuple[bool, bytes]] = []
    size = 0
    for entry in entries:
        entry_size = len(entry[1]) + 16  # envelope slack per entry
        if current and size + entry_size > threshold:
            parts.append(current)
            current, size = [], 0
        current.append(entry)
        size += entry_size
    if current:
        parts.append(current)
    return parts


async def run_worker(
    host: str,
    port: int,
    *,
    engine: str = "serial",
    workers: int | None = None,
    worker_id: str | None = None,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    stream_threshold: int = DEFAULT_STREAM_THRESHOLD_BYTES,
    throttle: float = 0.0,
    connect_retry_s: float = 0.0,
    security: SecurityConfig | None = None,
    max_frame: int = MAX_CLUSTER_FRAME_BYTES,
    shutdown: asyncio.Event | None = None,
    health: HealthState | None = None,
    preload: tuple[str, ...] = (),
) -> int:
    """Serve one coordinator until bye/EOF/``shutdown``; return jobs done.

    ``engine``/``workers`` pick the worker's local execution backend —
    ``"cluster"`` is rejected (a worker must not recurse into another
    coordinator).  ``stream_threshold`` is the encoded-outcome byte
    count above which a chunk's results go back as ``result_part``
    sub-frames instead of one ``result`` envelope.  ``throttle`` adds
    an artificial per-job delay (straggler injection for benches and
    scheduler tests).  ``connect_retry_s`` keeps re-dialling a
    coordinator that has not bound its port yet — workers racing the
    coordinator's startup across hosts is normal, not an error
    (shared :func:`repro.net.transport.open_connection` backoff).
    ``security`` carries the coordinator's shared secret and TLS pin:
    when a secret is set the worker completes the repro.net HMAC
    handshake before its ``hello`` frame.  ``shutdown`` is the
    graceful-exit hook the signal handlers set.  ``health`` (optional)
    tracks readiness: ready once the hello is sent, flipped to
    draining the moment a shutdown begins — the ``/readyz`` half of a
    worker's ``--metrics-port`` endpoint.  ``preload`` names modules
    imported before serving (and again inside every chunk, where
    ``sys.modules`` makes it free) so third-party jobcodec
    registrations exist in the daemon *and* in process-pool children.
    """
    if engine == "cluster":
        raise EngineError("a cluster worker cannot use the cluster engine")
    if heartbeat_interval <= 0:
        raise EngineError(
            f"heartbeat interval must be positive, got {heartbeat_interval}"
        )
    if stream_threshold < 1:
        raise EngineError(
            f"stream threshold must be >= 1 byte, got {stream_threshold}"
        )
    if throttle < 0:
        raise EngineError(f"throttle must be >= 0, got {throttle}")
    if connect_retry_s < 0:
        raise EngineError(
            f"connect retry must be >= 0, got {connect_retry_s}"
        )
    worker_id = worker_id or default_worker_id()
    jobs_done = 0
    preload = tuple(preload)
    # Registry + preloads resolve before dialling: a misspelled
    # --preload module is a startup error, not a per-chunk surprise.
    ensure_default_registry()
    _import_preload(preload)

    with get_executor(engine, workers) as executor:
        loop = asyncio.get_running_loop()
        # Warm the local pool before dialling: the coordinator starts
        # scheduling the moment the hello lands, and the first chunk
        # must not pay process-pool startup on the request path.
        # Synchronous on purpose — nothing else is on the loop yet.
        executor.prewarm()
        reader, writer = await open_connection(
            host,
            port,
            ssl_context=(
                security.client_ssl_context() if security is not None else None
            ),
            connect_retry_s=connect_retry_s,
        )
        if security is not None:
            # Authenticate before the hello: a worker that cannot
            # prove the shared secret never gets to speak the codec.
            try:
                await security.authenticate_outbound(reader, writer)
            except BaseException:
                await close_writer(writer)
                raise
        write_lock = asyncio.Lock()
        slots = asyncio.Semaphore(executor.workers)
        inflight: set[asyncio.Task] = set()

        async def send(frame) -> None:
            async with write_lock:
                await write_frame(writer, frame, max_frame=max_frame)

        def heartbeats():
            return heartbeat_loop(
                lambda: send(HeartbeatFrame(worker_id=worker_id)),
                heartbeat_interval,
            )

        async def run_job(frame: JobFrame) -> None:
            nonlocal jobs_done
            (
                m_chunks,
                m_jobs,
                m_dispatch,
                m_job_bytes,
                m_cache_hits,
                m_cache_misses,
            ) = _worker_metrics()
            queued_at = time.perf_counter()
            # Span export (wire v4): a traced chunk's execution is
            # timed as a span parented under the coordinator's chunk
            # span, recorded locally (flight recorder) and attached to
            # the result envelope so the coordinator can assemble the
            # full distributed waterfall.  Untraced chunks pay nothing.
            exec_span: Span | None = None
            try:
                async with slots:
                    m_dispatch.observe(time.perf_counter() - queued_at)
                    with bind_trace(frame.trace_id, frame.span_id):
                        log_event(
                            _log,
                            "chunk_executing",
                            level=logging.DEBUG,
                            chunk=frame.job_id,
                            worker=worker_id,
                        )
                    started = time.perf_counter()
                    if frame.trace_id is not None:
                        exec_span = Span.begin(
                            "worker.execute",
                            trace_id=frame.trace_id,
                            parent_id=frame.span_id,
                        )
                        exec_span.attributes.update(
                            worker=worker_id, chunk=frame.job_id
                        )
                    # futures_pool is None on the serial engine; the
                    # loop's default thread pool keeps heartbeats alive
                    # during compute either way.
                    entries, report = await loop.run_in_executor(
                        executor.futures_pool,
                        functools.partial(
                            execute_chunk_report,
                            frame.payload,
                            throttle,
                            preload,
                        ),
                    )
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                m_chunks.labels(outcome="error").inc()
                with bind_trace(frame.trace_id, frame.span_id):
                    log_event(
                        _log,
                        "chunk_failed",
                        level=logging.WARNING,
                        chunk=frame.job_id,
                        worker=worker_id,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                # The survival contract: a chunk envelope that does not
                # decode (CodecError) — or any other chunk-level
                # surprise — comes back as data, never a worker crash.
                # Per-job failures were already folded into ``entries``
                # by execute_chunk and do not land here.
                error_spans: tuple = ()
                if exec_span is not None:
                    exec_span.finish(status=f"error:{type(exc).__name__}")
                    default_span_buffer().add(exec_span)
                    error_spans = (exec_span.to_wire(),)
                await send(
                    ResultFrame(
                        job_id=frame.job_id,
                        ok=False,
                        payload=encode_cluster_payload(
                            f"{type(exc).__name__}: {exc}"
                        ),
                        spans=error_spans,
                    )
                )
                return
            jobs_done += len(entries)
            m_chunks.labels(outcome="ok").inc()
            m_jobs.inc(len(entries))
            cache_hits = report["cache_hits"]
            cache_misses = report["cache_misses"]
            for size in report["job_bytes"]:
                m_job_bytes.labels(plane="worker").observe(size)
            if cache_hits:
                m_cache_hits.labels(plane="worker").inc(cache_hits)
            if cache_misses:
                m_cache_misses.labels(plane="worker").inc(cache_misses)
            with bind_trace(frame.trace_id, frame.span_id):
                log_event(
                    _log,
                    "chunk_executed",
                    level=logging.DEBUG,
                    chunk=frame.job_id,
                    worker=worker_id,
                    jobs=len(entries),
                    elapsed_s=round(time.perf_counter() - started, 6),
                )
            wire_spans: tuple = ()
            if exec_span is not None:
                exec_span.finish(jobs=len(entries))
                default_span_buffer().add(exec_span)
                wire_spans = (exec_span.to_wire(),)
            try:
                parts = pack_outcome_parts(entries, stream_threshold)
                if len(parts) == 1:
                    await send(
                        ResultFrame(
                            job_id=frame.job_id,
                            ok=True,
                            payload=encode_cluster_outcomes(parts[0]),
                            spans=wire_spans,
                            cache_hits=cache_hits,
                            cache_misses=cache_misses,
                        )
                    )
                    return
                # Giant chunk: stream bounded sub-frames.  Each send
                # drains the transport, so a slow coordinator applies
                # backpressure here instead of ballooning this
                # worker's write buffer.
                stream_span: Span | None = None
                if frame.trace_id is not None:
                    stream_span = Span.begin(
                        "worker.stream",
                        trace_id=frame.trace_id,
                        parent_id=frame.span_id,
                    )
                    stream_span.attributes.update(
                        worker=worker_id, chunk=frame.job_id
                    )
                for seq, part in enumerate(parts):
                    await send(
                        ResultPartFrame(
                            job_id=frame.job_id,
                            seq=seq,
                            payload=encode_cluster_outcomes(part),
                        )
                    )
                if stream_span is not None:
                    stream_span.finish(parts=len(parts))
                    default_span_buffer().add(stream_span)
                    wire_spans = wire_spans + (stream_span.to_wire(),)
                await send(
                    ResultEndFrame(
                        job_id=frame.job_id,
                        parts=len(parts),
                        spans=wire_spans,
                        cache_hits=cache_hits,
                        cache_misses=cache_misses,
                    )
                )
            except ReproError as exc:
                # The survival contract extends to the *answer* path: a
                # part that will not encode or frame (oversized results
                # vs a small max_frame, a stream_threshold misconfigured
                # above the payload cap) must come back as a chunk-level
                # error — an unanswered chunk would hang the caller
                # forever on a worker that still heartbeats.  (Transport
                # errors propagate: EOF handling owns those.)
                await send(
                    ResultFrame(
                        job_id=frame.job_id,
                        ok=False,
                        payload=encode_cluster_payload(
                            f"{type(exc).__name__}: {exc}"
                        ),
                    )
                )

        hb_task = asyncio.ensure_future(heartbeats())
        stop_task = (
            asyncio.ensure_future(shutdown.wait())
            if shutdown is not None
            else None
        )
        try:
            await send(
                WorkerHello(worker_id=worker_id, capacity=executor.workers)
            )
            if health is not None:
                # Registered with a coordinator and able to take work —
                # the moment /readyz should start answering 200.
                health.set_ready(True)
            while True:
                frame_task = asyncio.ensure_future(
                    read_frame(reader, max_frame=max_frame)
                )
                waits = {frame_task}
                if stop_task is not None:
                    waits.add(stop_task)
                done, _pending = await asyncio.wait(
                    waits, return_when=asyncio.FIRST_COMPLETED
                )
                if stop_task is not None and stop_task in done:
                    if health is not None:
                        # Drain: flip readiness *before* flushing
                        # in-flight chunks so an LB stops routing
                        # while the work completes.
                        health.set_ready(False, "draining")
                    frame_task.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, ReproError
                    ):
                        await frame_task
                    if inflight:  # flush chunks already computing
                        await asyncio.wait(inflight, timeout=5.0)
                    with contextlib.suppress(Exception):
                        await send(ByeFrame(reason="worker shutdown"))
                    break
                frame = frame_task.result()  # ProtocolError/CodecError here
                if frame is None:
                    break
                if isinstance(frame, ByeFrame):
                    # A refusal (version skew, bad hello) is an
                    # operator problem — exit loudly, not a quiet
                    # zero-job success.
                    if frame.reason.startswith("incompatible"):
                        raise EngineError(
                            f"coordinator refused worker: {frame.reason}"
                        )
                    break
                if isinstance(frame, JobFrame):
                    task = asyncio.ensure_future(run_job(frame))
                    inflight.add(task)
                    task.add_done_callback(inflight.discard)
                # Anything else from a well-behaved coordinator is
                # unexpected but harmless; ignore it.
        finally:
            if health is not None:
                health.set_ready(False, "stopped")
            hb_task.cancel()
            if stop_task is not None:
                stop_task.cancel()
            for task in list(inflight):
                task.cancel()
            for task in (hb_task, stop_task, *inflight):
                if task is not None:
                    with contextlib.suppress(
                        asyncio.CancelledError, Exception
                    ):
                        await task
            await close_writer(writer)
    return jobs_done


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def add_worker_args(parser: argparse.ArgumentParser) -> None:
    """The worker daemon's flags — shared by this module's standalone
    parser and the CLI's ``worker`` subcommand, so the two entry points
    cannot drift."""
    parser.add_argument("--host", default="127.0.0.1",
                        help="coordinator host")
    parser.add_argument("--port", type=int, required=True,
                        help="coordinator port")
    parser.add_argument("--engine", default="serial",
                        choices=("serial", "threads", "processes"),
                        help="local execution backend for job chunks")
    parser.add_argument("--workers", type=_positive_int, default=None,
                        help="local pool size (default: CPU count)")
    parser.add_argument("--id", default=None, dest="worker_id",
                        help="worker id (default: pid-based)")
    parser.add_argument("--heartbeat", type=float,
                        default=DEFAULT_HEARTBEAT_INTERVAL,
                        dest="heartbeat_interval",
                        help="seconds between liveness beacons")
    parser.add_argument("--stream-threshold", type=_positive_int,
                        default=DEFAULT_STREAM_THRESHOLD_BYTES,
                        dest="stream_threshold",
                        help="encoded result bytes above which a chunk's "
                        "outcomes stream as bounded result_part frames "
                        f"(default: {DEFAULT_STREAM_THRESHOLD_BYTES})")
    parser.add_argument("--throttle", type=float, default=0.0,
                        help="artificial per-job delay in seconds "
                        "(straggler injection for benches/tests)")
    parser.add_argument("--preload", action="append", default=None,
                        metavar="MODULE", dest="preload",
                        help="import this module before serving (repeat "
                        "for more) — the hook for registering extra "
                        "jobcodec structs/callables on the worker; "
                        "imported again inside each chunk so "
                        "process-pool children get the registrations "
                        "too")
    parser.add_argument("--connect-retry", type=float, default=0.0,
                        dest="connect_retry_s",
                        help="seconds to keep re-dialling a coordinator "
                        "that is not accepting yet (default: fail fast)")
    parser.add_argument("--secret-file", default=None, dest="secret_file",
                        help="path to the coordinator's shared secret; "
                        "the worker authenticates (HMAC-SHA256 "
                        "challenge/response) before its hello frame")
    parser.add_argument("--tls-cert", default=None, dest="tls_cert",
                        help="path to the coordinator's TLS certificate "
                        "(pinned as the trust anchor; enables TLS)")
    parser.add_argument("--trace", action="store_true",
                        help="emit structured JSON log records (DEBUG) "
                        "carrying the trace/span ids each chunk arrived "
                        "with — the worker half of a --trace run")
    parser.add_argument("--metrics-port", type=int, default=None,
                        dest="metrics_port",
                        help="serve this worker's /metrics (Prometheus "
                        "text), /stats (JSON) and /healthz + /readyz "
                        "probes on this localhost port (0 picks a free "
                        "one)")
    parser.add_argument("--flight-dir", default=None, dest="flight_dir",
                        help="arm the flight recorder: dump a JSON "
                        "artifact of recent events + spans into this "
                        "directory on crash, SIGUSR1, and clean "
                        "shutdown")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster-worker",
        description="Cluster worker daemon for the repro execution engine",
    )
    add_worker_args(parser)
    return parser


def run_worker_sync(
    host: str,
    port: int,
    *,
    engine: str = "serial",
    workers: int | None = None,
    worker_id: str | None = None,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    stream_threshold: int = DEFAULT_STREAM_THRESHOLD_BYTES,
    throttle: float = 0.0,
    connect_retry_s: float = 0.0,
    secret_file: str | None = None,
    tls_cert: str | None = None,
    trace: bool = False,
    metrics_port: int | None = None,
    flight_dir: str | None = None,
    preload: tuple[str, ...] = (),
) -> int:
    """Blocking daemon wrapper with graceful SIGINT/SIGTERM exit.

    The shared entry point behind ``python -m repro.cli worker`` and
    ``python -m repro.engine.cluster.worker``; returns a process exit
    code.  ``secret_file``/``tls_cert`` are the operator-distributed
    security material (see README "Security model").  ``trace`` turns
    on JSON logging at DEBUG so chunk execution records (with the
    coordinator's trace/span ids) reach stderr; ``metrics_port``
    serves the worker's registry plus ``/healthz``/``/readyz`` over
    localhost HTTP; ``flight_dir`` arms the flight recorder (dump on
    crash, SIGUSR1, and clean shutdown).
    """
    if trace:
        configure_logging(json=True, level=logging.DEBUG)
    recorder: FlightRecorder | None = None
    if flight_dir is not None:
        recorder = FlightRecorder(
            process=f"worker-{worker_id or default_worker_id()}"
        )
        recorder.attach()
        install_flight_recorder(recorder, flight_dir)
    try:
        security = SecurityConfig.from_options(
            secret_file=secret_file, tls_cert=tls_cert
        )
    except ReproError as exc:
        print(f"cluster worker failed: {exc}", file=sys.stderr)
        return 1

    async def runner() -> int:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        handled: list[signal.Signals] = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
                handled.append(sig)
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass
        try:
            return await run_worker(
                host,
                port,
                engine=engine,
                workers=workers,
                worker_id=worker_id,
                heartbeat_interval=heartbeat_interval,
                stream_threshold=stream_threshold,
                throttle=throttle,
                connect_retry_s=connect_retry_s,
                security=security,
                shutdown=stop,
                health=health,
                preload=preload,
            )
        finally:
            for sig in handled:
                loop.remove_signal_handler(sig)

    # Not ready until run_worker has registered with a coordinator.
    health = HealthState()
    health.set_ready(False, "not connected")
    metrics_server: MetricsServer | None = None
    try:
        if metrics_port is not None:
            metrics_server = MetricsServer(
                default_registry(), port=metrics_port, health=health
            )
            print(
                f"cluster worker metrics on http://127.0.0.1:"
                f"{metrics_server.port}/metrics",
                flush=True,
            )
        jobs_done = asyncio.run(runner())
    except (ReproError, ConnectionError, OSError) as exc:
        print(f"cluster worker failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if metrics_server is not None:
            metrics_server.close()
        if recorder is not None and flight_dir is not None:
            with contextlib.suppress(OSError):
                path = recorder.dump_to_dir(flight_dir, reason="shutdown")
                print(f"flight recorder dump: {path}", flush=True)
    print(f"cluster worker done ({jobs_done} jobs)", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: run one worker daemon until signalled or dismissed."""
    args = build_parser().parse_args(argv)
    return run_worker_sync(
        args.host,
        args.port,
        engine=args.engine,
        workers=args.workers,
        worker_id=args.worker_id,
        heartbeat_interval=args.heartbeat_interval,
        stream_threshold=args.stream_threshold,
        throttle=args.throttle,
        connect_retry_s=args.connect_retry_s,
        secret_file=args.secret_file,
        tls_cert=args.tls_cert,
        trace=args.trace,
        metrics_port=args.metrics_port,
        flight_dir=args.flight_dir,
        preload=tuple(args.preload or ()),
    )


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
