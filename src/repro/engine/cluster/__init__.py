"""Cluster engine: a distributed :class:`Executor` over remote workers.

The fourth engine backend.  ``map(fn, items)`` with ordered results is
the whole protocol a backend must honour, so a coordinator that ships
typed job-spec chunks (:mod:`repro.service.jobcodec` — registered
callable names plus schema-checked arguments, data not code) to
worker daemons over TCP (the service layer's frame codec, extended
with ``hello``/``heartbeat``/``job``/``result``/``bye``
frames) slots in behind :func:`repro.engine.executor.get_executor`
with zero call-site changes — ``GridSimulation``, the Monte-Carlo
estimators, sweeps, the supervisor service and every ``--engine`` CLI
flag gain multi-host dispatch by naming ``"cluster"``.

* :class:`~repro.engine.cluster.coordinator.ClusterExecutor` — the
  coordinator: worker registry, heartbeat/EOF liveness, bounded
  per-worker in-flight windows, **throughput-adaptive chunk sizing**
  (per-worker EWMA jobs/sec decide how many jobs each outgoing chunk
  carries, within ``chunk_min``/``chunk_max``), requeue of chunks from
  dead or slow workers with at-most-once result acceptance (chunk ids
  are single-use, so a straggler's late result is dropped exactly
  once), ordered reassembly — including of ``result_part`` streams.
* :mod:`repro.engine.cluster.worker` — the worker daemon: registers,
  decodes job specs through a bounded LRU scheme cache (one scheme
  construction per population per worker process, not per chunk),
  executes chunks on a local engine, answers with per-job outcomes
  (streamed as bounded sub-frames above ``stream_threshold`` bytes),
  and never dies because of a job.

Parity: a cluster run produces byte-identical
:class:`~repro.grid.report.DetectionReport`'s to the serial backend —
including under worker kills mid-population or mid-stream — because
every job is a pure function of its payload and results are accepted
at most once.

Security: jobs are data, never code — the typed codec only resolves
registered callable names and schema-checked arguments, so the
coordinator port is not a remote-code-execution surface.  The plane
still rides the shared :mod:`repro.net` transport layer —
``secret_file`` enables the mutual HMAC handshake on every connection
(an unauthenticated peer never reaches the job decoder),
``tls_cert``/``tls_key`` put the coordinator behind
pinned-certificate TLS (README "Security model").
"""

from repro.engine.cluster.coordinator import (
    DEFAULT_CHUNK_MAX,
    DEFAULT_CHUNK_MIN,
    DEFAULT_CHUNK_TARGET_S,
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_HEARTBEAT_TIMEOUT,
    ClusterExecutor,
)
from repro.engine.cluster.worker import (
    default_worker_id,
    execute_chunk,
    execute_chunk_report,
    execute_payload,
    pack_outcome_parts,
    run_worker,
    run_worker_sync,
    scheme_cache,
)

__all__ = [
    "ClusterExecutor",
    "DEFAULT_CHUNK_MAX",
    "DEFAULT_CHUNK_MIN",
    "DEFAULT_CHUNK_TARGET_S",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "default_worker_id",
    "execute_chunk",
    "execute_chunk_report",
    "execute_payload",
    "pack_outcome_parts",
    "run_worker",
    "run_worker_sync",
    "scheme_cache",
]
