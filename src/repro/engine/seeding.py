"""Deterministic per-task seed derivation.

Cross-backend reproducibility requires exactly one thing: every job's
seed is fixed *before* dispatch, as a pure function of the master seed
and the job index.  :func:`derive_seed` is the grid simulator's child
rule — the formula its serial loop always used::

    child = seed * 1_000_003 + index

``1_000_003`` is prime and far larger than any population size used in
the experiments, so distinct ``(seed, index)`` pairs never collide for
``index < 1_000_003``; the mapping is also trivially computable inside
a process-pool worker without shipping any RNG state.

Note the Monte-Carlo estimators keep their own historical rule
(``seed0 + trial`` — see :mod:`repro.analysis.montecarlo`); it is just
as deterministic, and changing it would silently shift every published
eq2/fig2 number.  Don't unify the two.
"""

from __future__ import annotations

#: Prime stride separating consecutive master seeds.
SEED_STRIDE = 1_000_003


def derive_seed(seed: int, index: int) -> int:
    """The child seed for run ``index`` under master ``seed``.

    Deterministic and injective for ``0 <= index < SEED_STRIDE`` —
    distinct runs of one population (or trial sweep) never share a
    seed, and the same ``(seed, index)`` always yields the same child
    regardless of which executor backend performs the run.
    """
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    return seed * SEED_STRIDE + index
