"""Batch jobs as data: how scheme runs travel to pooled workers.

A :class:`SchemeJob` is one protocol run — ``(assignment, behavior,
seed)`` — and a :class:`SchemeBatch` bundles a scheme with a contiguous
chunk of jobs.  :func:`execute_batch` is the module-level entry point
every pooled backend dispatches; it defers to
:meth:`VerificationScheme.run_batch`, so schemes may override batching
(e.g. to share precomputed state across a chunk) without the engine
knowing.

This module is the spec-building seam between the engine and the
wire: ``execute_batch`` is a registered jobcodec callable
(``"engine.execute_batch"``) and :class:`SchemeJob`/:class:`SchemeBatch`
are registered structs (:mod:`repro.service.jobcodec`), so the exact
``SchemeBatch`` objects the serial/threads/processes backends call
directly are what the cluster backend encodes as typed job specs —
one unit of work, every backend, byte-identical results.  On the
cluster path the scheme inside a batch is *cacheable*: a worker
decodes it once per (scheme name, canonical params) and reuses it
across all chunks of a population.

:func:`run_scheme_jobs` is the one dispatch path every layer uses:
chunk the jobs, map the batches over an executor, flatten in order.
Chunking never affects results — only how work is distributed — so the
serial, thread, process and cluster backends return identical result
lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.cheating.strategies import Behavior
from repro.engine.executor import Executor, SerialExecutor, resolved_executor
from repro.exceptions import EngineError
from repro.tasks.result import TaskAssignment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.scheme import SchemeRunResult, VerificationScheme


@dataclass(frozen=True)
class SchemeJob:
    """One scheme execution: a task, a behaviour and its derived seed."""

    assignment: TaskAssignment
    behavior: Behavior
    seed: int = 0


@dataclass(frozen=True)
class SchemeBatch:
    """A serializable unit of work: one scheme, one chunk of jobs.

    Registered with the jobcodec (struct ``"scheme_batch"``), so a
    batch crosses the cluster wire as typed data — the scheme travels
    as name + canonical params, never as code.
    """

    scheme: "VerificationScheme"
    jobs: tuple[SchemeJob, ...]


def execute_batch(batch: SchemeBatch) -> list["SchemeRunResult"]:
    """Run one batch (worker-side entry point for process pools)."""
    return batch.scheme.run_batch(batch.jobs)


def split_batches(
    jobs: Sequence[SchemeJob], batch_size: int
) -> list[tuple[SchemeJob, ...]]:
    """Chunk ``jobs`` into contiguous tuples of ``<= batch_size``."""
    if batch_size < 1:
        raise EngineError(f"batch_size must be >= 1, got {batch_size}")
    return [
        tuple(jobs[start : start + batch_size])
        for start in range(0, len(jobs), batch_size)
    ]


def _auto_batch_size(n_jobs: int, executor: Executor) -> int:
    """Aim for ~4 batches per worker so stragglers rebalance.

    The cluster backend gets ~16 batches per worker instead: its
    coordinator regroups map items into throughput-sized chunks per
    worker, and that adaptation needs finer-grained items to work
    with.  Chunking affects scheduling only, never results.
    """
    if isinstance(executor, SerialExecutor):
        return max(1, n_jobs)
    if executor.name == "cluster":
        return max(1, math.ceil(n_jobs / (executor.workers * 16)))
    return max(1, math.ceil(n_jobs / (executor.workers * 4)))


def run_scheme_jobs(
    scheme: "VerificationScheme",
    jobs: Sequence[SchemeJob],
    engine: str | Executor = "serial",
    workers: int | None = None,
    batch_size: int | None = None,
) -> list["SchemeRunResult"]:
    """Run every job through ``scheme`` on the chosen backend.

    Results are returned in job order regardless of backend, and are
    bit-for-bit identical across backends for a fixed job list (each
    run's randomness is fully determined by its job's seed).  When
    ``engine`` is a name, the executor is created for this call and
    closed afterwards; pass an :class:`Executor` instance to reuse a
    warm pool across calls.
    """
    with resolved_executor(engine, workers) as executor:
        if batch_size is None:
            batch_size = _auto_batch_size(len(jobs), executor)
        chunks = split_batches(list(jobs), batch_size)
        batches = [SchemeBatch(scheme=scheme, jobs=chunk) for chunk in chunks]
        results: list["SchemeRunResult"] = []
        for batch_results in executor.map(execute_batch, batches):
            results.extend(batch_results)
        return results
