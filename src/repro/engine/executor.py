"""Execution backends: one protocol, three implementations.

An :class:`Executor` maps a function over a list of items and returns
the results *in submission order* — that ordering guarantee is what
lets the grid simulator, the Monte-Carlo estimators and the chunked
Merkle builder produce byte-identical output on every backend.

* :class:`SerialExecutor` — plain in-process loop; zero overhead, the
  reference semantics every other backend must match.
* :class:`ThreadPoolExecutor` — ``concurrent.futures`` threads.  No
  pickling constraints; wins when the mapped function releases the GIL
  (hashlib does for large buffers) or the workload is I/O-bound.
* :class:`ProcessPoolExecutor` — ``concurrent.futures`` processes.
  Requires the mapped function to be a module-level callable and every
  item/result to be picklable; wins on CPU-bound populations once the
  per-item work amortizes the IPC cost.

Pools are created lazily on first :meth:`Executor.map` and reused until
:meth:`Executor.close`, so one executor can serve a whole sweep without
re-spawning workers per population.  All three are context managers.
"""

from __future__ import annotations

import abc
import contextlib
import os
from concurrent import futures as _futures
from typing import Any, Callable, Iterator, Sequence

from repro.exceptions import EngineError
from repro.obs.metrics import default_registry
from repro.obs.spans import span as _span
from repro.obs.trace import current_trace

#: Registry names accepted by :func:`get_executor`.
ENGINE_NAMES = ("serial", "threads", "processes", "cluster")

# Engine instruments live on the process-global registry (an executor
# has no natural owner to scope to) and are created on first map(),
# not at import.  Metering is per-map, not per-item: one counter add
# for a whole batch keeps the engine hot path unmetered.
_metrics_handles: tuple | None = None


def _engine_metrics():
    global _metrics_handles
    if _metrics_handles is None:
        reg = default_registry()
        _metrics_handles = (
            reg.counter(
                "repro_engine_tasks_total",
                "Engine map items, by backend and event",
                ("engine", "event"),
            ),
            reg.gauge(
                "repro_engine_inflight_maps",
                "map() calls currently executing, by backend "
                "(saturation proxy)",
                ("engine",),
            ),
        )
    return _metrics_handles


@contextlib.contextmanager
def _metered_map(engine: str, n_items: int) -> Iterator[None]:
    """Count one map() batch: items submitted/completed + inflight.

    When the caller has a trace bound, the whole batch is also
    bracketed by an ``engine.map`` span; untraced maps pay zero span
    cost (pinned by ``bench_obs_overhead``).
    """
    tasks, inflight = _engine_metrics()
    tasks.labels(engine=engine, event="submitted").inc(n_items)
    inflight.labels(engine=engine).inc()
    try:
        if current_trace() is not None:
            with _span(
                "engine.map", attributes={"engine": engine, "items": n_items}
            ):
                yield
        else:
            yield
        tasks.labels(engine=engine, event="completed").inc(n_items)
    finally:
        inflight.labels(engine=engine).dec()


def default_workers() -> int:
    """Worker count matching the CPUs this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class Executor(abc.ABC):
    """Ordered-map execution backend (the engine protocol)."""

    #: Registry name ("serial", "threads", "processes").
    name: str = "executor"

    @property
    @abc.abstractmethod
    def workers(self) -> int:
        """Degree of parallelism this backend aims for (>= 1)."""

    @abc.abstractmethod
    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every item; results in submission order."""

    @property
    def futures_pool(self) -> _futures.Executor | None:
        """The underlying ``concurrent.futures`` pool, if one exists.

        This is the asyncio bridge: the grid service hands this pool to
        ``loop.run_in_executor`` so CPU-bound verification leaves the
        event loop without a second layer of worker management.
        ``None`` means the backend has no pool (serial) and callers
        should run the work inline.
        """
        return None

    def prewarm(self) -> None:
        """Spawn pooled workers ahead of the first :meth:`map`.

        Pools are lazy by default, which is right for one-shot use but
        wrong for a long-lived daemon: the first chunk to arrive would
        pay the full pool startup (process fork + interpreter init) on
        the request path.  Backends with a pool override this to spawn
        and exercise every worker up front; the default is a no-op so
        pool-less backends (serial, cluster coordinator) stay lazy.
        """

    def close(self) -> None:
        """Release pooled workers (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """The reference backend: a plain loop in the calling thread."""

    name = "serial"

    @property
    def workers(self) -> int:
        return 1

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> list[Any]:
        with _metered_map(self.name, len(items)):
            return [fn(item) for item in items]


def _noop() -> None:
    """Module-level no-op task (picklable) used by :meth:`prewarm`."""


class _PooledExecutor(Executor):
    """Shared lazy-pool plumbing for the thread/process backends."""

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self._workers = workers or default_workers()
        self._pool: _futures.Executor | None = None
        self._closed = False

    @property
    def workers(self) -> int:
        return self._workers

    @abc.abstractmethod
    def _make_pool(self) -> _futures.Executor:
        """Build the underlying ``concurrent.futures`` pool."""

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> list[Any]:
        if self._closed:
            raise EngineError(f"{self.name} executor already closed")
        if not items:
            return []
        if self._pool is None:
            self._pool = self._make_pool()
        with _metered_map(self.name, len(items)):
            return list(self._pool.map(fn, items))

    @property
    def futures_pool(self) -> _futures.Executor:
        if self._closed:
            raise EngineError(f"{self.name} executor already closed")
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def prewarm(self) -> None:
        """Spawn the pool and run one no-op on every worker slot.

        ``concurrent.futures`` pools spawn workers on demand, so merely
        creating the pool leaves process startup on the first real
        task's critical path.  Submitting ``workers`` no-ops and
        waiting for all of them forces every worker fully up (for
        processes: forked, interpreter initialised, ready on the call
        queue) before this returns.  Idempotent and cheap on a pool
        that is already warm.
        """
        if self._closed:
            raise EngineError(f"{self.name} executor already closed")
        if self._pool is None:
            self._pool = self._make_pool()
        done = [self._pool.submit(_noop) for _ in range(self._workers)]
        for future in done:
            future.result()

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadPoolExecutor(_PooledExecutor):
    """Thread-backed executor; no pickling constraints."""

    name = "threads"

    def _make_pool(self) -> _futures.Executor:
        return _futures.ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-engine"
        )


class ProcessPoolExecutor(_PooledExecutor):
    """Process-backed executor for CPU-bound batches.

    Mapped functions must be module-level and all items/results
    picklable — the engine's batch jobs
    (:func:`repro.engine.jobs.execute_batch`) are designed for exactly
    this constraint.
    """

    name = "processes"

    def _make_pool(self) -> _futures.Executor:
        return _futures.ProcessPoolExecutor(max_workers=self._workers)


def get_executor(
    engine: str | Executor = "serial",
    workers: int | None = None,
    **options: object,
) -> Executor:
    """Resolve an engine spec to an :class:`Executor` instance.

    ``engine`` may be an existing executor (returned unchanged, so
    pools can be shared across calls — ``workers`` is then ignored) or
    one of the registry names ``"serial"``, ``"threads"``,
    ``"processes"``, ``"cluster"``.  For ``"cluster"`` the executor
    self-hosts ``workers`` local worker daemons, and ``options`` are
    forwarded to :class:`~repro.engine.cluster.ClusterExecutor` —
    the tuning surface (``chunk_min``/``chunk_max``,
    ``stream_threshold``, ``job_timeout``, …) and the transport
    security material (``secret_file``/``tls_cert``/``tls_key``,
    README "Security model") reach the scheduler without every
    dispatch site learning cluster-specific arguments.
    The in-process backends take no options; passing any raises
    :class:`EngineError` rather than silently ignoring a knob.  Build
    a ``ClusterExecutor`` directly to attach external workers on
    other hosts.
    """
    if isinstance(engine, Executor):
        if options:
            raise EngineError(
                "engine options cannot be applied to an existing executor "
                f"instance: {sorted(options)}"
            )
        return engine
    if engine not in ENGINE_NAMES:
        raise EngineError(
            f"unknown engine {engine!r}; expected one of {ENGINE_NAMES} "
            "or an Executor instance"
        )
    if engine == "cluster":
        # Imported lazily: the cluster backend rides the service-layer
        # codec, which the in-process backends must not depend on.
        from repro.engine.cluster.coordinator import ClusterExecutor

        try:
            return ClusterExecutor(workers=workers, **options)  # type: ignore[arg-type]
        except TypeError as exc:
            raise EngineError(f"bad cluster engine options: {exc}") from exc
    if options:
        raise EngineError(
            f"engine {engine!r} accepts no extra options, got "
            f"{sorted(options)}"
        )
    if engine == "serial":
        return SerialExecutor()
    if engine == "threads":
        return ThreadPoolExecutor(workers=workers)
    return ProcessPoolExecutor(workers=workers)


@contextlib.contextmanager
def resolved_executor(
    engine: str | Executor = "serial",
    workers: int | None = None,
    **options: object,
) -> Iterator[Executor]:
    """Resolve an engine spec for one scoped use.

    The single ownership rule for every dispatch site: an executor
    created here (from a name) is closed on exit; an :class:`Executor`
    instance passed in is the caller's warm pool and is left open.
    ``options`` pass through to :func:`get_executor`.
    """
    executor = get_executor(engine, workers, **options)
    try:
        yield executor
    finally:
        if executor is not engine:
            executor.close()
