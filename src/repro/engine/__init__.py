"""Pluggable execution engine: batched, parallel scheme runs.

The paper's setting is population-scale — a supervisor farming
``D = |domain|`` tasks out to thousands of participants — but a
reproduction that executes every participant in a Python for-loop is
bound to one core.  This package decouples *what* runs (scheme
protocol runs, Merkle subtree builds) from *where* it runs, behind one
small protocol:

:class:`~repro.engine.executor.Executor`
    ``map(fn, items) -> list`` with results in submission order, plus
    ``close()``/context-manager lifetime.  Three backends:

    * ``serial`` — :class:`~repro.engine.executor.SerialExecutor`, the
      reference loop (zero overhead, always available);
    * ``threads`` — :class:`~repro.engine.executor.ThreadPoolExecutor`,
      no pickling constraints, wins when the work releases the GIL;
    * ``processes`` —
      :class:`~repro.engine.executor.ProcessPoolExecutor`, true
      multi-core for CPU-bound populations; work units must pickle.

:class:`~repro.engine.jobs.SchemeJob` / :func:`~repro.engine.jobs.run_scheme_jobs`
    The batching layer.  A job is ``(assignment, behavior, seed)``;
    jobs are chunked into picklable
    :class:`~repro.engine.jobs.SchemeBatch` units executed via
    :meth:`~repro.core.scheme.VerificationScheme.run_batch`, then
    flattened back in order.  Chunking affects only scheduling, never
    results.

:func:`~repro.engine.seeding.derive_seed`
    The grid simulator's ``seed * 1_000_003 + index`` child-seed rule
    (the Monte-Carlo estimators keep their historical ``seed0 +
    trial``).  Because every run's randomness is a pure function of
    its job seed, fixed before dispatch, all backends produce
    byte-identical :class:`~repro.grid.report.DetectionReport`'s — the
    parity tests pin this.

:class:`~repro.engine.cluster.ClusterExecutor` (``"cluster"``)
    The distributed backend: a coordinator shards picklable jobs
    across remote worker daemons over TCP (heartbeats, bounded
    in-flight windows, requeue from dead/slow workers, at-most-once
    results).  Scheduling is throughput-adaptive — per-worker EWMA
    rates size each outgoing chunk within ``chunk_min``/``chunk_max``
    — and giant results stream back as bounded ``result_part`` frames
    (``stream_threshold``); :func:`~repro.engine.executor.get_executor`
    forwards these knobs as keyword options.  See
    :mod:`repro.engine.cluster`.  Imported lazily so the in-process
    backends stay free of the service layer.

Every population-shaped entry point threads an ``engine=`` option down
here: ``GridSimulation`` / ``run_population`` (one job per
participant), ``analysis.montecarlo`` (one job per trial),
``analysis.sweep`` (one job per grid point), the CLI
(``--engine serial|threads|processes|cluster --workers N``) and the
chunked Merkle root builder (:func:`repro.merkle.tree.chunked_root`).
"""

from repro.engine.executor import (
    ENGINE_NAMES,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    default_workers,
    get_executor,
    resolved_executor,
)
from repro.engine.jobs import (
    SchemeBatch,
    SchemeJob,
    execute_batch,
    run_scheme_jobs,
    split_batches,
)
from repro.engine.seeding import SEED_STRIDE, derive_seed


def __getattr__(name: str):
    # Lazy re-export: repro.engine.cluster pulls in the service codec,
    # which the lightweight in-process backends must not load eagerly.
    if name == "ClusterExecutor":
        from repro.engine.cluster.coordinator import ClusterExecutor

        return ClusterExecutor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ENGINE_NAMES",
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "ClusterExecutor",
    "default_workers",
    "get_executor",
    "resolved_executor",
    "SchemeJob",
    "SchemeBatch",
    "execute_batch",
    "run_scheme_jobs",
    "split_batches",
    "SEED_STRIDE",
    "derive_seed",
]
