"""Participant behaviours: honest, semi-honest cheating, malicious.

A :class:`Behavior` turns a :class:`~repro.tasks.result.TaskAssignment`
into the vector of leaf payloads the participant will commit to,
charging only the work it *actually* performed to the ledger.  The
supervisor never sees behaviours — only commitments, proofs and
reports — which is exactly the paper's threat model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cheating.guessing import GuessModel, ZeroGuess
from repro.exceptions import TaskError
from repro.tasks.result import TaskAssignment
from repro.utils.prf import prf_int


@dataclass
class ComputedWork:
    """What a behaviour produced for an assignment.

    ``leaf_payloads[i]`` is what goes into Merkle leaf ``i`` (the true
    ``f(x_i)`` for honestly-computed indices, a fabrication otherwise).
    ``honest_indices`` is ground truth for analysis only.
    """

    leaf_payloads: list[bytes]
    honest_indices: set[int] = field(default_factory=set)

    @property
    def honesty_ratio(self) -> float:
        """Realized ``r = |D'| / |D|``."""
        if not self.leaf_payloads:
            return 1.0
        return len(self.honest_indices) / len(self.leaf_payloads)


class Behavior(abc.ABC):
    """Strategy deciding how an assignment's results are produced."""

    #: Human-readable label used in reports.
    name: str = "behavior"

    @abc.abstractmethod
    def produce(
        self,
        assignment: TaskAssignment,
        evaluate: Callable[[Any], bytes],
        salt: bytes = b"",
    ) -> ComputedWork:
        """Produce the leaf payload vector for the assignment.

        ``evaluate`` is the (usually metered) evaluation of ``f``;
        behaviours must call it exactly once per honestly-computed
        input so ledgers reflect real work.  ``salt`` varies the
        fabrication stream across retries (regrinding, §4.2).
        """

    def corrupt_report(self, report: str | None, index: int) -> str | None:
        """Hook for the malicious model's screener corruption (§2.2)."""
        return report


class HonestBehavior(Behavior):
    """Computes ``f`` on every input — the paper's ``r = 1``."""

    name = "honest"

    def produce(
        self,
        assignment: TaskAssignment,
        evaluate: Callable[[Any], bytes],
        salt: bytes = b"",
    ) -> ComputedWork:
        payloads = [evaluate(assignment.domain[i]) for i in assignment.domain.indices()]
        return ComputedWork(
            leaf_payloads=payloads,
            honest_indices=set(assignment.domain.indices()),
        )


class SemiHonestCheater(Behavior):
    """Evaluates a fraction ``r`` of the domain; fabricates the rest.

    This is the paper's semi-honest model (§2.2): the cheap substitute
    ``f̌`` is a :class:`~repro.cheating.guessing.GuessModel` (a random
    guess by default).  The honestly-computed subset ``D'`` is chosen
    by a deterministic PRF permutation keyed on ``(task_id, salt)``,
    mirroring a cheater who skips an arbitrary subset — CBS's uniform
    sampling makes the choice of *which* inputs to skip irrelevant.

    Parameters
    ----------
    honesty_ratio:
        Target ``r = |D'| / |D|`` in ``[0, 1]``.
    guesser:
        Fabrication model for skipped inputs (default: random bytes,
        ``q ≈ 0``).
    selection:
        ``"spread"`` (PRF-pseudorandom subset, default) or ``"prefix"``
        (compute the first ``⌈rn⌉`` inputs — a lazy cheater who stops
        early).
    """

    def __init__(
        self,
        honesty_ratio: float,
        guesser: GuessModel | None = None,
        selection: str = "spread",
    ) -> None:
        if not 0.0 <= honesty_ratio <= 1.0:
            raise TaskError(f"honesty_ratio must be in [0, 1], got {honesty_ratio}")
        if selection not in ("spread", "prefix"):
            raise TaskError(f"selection must be 'spread' or 'prefix', got {selection!r}")
        self.honesty_ratio = honesty_ratio
        self.guesser = guesser or ZeroGuess()
        self.selection = selection
        self.name = f"semi-honest(r={honesty_ratio:g}, q={self.guesser.q:g})"

    def _choose_honest(self, n: int, task_id: str, salt: bytes) -> set[int]:
        """Pick ``round(r·n)`` indices to compute honestly."""
        n_honest = round(self.honesty_ratio * n)
        n_honest = min(max(n_honest, 0), n)
        if self.selection == "prefix":
            return set(range(n_honest))
        # PRF-keyed partial Fisher–Yates: uniform n_honest-subset.
        key = (b"dprime", task_id.encode("utf-8"), salt)
        order = list(range(n))
        for i in range(n_honest):
            j = i + prf_int(*key, i.to_bytes(8, "big"), bound=n - i)
            order[i], order[j] = order[j], order[i]
        return set(order[:n_honest])

    def produce(
        self,
        assignment: TaskAssignment,
        evaluate: Callable[[Any], bytes],
        salt: bytes = b"",
    ) -> ComputedWork:
        n = assignment.n_inputs
        honest = self._choose_honest(n, assignment.task_id, salt)
        result_size = assignment.function.result_size
        payloads: list[bytes] = []
        for i in range(n):
            x = assignment.domain[i]
            if i in honest:
                payloads.append(evaluate(x))
            else:
                payloads.append(
                    self.guesser.guess(
                        index=i,
                        x=x,
                        # Zero-cost oracle: realizes lucky guesses only.
                        true_result=lambda x=x: assignment.function.evaluate(x),
                        result_size=result_size,
                        salt=salt,
                    )
                )
        return ComputedWork(leaf_payloads=payloads, honest_indices=honest)


class ColludingCheater(SemiHonestCheater):
    """Semi-honest cheaters that coordinate their fabrications.

    The classic attack on replication (BOINC's known weakness): if the
    replicas of a task collude, their fabricated results *agree*, so
    majority voting sees consensus and accepts.  Collusion is modelled
    by deriving fabrications and the skipped subset from a shared
    ``cartel_key`` instead of the per-run salt — two colluding
    instances given the same assignment produce byte-identical leaf
    vectors regardless of the scheme's seed.

    Against CBS the coordination buys nothing: the supervisor checks
    results against ``f`` itself, not against other participants, so a
    colluding cartel is caught at exactly the Eq. (2) rate.  The E7
    comparison and the unit tests pin both facts.
    """

    def __init__(
        self,
        honesty_ratio: float,
        cartel_key: bytes,
        guesser: GuessModel | None = None,
    ) -> None:
        super().__init__(honesty_ratio, guesser=guesser, selection="spread")
        self.cartel_key = cartel_key
        self.name = (
            f"colluding(r={honesty_ratio:g}, cartel={cartel_key.hex()[:8]})"
        )

    def produce(
        self,
        assignment: TaskAssignment,
        evaluate: Callable[[Any], bytes],
        salt: bytes = b"",
    ) -> ComputedWork:
        # Ignore the per-run salt: every cartel member fabricates from
        # the shared key, so replicas agree byte-for-byte.
        return super().produce(assignment, evaluate, salt=self.cartel_key)


class MaliciousBehavior(Behavior):
    """Computes everything but sabotages the screener step (§2.2).

    The malicious participant pays the full computation cost yet
    reports ``S(x, z)`` for random ``z`` — disrupting the computation
    rather than saving work.  Its Merkle commitments are honest, so CBS
    accepts it; defence requires checking reports, not commitments
    (the paper scopes itself to the semi-honest model for this reason,
    and experiment E7 demonstrates the gap).
    """

    name = "malicious"

    def __init__(self, corruption_rate: float = 1.0) -> None:
        if not 0.0 < corruption_rate <= 1.0:
            raise TaskError(
                f"corruption_rate must be in (0, 1], got {corruption_rate}"
            )
        self.corruption_rate = corruption_rate

    def produce(
        self,
        assignment: TaskAssignment,
        evaluate: Callable[[Any], bytes],
        salt: bytes = b"",
    ) -> ComputedWork:
        payloads = [evaluate(assignment.domain[i]) for i in assignment.domain.indices()]
        return ComputedWork(
            leaf_payloads=payloads,
            honest_indices=set(assignment.domain.indices()),
        )

    def corrupt_report(self, report: str | None, index: int) -> str | None:
        from repro.utils.prf import prf_coin

        flip = prf_coin(
            b"malicious", index.to_bytes(8, "big"), probability=self.corruption_rate
        )
        if not flip:
            return report
        if report is None:
            # Fabricate an "interesting" report out of thin air.
            return f"forged:{index}"
        # Suppress a genuine report.
        return None
