"""Adversary models: guessing power and cheating behaviours (paper §2.2).

The paper's two cheating models are both implemented:

* **Semi-honest** (:class:`~repro.cheating.strategies.SemiHonestCheater`)
  — evaluates ``f`` honestly on a fraction ``r`` of the domain and
  substitutes cheap guesses elsewhere; the focus of the paper.
* **Malicious** (:class:`~repro.cheating.strategies.MaliciousBehavior`)
  — computes everything but corrupts the screener step, returning
  ``S(x, z)`` for random ``z``.

Guessing power (the paper's ``q``) is factored into
:class:`~repro.cheating.guessing.GuessModel` objects so Eq. (2) sweeps
can vary ``q`` independently of ``r``, and the NI-CBS regrinding attack
lives in :mod:`repro.cheating.regrind`.
"""

from repro.cheating.guessing import (
    BernoulliGuess,
    GuessModel,
    UniformValueGuess,
    ZeroGuess,
)
from repro.cheating.strategies import (
    Behavior,
    ColludingCheater,
    HonestBehavior,
    MaliciousBehavior,
    SemiHonestCheater,
)

__all__ = [
    "GuessModel",
    "ZeroGuess",
    "BernoulliGuess",
    "UniformValueGuess",
    "Behavior",
    "HonestBehavior",
    "ColludingCheater",
    "SemiHonestCheater",
    "MaliciousBehavior",
]
