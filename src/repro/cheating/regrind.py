"""The NI-CBS regrinding attack (paper §4.2).

Because NI-CBS derives the sample indices from the committed root, a
cheater who computed only ``D' ⊂ D`` can *grind*: rebuild the Merkle
tree with fresh filler values for the skipped inputs until the derived
samples all land inside ``D'`` — the paper's three-step strategy:

1. build the tree with random numbers for ``x ∈ D − D'``;
2. derive the samples from the root; if all fall in ``D'``, done;
3. otherwise pick new random fillers and repeat.

A rational attacker does step 3 *incrementally*: changing a single
filler leaf re-randomizes the root at a cost of only ``O(log n)``
hashes (update the leaf-to-root path), so each attempt costs
``m·C_g + O(log n)·C_hash`` — which is why the paper's Eq. (5) defence
prices ``g`` rather than counting on rebuild costs::

    (1/r^m) · m · C_g  >=  n · C_f

Expected attempts are ``1/r^m``.  :func:`run_regrind_attack` executes
the strategy (incremental by default; ``incremental=False`` gives the
naive full-rebuild variant for the E5 ablation), metering every cost,
and returns the attack transcript plus the economics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accounting import CostLedger
from repro.cheating.strategies import SemiHonestCheater
from repro.core.ni_cbs import derive_sample_indices
from repro.core.protocol import NICBSSubmissionMsg, SampleProof
from repro.exceptions import SchemeConfigurationError
from repro.merkle.hashing import CountingHash, HashFunction, get_hash
from repro.merkle.proof import AuthenticationPath
from repro.merkle.tree import (
    LeafEncoding,
    combine,
    empty_leaf_digest,
    encode_leaf,
)
from repro.tasks.result import TaskAssignment
from repro.utils.bitmath import next_power_of_two


class _MutableMerkleTree:
    """A Merkle tree supporting O(log n) single-leaf updates.

    The attacker's workhorse: levels are stored bottom-up as plain
    lists; :meth:`update_leaf` rewrites one leaf digest and recomputes
    its path to the root.  Hash costs flow through the (counting) hash
    function handed in.
    """

    def __init__(
        self,
        payloads: list[bytes],
        hash_fn: HashFunction,
        leaf_encoding: LeafEncoding,
    ) -> None:
        self.hash_fn = hash_fn
        self.leaf_encoding = leaf_encoding
        self.n_leaves = len(payloads)
        padded = next_power_of_two(self.n_leaves)
        leaf_row = [
            encode_leaf(payload, hash_fn, leaf_encoding) for payload in payloads
        ]
        pad = empty_leaf_digest(hash_fn)
        leaf_row.extend([pad] * (padded - self.n_leaves))
        self.levels = [leaf_row]
        row = leaf_row
        while len(row) > 1:
            row = [
                combine(hash_fn, row[i], row[i + 1])
                for i in range(0, len(row), 2)
            ]
            self.levels.append(row)

    @property
    def root(self) -> bytes:
        return self.levels[-1][0]

    def update_leaf(self, index: int, payload: bytes) -> None:
        """Replace leaf ``index`` and rehash its path (O(log n))."""
        digest = encode_leaf(payload, self.hash_fn, self.leaf_encoding)
        self.levels[0][index] = digest
        node = index
        for height in range(1, len(self.levels)):
            pair = node & ~1
            parent = combine(
                self.hash_fn,
                self.levels[height - 1][pair],
                self.levels[height - 1][pair + 1],
            )
            node >>= 1
            self.levels[height][node] = parent

    def auth_path(self, index: int) -> AuthenticationPath:
        siblings = []
        node = index
        for height in range(len(self.levels) - 1):
            siblings.append(self.levels[height][node ^ 1])
            node >>= 1
        return AuthenticationPath(
            leaf_index=index,
            siblings=siblings,
            n_leaves=self.n_leaves,
            leaf_encoding=self.leaf_encoding,
        )


@dataclass
class RegrindResult:
    """Transcript and economics of one regrinding attack."""

    succeeded: bool
    attempts: int
    honesty_ratio: float
    n_samples: int
    #: All attack-side costs (honest subset + rebuilds + g evaluations).
    ledger: CostLedger = field(default_factory=CostLedger)
    #: The winning submission, ready to feed a verifier (None if failed).
    submission: NICBSSubmissionMsg | None = None
    #: Cost of computing the task honestly (n · C_f) for comparison.
    honest_task_cost: float = 0.0

    @property
    def attack_cost(self) -> float:
        """Total compute the attacker actually spent."""
        return self.ledger.total_compute_cost

    @property
    def profitable(self) -> bool:
        """Whether cheating beat honest computation (Eq. 5 violated)."""
        return self.succeeded and self.attack_cost < self.honest_task_cost


def run_regrind_attack(
    assignment: TaskAssignment,
    honesty_ratio: float,
    n_samples: int,
    sample_hash: HashFunction | None = None,
    hash_fn: HashFunction | None = None,
    leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
    max_attempts: int = 100_000,
    seed: int = 0,
    incremental: bool = True,
) -> RegrindResult:
    """Execute the §4.2 grinding strategy against NI-CBS.

    The honest subset ``D'`` is computed once (charged at ``r·n·C_f``);
    every further attempt redraws filler value(s), updates the tree and
    re-derives the samples (``m`` metered evaluations of ``g``).

    ``incremental=True`` (default) changes one filler leaf per attempt
    — the rational attacker's ``O(log n)``-hash regrind.
    ``incremental=False`` redraws *all* fillers and rebuilds the whole
    tree per attempt, the literal reading of the paper's step 3 (used
    by the E5 ablation to show why Eq. 5 cannot lean on rebuild costs).
    """
    if not 0.0 < honesty_ratio <= 1.0:
        raise SchemeConfigurationError(
            f"honesty_ratio must be in (0, 1], got {honesty_ratio}"
        )
    if max_attempts < 1:
        raise SchemeConfigurationError(
            f"max_attempts must be >= 1, got {max_attempts}"
        )
    ledger = CostLedger()
    tree_hash = CountingHash(hash_fn or get_hash(), ledger)
    g = CountingHash(sample_hash or get_hash("sha256"), ledger)
    n = assignment.n_inputs

    # Phase 1: honest work on D' (done once, reused every attempt).
    base_salt = seed.to_bytes(8, "big")
    cheater = SemiHonestCheater(honesty_ratio)

    def metered_evaluate(x):
        ledger.charge_evaluation(assignment.function.cost)
        return assignment.function.evaluate(x)

    base_work = cheater.produce(assignment, metered_evaluate, salt=base_salt)
    honest = base_work.honest_indices
    fillers = sorted(set(range(n)) - honest)

    result = RegrindResult(
        succeeded=False,
        attempts=0,
        honesty_ratio=len(honest) / n,
        n_samples=n_samples,
        ledger=ledger,
        honest_task_cost=n * assignment.function.cost,
    )

    def fresh_guess(index: int, salt: bytes) -> bytes:
        return cheater.guesser.guess(
            index=index,
            x=assignment.domain[index],
            true_result=lambda: b"",  # ZeroGuess never calls it
            result_size=assignment.function.result_size,
            salt=salt,
        )

    def finish(tree: _MutableMerkleTree, samples: list[int]) -> None:
        proofs = tuple(
            SampleProof(
                index=index,
                claimed_result=base_work.leaf_payloads[index],
                path=tree.auth_path(index),
            )
            for index in samples
        )
        result.succeeded = True
        result.submission = NICBSSubmissionMsg(
            task_id=assignment.task_id,
            root=tree.root,
            n_leaves=n,
            proofs=proofs,
        )

    if incremental:
        tree = _MutableMerkleTree(
            list(base_work.leaf_payloads), tree_hash, leaf_encoding
        )
        for attempt in range(max_attempts):
            result.attempts = attempt + 1
            ledger.bump("regrind_attempts")
            if attempt > 0:
                if not fillers:
                    break  # r = 1: nothing to regrind; first try decides
                target = fillers[(attempt - 1) % len(fillers)]
                tree.update_leaf(
                    target,
                    fresh_guess(target, base_salt + attempt.to_bytes(8, "big")),
                )
            samples = derive_sample_indices(
                tree.root, n=n, m=n_samples, sample_hash=g
            )
            if all(index in honest for index in samples):
                finish(tree, samples)
                return result
        return result

    # Naive variant: redraw every filler and rebuild the whole tree.
    for attempt in range(max_attempts):
        result.attempts = attempt + 1
        ledger.bump("regrind_attempts")
        attempt_salt = base_salt + attempt.to_bytes(8, "big")
        payloads = [
            base_work.leaf_payloads[i]
            if i in honest
            else fresh_guess(i, attempt_salt)
            for i in range(n)
        ]
        tree = _MutableMerkleTree(payloads, tree_hash, leaf_encoding)
        samples = derive_sample_indices(
            tree.root, n=n, m=n_samples, sample_hash=g
        )
        if all(index in honest for index in samples):
            finish(tree, samples)
            return result
    return result


def expected_regrind_attempts(honesty_ratio: float, n_samples: int) -> float:
    """The paper's ``1/r^m`` expected attempt count (§4.2)."""
    if not 0.0 < honesty_ratio <= 1.0:
        raise SchemeConfigurationError(
            f"honesty_ratio must be in (0, 1], got {honesty_ratio}"
        )
    return honesty_ratio ** (-n_samples)
