"""Guess models: how a cheater fabricates skipped results.

Theorem 3 of the paper parameterizes everything by
``q = Pr_guess(Φ(L) = f(x))`` — the probability that a fabricated leaf
happens to equal the true result.  A :class:`GuessModel` produces the
fabricated bytes for a skipped input and *knows its own q* so analyses
can be checked against Eq. (2).

:class:`BernoulliGuess` is the workhorse for validation experiments: it
produces the *correct* result with exactly probability ``q`` (decided
by a deterministic PRF coin keyed on the input), which realizes the
paper's abstraction directly without needing astronomically many
Monte-Carlo trials to see rare lucky guesses.  The simulation device is
explicit: obtaining the correct bytes requires calling the oracle
(``true_result``), but *no evaluation cost is charged* — a lucky guess
is free by definition.
"""

from __future__ import annotations

import abc
from typing import Any, Callable

from repro.exceptions import TaskError
from repro.utils.prf import prf_bytes, prf_coin, prf_int


class GuessModel(abc.ABC):
    """Produces fabricated result bytes for inputs the cheater skipped."""

    #: The model's own q (probability a guess equals the true result).
    q: float = 0.0

    @abc.abstractmethod
    def guess(
        self,
        index: int,
        x: Any,
        true_result: Callable[[], bytes],
        result_size: int,
        salt: bytes = b"",
    ) -> bytes:
        """Fabricate a result for input ``x`` at leaf ``index``.

        ``true_result`` is a zero-cost oracle used only to *realize* a
        lucky guess (see module docstring); honest models never call it.
        ``salt`` lets retrying attackers (regrinding, §4.2) draw fresh
        fabrications.
        """


class ZeroGuess(GuessModel):
    """``q ≈ 0``: random bytes, never equal to the true result in practice.

    Matches one-way workloads (password search) where the output space
    is 2^128 or larger — the paper's ``q ≈ 0`` curve in Fig. 2.
    """

    q = 0.0

    def guess(
        self,
        index: int,
        x: Any,
        true_result: Callable[[], bytes],
        result_size: int,
        salt: bytes = b"",
    ) -> bytes:
        return prf_bytes(
            b"zero-guess", salt, index.to_bytes(8, "big"), n_bytes=result_size
        )


class BernoulliGuess(GuessModel):
    """Guess correctly with exactly probability ``q`` (PRF coin).

    The direct realization of Theorem 3's abstraction.  The coin is
    keyed on ``(index, salt)`` so repeated protocol runs with different
    salts re-flip, while a single run is internally consistent.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 <= q <= 1.0:
            raise TaskError(f"q must be in [0, 1], got {q}")
        self.q = q

    def guess(
        self,
        index: int,
        x: Any,
        true_result: Callable[[], bytes],
        result_size: int,
        salt: bytes = b"",
    ) -> bytes:
        key = (b"bernoulli-guess", salt, index.to_bytes(8, "big"))
        if self.q > 0.0 and prf_coin(*key, probability=self.q):
            return true_result()
        wrong = prf_bytes(*key, b"wrong", n_bytes=result_size)
        # Pathological collision guard: if the PRF bytes happen to equal
        # the truth, flip the last byte so "wrong" really is wrong.
        truth = true_result() if self.q > 0.0 else None
        if truth is not None and wrong == truth:
            wrong = wrong[:-1] + bytes([wrong[-1] ^ 0xFF])
        return wrong


class UniformValueGuess(GuessModel):
    """Guess uniformly over a small output alphabet.

    For boolean or low-resolution outputs (SignalSearch, quantized
    docking scores) the natural cheater draws a uniform symbol; ``q``
    is then ``1/|alphabet|``.  Unlike :class:`BernoulliGuess`, this
    model never touches the oracle — correctness emerges from actual
    value collisions, which is the most faithful (and slowest-mixing)
    simulation.
    """

    def __init__(self, alphabet: list[bytes]) -> None:
        if not alphabet:
            raise TaskError("empty guess alphabet")
        sizes = {len(symbol) for symbol in alphabet}
        if len(sizes) != 1:
            raise TaskError(f"alphabet symbols differ in size: {sizes}")
        self.alphabet = list(alphabet)
        self.q = 1.0 / len(alphabet)

    def guess(
        self,
        index: int,
        x: Any,
        true_result: Callable[[], bytes],
        result_size: int,
        salt: bytes = b"",
    ) -> bytes:
        pick = prf_int(
            b"uniform-guess",
            salt,
            index.to_bytes(8, "big"),
            bound=len(self.alphabet),
        )
        return self.alphabet[pick]


def guess_model_for_q(q: float) -> GuessModel:
    """Convenience: the canonical model realizing a given ``q``."""
    if q <= 0.0:
        return ZeroGuess()
    return BernoulliGuess(q)
