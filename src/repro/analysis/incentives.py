"""Incentive economics: when does cheating pay? (paper §1 motivation).

The paper's threat is economic: "When participants are paid for their
contribution, they have strong incentives to cheat for maximizing
their gain."  CBS's uncheatability definition (Def. 2.1) has two arms
— detection probability below ``ε`` *or* cheating cost above task cost.
This module quantifies the first arm as a utility calculation, closing
the loop between Eq. (2) and the money:

* A participant is paid ``payment`` for an accepted task and nothing
  for a rejected one (optionally a ``penalty`` on detection, modelling
  reputation loss or staking).
* Honest utility: ``payment − n·C_f·unit_cost``.
* Cheating utility at ratio ``r``: ``P_escape(r)·payment −
  (1 − P_escape(r))·penalty − r·n·C_f·unit_cost``.

The supervisor wants every ``r < 1`` to yield a *lower* expected
utility than honesty; :func:`deterrent_sample_size` computes the
smallest ``m`` achieving that given the cheater's best choice of
``r`` (the inequality is hardest near ``r → 1``, where skipping a tiny
fraction risks little).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.probability import cheat_success_probability


@dataclass(frozen=True)
class IncentiveModel:
    """Payment/cost environment for one task.

    Attributes
    ----------
    payment:
        Reward for an accepted task (money units).
    task_cost:
        Full honest computation cost ``n·C_f`` (cost units).
    unit_cost_value:
        Money per cost unit (electricity/opportunity price); the
        paper's cheater "maximizes its gain" in these terms.
    penalty:
        Money lost on detection (0 = just forfeit the payment).
    q:
        The workload's guess probability (Theorem 3's ``q``).
    """

    payment: float
    task_cost: float
    unit_cost_value: float = 1.0
    penalty: float = 0.0
    q: float = 0.0

    def __post_init__(self) -> None:
        if self.payment <= 0:
            raise ValueError(f"payment must be positive, got {self.payment}")
        if self.task_cost < 0 or self.unit_cost_value < 0 or self.penalty < 0:
            raise ValueError("costs and penalty must be non-negative")
        if not 0.0 <= self.q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {self.q}")

    # ------------------------------------------------------------------

    @property
    def honest_utility(self) -> float:
        """Expected profit of full honest computation (always accepted,
        Theorem 1)."""
        return self.payment - self.task_cost * self.unit_cost_value

    def cheating_utility(self, r: float, m: int) -> float:
        """Expected profit of cheating at honesty ratio ``r`` against
        ``m`` samples."""
        escape = cheat_success_probability(r, self.q, m)
        compute_spend = r * self.task_cost * self.unit_cost_value
        return (
            escape * self.payment
            - (1.0 - escape) * self.penalty
            - compute_spend
        )

    def cheating_gain(self, r: float, m: int) -> float:
        """Cheating utility minus honest utility (positive ⇒ cheat)."""
        return self.cheating_utility(r, m) - self.honest_utility

    def best_cheating_ratio(self, m: int, grid: int = 999) -> tuple[float, float]:
        """The cheater's optimal ``r`` (grid search) and its gain."""
        best_r, best_gain = 1.0, 0.0
        for i in range(1, grid + 1):
            r = i / (grid + 1)
            gain = self.cheating_gain(r, m)
            if gain > best_gain:
                best_r, best_gain = r, gain
        return best_r, best_gain

    def is_deterrent(self, m: int, grid: int = 999) -> bool:
        """True iff no honesty ratio beats honesty in expectation."""
        _, gain = self.best_cheating_ratio(m, grid=grid)
        return gain <= 0.0


def deterrent_sample_size(
    model: IncentiveModel, max_m: int = 10_000, grid: int = 499
) -> int:
    """Smallest ``m`` making honesty the cheater's best response.

    Doubling search followed by binary search on the (monotone in
    ``m``) deterrence predicate.  Raises :class:`ValueError` if even
    ``max_m`` fails (e.g. ``q = 1`` — a perfectly guessable workload
    can never be deterred by sampling alone, matching Eq. 3's
    divergence).
    """
    if model.is_deterrent(1, grid=grid):
        return 1
    lo, hi = 1, 2
    while not model.is_deterrent(hi, grid=grid):
        lo, hi = hi, hi * 2
        if hi > max_m:
            raise ValueError(
                f"no deterrent m <= {max_m} for this incentive model"
            )
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if model.is_deterrent(mid, grid=grid):
            hi = mid
        else:
            lo = mid
    return hi


def utility_curve(
    model: IncentiveModel, m: int, r_values: tuple[float, ...] | None = None
) -> list[dict]:
    """Rows of (r, escape, cheating utility, gain) for plotting."""
    if r_values is None:
        r_values = tuple(i / 10 for i in range(1, 10))
    rows = []
    for r in r_values:
        rows.append(
            {
                "r": r,
                "escape": cheat_success_probability(r, model.q, m),
                "cheating_utility": model.cheating_utility(r, m),
                "honest_utility": model.honest_utility,
                "gain": model.cheating_gain(r, m),
            }
        )
    return rows
