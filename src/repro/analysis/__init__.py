"""Closed-form analyses and experiment helpers.

* :mod:`repro.analysis.probability` — Eq. (2)/(3): cheat-success
  probability and required sample size (Fig. 2).
* :mod:`repro.analysis.costs` — communication/storage/economics closed
  forms: ``O(m log n)`` vs ``O(n)`` byte models, §3.3 ``rco``, Eq. (5).
* :mod:`repro.analysis.montecarlo` — empirical estimators validating
  the closed forms against real protocol runs.
* :mod:`repro.analysis.sweep` / :mod:`repro.analysis.tables` — sweep
  and table-rendering utilities shared by benches and examples.
"""

from repro.analysis.probability import (
    cheat_success_probability,
    detection_probability,
    fig2_series,
    required_sample_size,
)
from repro.analysis.costs import (
    cbs_participant_bytes,
    cbs_supervisor_bytes_per_task,
    min_sample_hash_cost,
    naive_bytes_per_task,
    regrind_expected_cost,
    uncheatable_g_rounds,
)
from repro.analysis.montecarlo import RateEstimate, estimate_escape_rate
from repro.analysis.sweep import sweep
from repro.analysis.tables import format_table

__all__ = [
    "cheat_success_probability",
    "detection_probability",
    "required_sample_size",
    "fig2_series",
    "cbs_participant_bytes",
    "cbs_supervisor_bytes_per_task",
    "naive_bytes_per_task",
    "min_sample_hash_cost",
    "regrind_expected_cost",
    "uncheatable_g_rounds",
    "RateEstimate",
    "estimate_escape_rate",
    "sweep",
    "format_table",
]
