"""Plain-text table rendering for benches and examples.

Benchmarks print the same rows/series the paper reports; this renderer
keeps them readable in pytest output without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    ``columns`` fixes order and selection; by default the first row's
    keys are used.  Missing cells render empty.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_format_cell(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(cols)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    rule = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(line[i].ljust(widths[i]) for i in range(len(cols)))
        for line in cells
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, rule, body])
    return "\n".join(parts)


def print_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> None:
    """Convenience wrapper printing :func:`format_table` output."""
    print(format_table(rows, columns=columns, title=title))
