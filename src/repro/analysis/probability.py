"""Eq. (2), Eq. (3) and the Fig. 2 series.

Theorem 3 of the paper: a cheater with honesty ratio ``r`` facing ``m``
uniform samples, whose guesses are correct with probability ``q``,
escapes detection with probability::

    Pr(cheating succeeds) = (r + (1 − r)·q)^m        (Eq. 2)

Inverting for the sample size that pushes escape below ``ε``::

    m >= log ε / log(r + (1 − r)·q)                  (Eq. 3)

Fig. 2 plots Eq. (3) for ``ε = 1e−4`` with ``q ∈ {0, 0.5}`` over
``r ∈ [0.1, 0.9]``; the paper quotes ``m = 33`` at ``(r=0.5, q=0.5)``
and ``m = 14`` at ``(r=0.5, q≈0)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _check_r(r: float) -> None:
    if not 0.0 <= r <= 1.0:
        raise ValueError(f"honesty ratio r must be in [0, 1], got {r}")


def _check_q(q: float) -> None:
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"guess probability q must be in [0, 1], got {q}")


def cheat_success_probability(r: float, q: float, m: int) -> float:
    """Eq. (2): ``(r + (1 − r)q)^m``."""
    _check_r(r)
    _check_q(q)
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    return (r + (1.0 - r) * q) ** m


def detection_probability(r: float, q: float, m: int) -> float:
    """Probability at least one sample exposes the cheater."""
    return 1.0 - cheat_success_probability(r, q, m)


def required_sample_size(epsilon: float, r: float, q: float) -> int:
    """Eq. (3): smallest integer ``m`` with escape probability ≤ ε.

    (The paper's ``m ≥ log ε / log(r + (1−r)q)`` is inclusive at the
    boundary: when the ratio is an exact integer, that ``m`` achieves
    exactly ε.)

    Returns 0 when any single sample already suffices is impossible
    (i.e. ``r = 0`` and ``q = 0`` needs ``m = 1``); raises if the base
    ``r + (1−r)q`` equals 1 (a fully honest — or perfectly guessing —
    participant can never be pushed below ε; the paper's formula
    diverges there too).
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    _check_r(r)
    _check_q(q)
    base = r + (1.0 - r) * q
    if base >= 1.0:
        raise ValueError(
            f"escape base r + (1-r)q = {base} >= 1: no finite sample size"
        )
    if base <= 0.0:
        return 1
    return max(1, math.ceil(math.log(epsilon) / math.log(base)))


@dataclass(frozen=True)
class Fig2Point:
    """One point of the Fig. 2 curves."""

    r: float
    q: float
    required_m: int


def fig2_series(
    epsilon: float = 1e-4,
    q_values: tuple[float, ...] = (0.0, 0.5),
    r_values: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
) -> list[Fig2Point]:
    """The required-sample-size curves of Fig. 2."""
    return [
        Fig2Point(r=r, q=q, required_m=required_sample_size(epsilon, r, q))
        for q in q_values
        for r in r_values
    ]


def escape_probability_with_distinct_samples(
    r: float, m: int, n: int
) -> float:
    """Escape probability under *without-replacement* sampling, q = 0.

    Hypergeometric refinement of Eq. (2): with ``n`` inputs of which
    ``r·n`` were computed, drawing ``m`` distinct samples all from the
    computed set has probability ``C(rn, m) / C(n, m)``.  Slightly
    smaller than ``r^m`` (distinct samples are strictly better for the
    supervisor); converges to Eq. (2) as ``n → ∞``.
    """
    _check_r(r)
    if m < 0 or n <= 0 or m > n:
        raise ValueError(f"need 0 <= m <= n, got m={m}, n={n}")
    computed = round(r * n)
    if m > computed:
        return 0.0
    return math.comb(computed, m) / math.comb(n, m)
