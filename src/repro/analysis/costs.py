"""Cost closed forms: communication, storage trade-off, Eq. (5).

These are the analytic models the measured ledgers are compared with:

* **Communication (E3).**  Naive schemes put all ``n`` results on the
  wire; CBS ships one digest plus ``m`` proofs of ``⌈log2 n⌉`` sibling
  digests each.  The byte models below include the codec's framing so
  they can be checked against measured ``wire_size()`` exactly.
* **Storage trade-off (§3.3, E4)** — re-exported from
  :mod:`repro.core.storage_opt`.
* **Regrinding economics (Eq. 5, E5).**  Expected attack cost
  ``(1/r^m)·m·C_g`` vs honest cost ``n·C_f``; and the minimum ``C_g``
  (or iterated-hash round count) that makes cheating unprofitable.
"""

from __future__ import annotations

import math

from repro.core.storage_opt import (  # noqa: F401  (re-exported, E4)
    predicted_rco,
    rco_from_storage,
    storage_for_rco,
    subtree_height_for_storage,
)
from repro.utils.bitmath import ceil_log2, next_power_of_two
from repro.utils.encoding import encode_uint


def _varint_size(value: int) -> int:
    return len(encode_uint(value))


def _framed_bytes(payload_size: int) -> int:
    """Length-prefixed byte string size under the canonical codec."""
    return _varint_size(payload_size) + payload_size


def naive_bytes_per_task(
    n: int, result_size: int, task_id_size: int = 8
) -> int:
    """Wire bytes for a :class:`FullResultsMsg` carrying ``n`` results.

    The ``O(n)`` term the paper's §3 headline example scales to
    ``2^64`` inputs ("about 16 million terabytes").
    """
    if n < 1 or result_size < 0:
        raise ValueError("need n >= 1 and result_size >= 0")
    body = _varint_size(n) + n * _framed_bytes(result_size)
    return _framed_bytes(task_id_size) + body


def cbs_participant_bytes(
    n: int,
    m: int,
    digest_size: int = 32,
    result_size: int = 16,
    task_id_size: int = 8,
) -> int:
    """Wire bytes a CBS participant sends: commitment + ``m`` proofs.

    The ``O(m log n)`` term: each proof carries the claimed result and
    ``H = ⌈log2 n⌉`` sibling digests (plus codec framing).  Matches the
    measured ledger exactly for power-of-two ``n``.
    """
    if n < 1 or m < 0:
        raise ValueError("need n >= 1 and m >= 0")
    height = ceil_log2(next_power_of_two(n))
    commitment = (
        _framed_bytes(task_id_size) + _framed_bytes(digest_size) + _varint_size(n)
    )
    # SampleProof: index varint + framed result + auth path
    #   (leaf_index + n_leaves + encoding code + framed sibling list).
    per_proof_fixed = (
        _framed_bytes(result_size)
        + _varint_size(n)  # path.n_leaves
        + 1  # leaf-encoding code
        + _varint_size(height)  # sibling count prefix
        + height * _framed_bytes(digest_size)
    )
    # Index varints: bounded by the worst case (n - 1), twice (proof
    # index + path leaf index).
    per_proof = per_proof_fixed + 2 * _varint_size(max(n - 1, 0))
    bundle_overhead = _framed_bytes(task_id_size) + _varint_size(m)
    return commitment + bundle_overhead + m * per_proof


def cbs_supervisor_bytes_per_task(
    n: int, m: int, task_id_size: int = 8
) -> int:
    """Supervisor → participant bytes: the challenge plus verdict."""
    if n < 1 or m < 0:
        raise ValueError("need n >= 1 and m >= 0")
    challenge = (
        _framed_bytes(task_id_size)
        + _varint_size(m)
        + m * _varint_size(max(n - 1, 0))
    )
    verdict = _framed_bytes(task_id_size) + 1 + _framed_bytes(0)
    return challenge + verdict


# ----------------------------------------------------------------------
# Eq. (5): economics of the regrinding attack
# ----------------------------------------------------------------------


def regrind_expected_cost(
    r: float, m: int, g_cost: float, honest_subset_cost: float = 0.0
) -> float:
    """Expected attack cost ``(1/r^m)·m·C_g`` (+ the honest ``r·n·C_f``).

    The paper's left-hand side of Eq. (5) counts only the grinding
    term; pass ``honest_subset_cost`` to include the ``D'`` work the
    attacker must do regardless.
    """
    if not 0.0 < r <= 1.0:
        raise ValueError(f"r must be in (0, 1], got {r}")
    if m < 1 or g_cost < 0:
        raise ValueError("need m >= 1 and g_cost >= 0")
    return (r ** -m) * m * g_cost + honest_subset_cost


def min_sample_hash_cost(n: int, f_cost: float, r: float, m: int) -> float:
    """Smallest ``C_g`` satisfying Eq. (5): ``C_g >= n·C_f·r^m / m``.

    Evaluated at the *designer's pessimistic* ``r`` (the largest
    honesty ratio worth defending against — cost grows with ``r``).
    """
    if n < 1 or f_cost < 0:
        raise ValueError("need n >= 1 and f_cost >= 0")
    if not 0.0 < r <= 1.0:
        raise ValueError(f"r must be in (0, 1], got {r}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return n * f_cost * (r ** m) / m


def uncheatable_g_rounds(
    n: int, f_cost: float, r: float, m: int, base_hash_cost: float = 1.0
) -> int:
    """Iterated-hash round count ``k`` realizing the Eq. (5) ``C_g``.

    The paper's ``g ≡ (MD5)^k`` construction: rounds of a unit-cost
    hash needed so grinding is unprofitable at honesty ratio ``r``.
    """
    if base_hash_cost <= 0:
        raise ValueError(f"base_hash_cost must be positive, got {base_hash_cost}")
    needed = min_sample_hash_cost(n, f_cost, r, m)
    return max(1, math.ceil(needed / base_hash_cost))


def honest_sample_generation_overhead(r: float, m: int) -> float:
    """Ratio of sample-generation cost to task cost when Eq. (5) is
    tight: ``m·C_g / (n·C_f) = r^m`` — the paper's closing observation
    that the honest participant's extra cost is "about r^m"."""
    if not 0.0 < r <= 1.0:
        raise ValueError(f"r must be in (0, 1], got {r}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return r ** m
