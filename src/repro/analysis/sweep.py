"""Parameter-sweep helper producing flat table rows.

Experiments are cartesian sweeps (``r × q × m``, ``n × scheme``, ...);
:func:`sweep` runs a row function over the grid and collects dict rows
ready for :func:`repro.analysis.tables.format_table`.

Grid points are independent, so sweeps can fan out through the
execution engine: ``engine="threads"`` works with any row function,
while ``engine="processes"`` requires the row function to be a
picklable module-level callable (the usual multiprocessing rule).
Row order always matches serial iteration order.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Mapping, Sequence

from repro.engine import Executor, resolved_executor


def _eval_point(
    args: tuple[Callable[..., Mapping[str, Any] | None], dict[str, Any]],
) -> Mapping[str, Any] | None:
    """Worker-side cell evaluation (module-level for pickling)."""
    row_fn, point = args
    return row_fn(**point)


def sweep(
    grid: Mapping[str, Sequence[Any]],
    row_fn: Callable[..., Mapping[str, Any] | None],
    engine: str | Executor = "serial",
    workers: int | None = None,
) -> list[dict[str, Any]]:
    """Run ``row_fn(**point)`` over the cartesian grid.

    Each grid point's parameters are merged into the returned row (the
    row function's keys win on collision).  A row function may return
    ``None`` to skip a point (e.g. infeasible parameter combinations).
    """
    if not grid:
        raise ValueError("empty sweep grid")
    names = list(grid)
    points = [
        dict(zip(names, values))
        for values in itertools.product(*(grid[name] for name in names))
    ]
    with resolved_executor(engine, workers) as executor:
        produced = executor.map(
            _eval_point, [(row_fn, point) for point in points]
        )
    rows: list[dict[str, Any]] = []
    for point, cell in zip(points, produced):
        if cell is None:
            continue
        row = dict(point)
        row.update(cell)
        rows.append(row)
    return rows
