"""Parameter-sweep helper producing flat table rows.

Experiments are cartesian sweeps (``r × q × m``, ``n × scheme``, ...);
:func:`sweep` runs a row function over the grid and collects dict rows
ready for :func:`repro.analysis.tables.format_table`.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Mapping, Sequence


def sweep(
    grid: Mapping[str, Sequence[Any]],
    row_fn: Callable[..., Mapping[str, Any] | None],
) -> list[dict[str, Any]]:
    """Run ``row_fn(**point)`` over the cartesian grid.

    Each grid point's parameters are merged into the returned row (the
    row function's keys win on collision).  A row function may return
    ``None`` to skip a point (e.g. infeasible parameter combinations).
    """
    if not grid:
        raise ValueError("empty sweep grid")
    names = list(grid)
    rows: list[dict[str, Any]] = []
    for values in itertools.product(*(grid[name] for name in names)):
        point = dict(zip(names, values))
        produced = row_fn(**point)
        if produced is None:
            continue
        row = dict(point)
        row.update(produced)
        rows.append(row)
    return rows
