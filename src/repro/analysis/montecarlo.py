"""Empirical estimators: validating closed forms against real runs.

Eq. (2) and the ``1/r^m`` regrind expectation are verified by running
the actual protocol implementations many times with independent seeds
and comparing rates.  :func:`estimate_escape_rate` reports a point
estimate with a Wilson score interval so benches and tests can assert
"analytic value inside the 99% CI" instead of brittle exact bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.cheating.strategies import Behavior
from repro.core.scheme import VerificationScheme
from repro.engine import Executor, SchemeJob, run_scheme_jobs
from repro.tasks.result import TaskAssignment


@dataclass(frozen=True)
class RateEstimate:
    """A binomial rate estimate with its Wilson confidence interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.low <= value <= self.high


def wilson_interval(
    successes: int, trials: int, z: float = 2.576
) -> tuple[float, float]:
    """Wilson score interval (default ``z`` ≈ 99% two-sided)."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, centre - margin), min(1.0, centre + margin)


def estimate_escape_rate(
    scheme: VerificationScheme,
    assignment: TaskAssignment,
    behavior_factory: Callable[[int], Behavior],
    n_trials: int,
    seed0: int = 0,
    z: float = 2.576,
    engine: str | Executor = "serial",
    workers: int | None = None,
) -> RateEstimate:
    """Fraction of runs where a cheater goes undetected (the Eq. 2 event).

    ``behavior_factory(trial)`` builds the behaviour per trial so
    stateful behaviours do not leak across runs; seeds are
    ``seed0 + trial``, varying both sample selection and fabrications.

    Trials are independent, so they dispatch through the execution
    engine (``engine``/``workers``, see :mod:`repro.engine`).  The
    factory itself runs in-process — only the built behaviours travel
    to workers — so closures and lambdas work on every backend.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    jobs = [
        SchemeJob(
            assignment=assignment,
            behavior=behavior_factory(trial),
            seed=seed0 + trial,
        )
        for trial in range(n_trials)
    ]
    results = run_scheme_jobs(scheme, jobs, engine=engine, workers=workers)
    escapes = sum(1 for result in results if result.outcome.accepted)
    low, high = wilson_interval(escapes, n_trials, z=z)
    return RateEstimate(
        successes=escapes, trials=n_trials, low=low, high=high
    )


def estimate_detection_rate(
    scheme: VerificationScheme,
    assignment: TaskAssignment,
    behavior_factory: Callable[[int], Behavior],
    n_trials: int,
    seed0: int = 0,
    z: float = 2.576,
    engine: str | Executor = "serial",
    workers: int | None = None,
) -> RateEstimate:
    """Complementary estimator: fraction of runs where the scheme
    rejected (for honest behaviours this is the false-alarm rate)."""
    escapes = estimate_escape_rate(
        scheme,
        assignment,
        behavior_factory,
        n_trials,
        seed0=seed0,
        z=z,
        engine=engine,
        workers=workers,
    )
    detections = escapes.trials - escapes.successes
    low, high = wilson_interval(detections, escapes.trials, z=z)
    return RateEstimate(
        successes=detections, trials=escapes.trials, low=low, high=high
    )
