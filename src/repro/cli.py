"""Command-line experiment runner: ``repro-experiments`` / ``python -m repro.cli``.

Gives downstream users one-command access to the paper's reproductions
without touching pytest:

* ``fig2`` — the Fig. 2 required-sample-size curves (Eq. 3);
* ``eq2`` — analytic vs Monte-Carlo escape probability (Eq. 2);
* ``comm`` — O(n) vs O(m log n) wire bytes over an ``n`` sweep;
* ``rco`` — the §3.3 storage/recompute trade-off;
* ``regrind`` — the §4.2 attack and its Eq. (5) economics;
* ``deterrence`` — incentive-level sample sizing (Def. 2.1's cost arm);
* ``demo`` — a single CBS run narrated step by step;
* ``population`` — a full population simulation on a chosen execution
  backend, reporting participants/sec;
* ``serve`` — the supervisor as a long-running asyncio TCP service
  (the §4 GRACE topology; see :mod:`repro.service`), shutting down
  gracefully on SIGINT/SIGTERM;
* ``loadgen`` — N concurrent honest/cheating participants against a
  running supervisor (or a self-contained in-process one), reporting
  detection plus submissions/sec and latency percentiles
  (``--json PATH`` additionally saves a machine-readable record);
* ``worker`` — a cluster worker daemon executing engine chunks for a
  coordinator (see :mod:`repro.engine.cluster`);
* ``lint`` — the repro-lint static invariant checkers
  (:mod:`repro.devtools.lint`; README "Static analysis").

All subcommands accept ``--seed`` and print the same tables the
benchmark harness saves under ``benchmarks/results/``.  Subcommands
that run many independent protocol executions (``eq2``,
``population``) additionally accept ``--engine
serial|threads|processes|cluster`` and ``--workers N`` to pick the
execution backend (see :mod:`repro.engine`); backends change
wall-clock only, never results.  ``--engine cluster`` self-hosts
``--cluster-workers N`` local worker daemons and exposes the adaptive
scheduler's tuning surface — ``--cluster-chunk-min``/``max`` bound the
throughput-sized chunks, ``--stream-threshold`` sets where workers
start streaming results as bounded sub-frames (README "Cluster
tuning").  The multi-host recipe (one coordinator, workers on other
machines) is in the README.

Transport security (README "Security model"): ``--secret-file`` gates
every connection behind the mutual repro.net HMAC handshake,
``--tls-cert``/``--tls-key`` add pinned-certificate TLS.  ``serve``
and ``loadgen`` apply them to the participant socket; any ``--engine
cluster`` command forwards them to the cluster plane; ``worker``
takes ``--secret-file``/``--tls-cert`` to prove itself to (and pin)
its coordinator.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import logging
import os
import signal
import sys
import time

from repro.analysis import (
    cheat_success_probability,
    estimate_escape_rate,
    fig2_series,
    format_table,
)
from repro.analysis.costs import uncheatable_g_rounds
from repro.analysis.incentives import IncentiveModel, deterrent_sample_size
from repro.cheating import HonestBehavior, SemiHonestCheater
from repro.cheating.guessing import guess_model_for_q
from repro.cheating.regrind import expected_regrind_attempts, run_regrind_attack
from repro.core import CBSScheme, predicted_rco
from repro.baselines import NaiveSamplingScheme
from repro.engine import ENGINE_NAMES, get_executor
from repro.engine.cluster.worker import add_worker_args, run_worker_sync
from repro.exceptions import ReproError
from repro.grid import run_population
from repro.merkle import get_hash
from repro.net.transport import SecurityConfig
from repro.obs import (
    EventLoopLagProbe,
    FlightRecorder,
    HealthState,
    MetricsServer,
    Span,
    bind_trace,
    configure_logging,
    default_registry,
    gauge_max_probe,
    gauge_min_probe,
    get_logger,
    install_flight_recorder,
    log_event,
    new_trace_id,
    render_waterfall,
)
from repro.service import (
    ServiceClient,
    ServiceConfig,
    SupervisorServer,
    WORKLOADS,
    run_loadgen,
    run_service_loadgen,
)
from repro.tasks import PasswordSearch, RangeDomain, TaskAssignment

_log = get_logger("cli")


@contextlib.contextmanager
def _traced_run(args: argparse.Namespace):
    """Bind a population-level trace for the duration of a command.

    Under ``--trace`` every subsystem logs structured JSON records at
    DEBUG carrying this trace id (and per-chunk/per-round span ids),
    so one chunk's journey — coordinator dispatch, worker execution,
    result acceptance — reconstructs from the logs alone.
    """
    if not getattr(args, "trace", False):
        yield None
        return
    configure_logging(json=True, level=logging.DEBUG)
    trace_id = new_trace_id()
    # Stderr so scripted pipelines that parse stdout stay clean; the
    # id is what `repro.cli trace view --trace-id` asks for.
    print(f"[trace {trace_id}]", file=sys.stderr, flush=True)
    with bind_trace(trace_id):
        log_event(_log, "trace_started", command=args.command)
        yield trace_id


def _cmd_fig2(args: argparse.Namespace) -> int:
    points = fig2_series(epsilon=args.epsilon)
    by_r: dict[float, dict] = {}
    for p in points:
        row = by_r.setdefault(round(p.r, 2), {"r": round(p.r, 2)})
        row[f"m (q={p.q:g})"] = p.required_m
    print(
        format_table(
            [by_r[r] for r in sorted(by_r)],
            title=f"Fig. 2 — required sample size (epsilon = {args.epsilon})",
        )
    )
    return 0


def _cmd_eq2(args: argparse.Namespace) -> int:
    task = TaskAssignment("cli-eq2", RangeDomain(0, args.n), PasswordSearch())
    rows = []
    # One warm pool across all four m-values (the loop would otherwise
    # spawn and tear down a process pool per cell).
    with get_executor(
        args.engine, _engine_workers(args), **_engine_options(args)
    ) as executor:
        for m in (1, 2, 4, 8):
            estimate = estimate_escape_rate(
                CBSScheme(n_samples=m),
                task,
                lambda trial: SemiHonestCheater(args.r, guess_model_for_q(args.q)),
                n_trials=args.trials,
                seed0=args.seed,
                engine=executor,
            )
            rows.append(
                {
                    "m": m,
                    "analytic": cheat_success_probability(args.r, args.q, m),
                    "measured": estimate.rate,
                    "ci": f"[{estimate.low:.3f}, {estimate.high:.3f}]",
                }
            )
    print(
        format_table(
            rows,
            title=(
                f"Eq. (2) — escape probability at r={args.r}, q={args.q} "
                f"({args.trials} runs/cell)"
            ),
        )
    )
    return 0


def _cmd_comm(args: argparse.Namespace) -> int:
    rows = []
    for exp in range(8, args.max_exp + 1, 2):
        n = 1 << exp
        task = TaskAssignment(f"cli-comm-{n}", RangeDomain(0, n), PasswordSearch())
        naive = NaiveSamplingScheme(args.m).run(task, HonestBehavior(), seed=args.seed)
        cbs = CBSScheme(args.m, include_reports=False).run(
            task, HonestBehavior(), seed=args.seed
        )
        rows.append(
            {
                "n": f"2^{exp}",
                "naive_bytes": naive.participant_ledger.bytes_sent,
                "cbs_bytes": cbs.participant_ledger.bytes_sent,
                "reduction": round(
                    naive.participant_ledger.bytes_sent
                    / cbs.participant_ledger.bytes_sent,
                    1,
                ),
            }
        )
    print(format_table(rows, title=f"Communication — measured bytes (m = {args.m})"))
    return 0


def _cmd_rco(args: argparse.Namespace) -> int:
    n = args.n
    task = TaskAssignment("cli-rco", RangeDomain(0, n), PasswordSearch())
    rows = []
    ell = 0
    while (1 << ell) <= n:
        scheme = CBSScheme(
            n_samples=args.m,
            subtree_height=ell or None,
            with_replacement=False,
            include_reports=False,
        )
        result = scheme.run(task, HonestBehavior(), seed=args.seed)
        extra = result.participant_ledger.evaluations - n
        rows.append(
            {
                "ell": ell,
                "stored_digests": result.participant_ledger.storage_digests,
                "rebuild_evals": extra,
                "measured_rco": extra / n,
                "paper_rco": predicted_rco(args.m, n, ell),
            }
        )
        ell += 2
    print(format_table(rows, title=f"§3.3 storage trade-off (n={n}, m={args.m})"))
    return 0


def _cmd_regrind(args: argparse.Namespace) -> int:
    task = TaskAssignment(
        "cli-regrind", RangeDomain(0, args.n), PasswordSearch(cost=args.f_cost)
    )
    print(
        f"expected attempts 1/r^m = "
        f"{expected_regrind_attempts(args.r, args.m):.1f}"
    )
    k = uncheatable_g_rounds(args.n, args.f_cost, args.r, args.m)
    rows = []
    for label, g in (("cheap g", "sha256"), (f"Eq.5 g (k={k})", f"sha256^{k}")):
        result = run_regrind_attack(
            task,
            honesty_ratio=args.r,
            n_samples=args.m,
            sample_hash=get_hash(g),
            seed=args.seed,
            max_attempts=args.max_attempts,
        )
        rows.append(
            {
                "g": label,
                "attempts": result.attempts,
                "succeeded": result.succeeded,
                "attack_cost": round(result.attack_cost),
                "honest_cost": round(result.honest_task_cost),
                "profitable": result.profitable,
            }
        )
    print(format_table(rows, title="§4.2 regrinding attack economics"))
    return 0


def _cmd_deterrence(args: argparse.Namespace) -> int:
    model = IncentiveModel(
        payment=args.payment,
        task_cost=args.task_cost,
        penalty=args.penalty,
        q=args.q,
    )
    try:
        m_star = deterrent_sample_size(model)
    except ValueError:
        print("no finite m deters this model (q too high?)")
        return 1
    print(
        f"honest utility: {model.honest_utility:.1f}; smallest deterrent "
        f"m = {m_star}"
    )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    task = TaskAssignment("cli-demo", RangeDomain(0, args.n), PasswordSearch())
    scheme = CBSScheme(n_samples=args.m)
    honest = scheme.run(task, HonestBehavior(), seed=args.seed)
    cheat = scheme.run(task, SemiHonestCheater(args.r), seed=args.seed)
    rows = [
        {
            "participant": "honest",
            "accepted": honest.outcome.accepted,
            "evals": honest.participant_ledger.evaluations,
            "bytes_sent": honest.participant_ledger.bytes_sent,
        },
        {
            "participant": f"cheater (r={args.r})",
            "accepted": cheat.outcome.accepted,
            "evals": cheat.participant_ledger.evaluations,
            "bytes_sent": cheat.participant_ledger.bytes_sent,
        },
    ]
    print(format_table(rows, title=f"CBS demo: n={args.n}, m={args.m}"))
    failure = cheat.outcome.first_failure
    if failure is not None:
        print(f"cheater exposed at sample index {failure.index} "
              f"({failure.reason.value})")
    return 0


def _cmd_population(args: argparse.Namespace) -> int:
    domain = RangeDomain(0, args.n)
    behaviors = [HonestBehavior(), SemiHonestCheater(args.r)]
    start = time.perf_counter()
    # The executor is built here (not inside run_population) so the
    # cluster tuning flags reach the backend constructor.
    with _traced_run(args), get_executor(
        args.engine, _engine_workers(args), **_engine_options(args)
    ) as executor:
        report = run_population(
            domain,
            PasswordSearch(),
            CBSScheme(n_samples=args.m),
            behaviors=behaviors,
            n_participants=args.participants,
            seed=args.seed,
            engine=executor,
        )
    elapsed = time.perf_counter() - start
    row = report.summary()
    row["engine"] = args.engine
    row["elapsed_s"] = round(elapsed, 3)
    row["participants_per_s"] = round(args.participants / elapsed, 1)
    print(
        format_table(
            [row],
            title=(
                f"Population run — D = {args.n}, "
                f"{args.participants} participants, m = {args.m}"
            ),
        )
    )
    return 0


def _service_config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        domain=RangeDomain(0, args.n),
        workload=args.workload,
        protocol=args.protocol,
        n_samples=args.m,
        n_participants=args.participants,
        seed=args.seed,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    config = _service_config(args)
    if args.trace:
        configure_logging(json=True, level=logging.DEBUG)
    elif args.stats_interval is not None:
        # The periodic snapshot line needs a handler even without
        # --trace; keep it human-readable at INFO.
        configure_logging(json=False, level=logging.INFO)

    # The flight recorder rides the whole command: attach early so
    # startup failures land in the crash dump too.
    recorder = FlightRecorder(process="serve")
    recorder.attach()
    if args.flight_dir is not None:
        install_flight_recorder(recorder, args.flight_dir)

    async def serve() -> None:
        registry = default_registry()
        server = SupervisorServer(
            config,
            engine=args.engine,
            workers=_engine_workers(args),
            engine_options=_engine_options(args, service_plane=True),
            security=_service_security(args),
            session_ttl=args.session_ttl,
            registry=registry,
        )
        # Readiness plane: drain flag + per-plane probes.  The lag
        # sampler runs as a loop task; cluster probes watch the
        # scheduler gauges the coordinator keeps fresh.
        health = HealthState()
        lag_probe = EventLoopLagProbe()
        health.add_probe("event_loop_lag", lag_probe)
        health.add_probe(
            "sessions",
            lambda: (True, {"active": server.sessions.active}),
        )
        if args.engine == "cluster":
            health.add_probe(
                "cluster_workers",
                gauge_min_probe(
                    registry, "repro_cluster_workers_live", 1.0
                ),
            )
            health.add_probe(
                "cluster_stall",
                gauge_max_probe(
                    registry, "repro_cluster_stall_seconds", 60.0
                ),
            )
        lag_task = asyncio.ensure_future(lag_probe.run())
        # Graceful shutdown: SIGINT/SIGTERM set an event instead of
        # tearing through the loop as KeyboardInterrupt; server.stop()
        # then closes the listener, drains in-flight rounds and the
        # engine pool, and releases session state.  Handlers go in
        # before the readiness banner so a supervisor that printed
        # "listening" is already signal-safe.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        handled: list[signal.Signals] = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
                handled.append(sig)
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass
        host, port = await server.start(args.host, args.port)
        print(
            f"supervisor listening on {host}:{port} — protocol "
            f"{config.protocol}, D={args.n}, "
            f"{config.n_participants} participant slots, m={config.n_samples}",
            flush=True,
        )
        metrics_server: MetricsServer | None = None
        if args.metrics_port is not None:
            metrics_server = MetricsServer(
                server.registry, port=args.metrics_port, health=health
            )
            print(
                f"metrics on http://127.0.0.1:{metrics_server.port}/metrics "
                f"(+ /stats /healthz /readyz)",
                flush=True,
            )

        async def snapshot_loop() -> None:
            while True:
                await asyncio.sleep(args.stats_interval)
                stats = server.stats
                log_event(
                    _log,
                    "stats_snapshot",
                    connections=stats.connections,
                    verifications=stats.verifications,
                    sessions_active=server.sessions.active,
                    errors=stats.errors,
                    auth_failures=stats.auth_failures,
                )

        snapshot_task = (
            asyncio.ensure_future(snapshot_loop())
            if args.stats_interval is not None
            else None
        )
        try:
            await stop.wait()
            # Drain protocol: flip readiness *first* so a load
            # balancer polling /readyz sees 503 and stops routing,
            # hold the listener open for --drain-grace seconds, and
            # only then stop accepting and tear down.
            health.set_ready(False, "draining")
            recorder.record("drain_started", grace_s=args.drain_grace)
            if args.drain_grace > 0:
                await asyncio.sleep(args.drain_grace)
        finally:
            for sig in handled:
                loop.remove_signal_handler(sig)
            lag_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await lag_task
            if snapshot_task is not None:
                snapshot_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await snapshot_task
            await server.stop()
            # Probe endpoint closes after the drain so the final 503s
            # were observable; the flight dump is the shutdown record.
            if metrics_server is not None:
                metrics_server.close()
            if args.flight_dir is not None:
                with contextlib.suppress(OSError):
                    path = recorder.dump_to_dir(
                        args.flight_dir, reason="shutdown"
                    )
                    print(f"flight recorder dumped to {path}", flush=True)
            print(
                f"supervisor stopped — {server.stats.connections} "
                f"connections, {server.stats.verifications} verifications, "
                f"{server.sessions.stats.evicted} sessions evicted",
                flush=True,
            )

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        print("supervisor stopped")
    return 0


async def _loadgen_connect(args, behaviors):
    """Drive a remote supervisor; the shared repro.net retry/backoff
    helper inside ``ServiceClient.open_tcp`` absorbs a slow-starting
    server (the old private probe loop is gone)."""
    return await run_loadgen(
        args.participants,
        behaviors,
        host=args.host,
        port=args.port,
        security=_service_security(args),
        connect_retry_s=args.connect_timeout,
        concurrency=args.concurrency,
    )


def _cmd_loadgen(args: argparse.Namespace) -> int:
    behaviors = [HonestBehavior(), SemiHonestCheater(args.r)]
    if args.host is not None:
        if args.port is None:
            print("loadgen: --host requires --port", file=sys.stderr)
            return 2
        print(
            "connected mode: the supervisor's own config governs the "
            "workload — local --n/--m/--protocol/--workload/--seed/"
            "--engine/--workers are ignored (--secret-file/--tls-cert "
            "still apply: they authenticate this client)"
        )
        with _traced_run(args):
            report, stats = asyncio.run(_loadgen_connect(args, behaviors))
    else:
        with _traced_run(args):
            report, stats, _server = asyncio.run(
                run_service_loadgen(
                    _service_config(args),
                    behaviors,
                    transport="tcp",
                    engine=args.engine,
                    workers=_engine_workers(args),
                    engine_options=_engine_options(args, service_plane=True),
                    security=_service_security(args),
                    concurrency=args.concurrency,
                )
            )
    row = report.summary() | stats.summary()
    del row["participants"]  # duplicated between the two summaries
    print(
        format_table(
            [row],
            title=(
                f"Load generation — {args.participants} participants "
                f"({stats.n_completed} completed), r={args.r}"
            ),
        )
    )
    if args.json:
        payload = {
            "bench": "loadgen",
            "mode": "connected" if args.host is not None else "self-hosted",
            "participants": args.participants,
            "r": args.r,
            "concurrency": args.concurrency,
            "report": report.summary(),
            "stats": stats.summary(),
        }
        if args.host is None:
            payload |= {
                "domain_size": args.n,
                "n_samples": args.m,
                "protocol": args.protocol,
                "workload": args.workload,
                "seed": args.seed,
                "engine": args.engine,
            }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"[json saved to {args.json}]")
    if args.check:
        clean = (
            stats.n_errors == 0
            and stats.n_completed == args.participants
            and report.honest_rejected == 0
            and report.detection_rate == 1.0
        )
        if not clean:
            print("loadgen --check FAILED", file=sys.stderr)
            return 1
        print("loadgen --check passed: clean detection report")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Fetch a running supervisor's live metrics snapshot.

    Speaks the authenticated service protocol (a ``stats`` frame), so
    it works wherever a participant could connect — including supervisors
    with no ``--metrics-port`` exposed.
    """
    host, _, port_s = args.connect.rpartition(":")
    if not host or not port_s.isdigit():
        print("stats: --connect must be HOST:PORT", file=sys.stderr)
        return 2
    security = SecurityConfig.from_options(
        secret_file=args.secret_file, tls_cert=args.tls_cert
    )

    async def fetch() -> dict:
        client = await ServiceClient.open_tcp(
            host, int(port_s), security=security
        )
        try:
            return await client.stats()
        finally:
            await client.close()

    snapshot = asyncio.run(fetch())
    if args.json:
        json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    rows = []
    for name in sorted(snapshot):
        metric = snapshot[name]
        for sample in metric["values"]:
            labels = ",".join(
                f"{k}={v}" for k, v in sorted(sample["labels"].items())
            )
            value = (
                sample["count"] if metric["type"] == "histogram"
                else sample["value"]
            )
            rows.append(
                {
                    "metric": name,
                    "labels": labels or "-",
                    "type": metric["type"],
                    "value": value,
                }
            )
    if rows:
        print(format_table(rows, title=f"Supervisor metrics — {args.connect}"))
    else:
        print("no metrics recorded yet")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render one distributed trace as an ASCII waterfall.

    Two sources: a live supervisor over the authenticated service
    protocol (``--connect`` + ``--trace-id``), or a flight-recorder
    dump file (``--dump``, trace id optional — defaults to the newest
    trace in the artifact).
    """
    if args.dump is None and args.connect is None:
        print("trace: need --connect HOST:PORT or --dump PATH",
              file=sys.stderr)
        return 2
    if args.dump is not None:
        try:
            with open(args.dump, encoding="utf-8") as fh:
                artifact = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"trace: cannot read dump {args.dump}: {exc}",
                  file=sys.stderr)
            return 2
        spans = []
        for wire in artifact.get("spans", ()):
            try:
                spans.append(Span.from_wire(wire))
            except (KeyError, TypeError, ValueError):
                pass  # a hand-edited dump must not kill the viewer
        trace_id = args.trace_id
        if trace_id is None:
            # Newest trace in the artifact (dump order is record order).
            seen = {s.trace_id: None for s in spans}
            trace_id = next(reversed(seen), None)
        spans = [s for s in spans if s.trace_id == trace_id]
    else:
        if args.trace_id is None:
            print("trace: --trace-id is required with --connect",
                  file=sys.stderr)
            return 2
        host, _, port_s = args.connect.rpartition(":")
        if not host or not port_s.isdigit():
            print("trace: --connect must be HOST:PORT", file=sys.stderr)
            return 2
        security = SecurityConfig.from_options(
            secret_file=args.secret_file, tls_cert=args.tls_cert
        )
        trace_id = args.trace_id

        async def fetch() -> list[dict]:
            client = await ServiceClient.open_tcp(
                host, int(port_s), security=security
            )
            try:
                return await client.trace(trace_id)
            finally:
                await client.close()

        spans = [Span.from_wire(wire) for wire in asyncio.run(fetch())]
    if not spans:
        if trace_id is None:
            print("no traced spans in this dump (run with --trace to "
                  "record some)")
        else:
            print(f"no spans recorded for trace {trace_id}")
        return 1
    spans.sort(key=lambda s: s.start_wall)
    print(render_waterfall(spans))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the repro-lint invariant checkers (README "Static analysis").

    A thin forwarder to :mod:`repro.devtools.lint.runner` — same flags,
    same exit codes — so operators get the gate CI runs without
    remembering the module path.  Imported lazily: the runtime planes
    must never depend on devtools.
    """
    from repro.devtools.lint.runner import main as lint_main

    forwarded: list[str] = list(args.paths)
    forwarded += ["--format", args.format]
    if args.baseline is not None:
        forwarded += ["--baseline", args.baseline]
    if args.write_baseline is not None:
        forwarded += ["--write-baseline", args.write_baseline]
    if args.rules is not None:
        forwarded += ["--rules", args.rules]
    if args.list_rules:
        forwarded += ["--list-rules"]
    return lint_main(forwarded)


def _cmd_worker(args: argparse.Namespace) -> int:
    return run_worker_sync(
        args.host,
        args.port,
        engine=args.engine,
        workers=args.workers,
        worker_id=args.worker_id,
        heartbeat_interval=args.heartbeat_interval,
        stream_threshold=args.stream_threshold,
        throttle=args.throttle,
        connect_retry_s=args.connect_retry_s,
        secret_file=args.secret_file,
        tls_cert=args.tls_cert,
        trace=args.trace,
        metrics_port=args.metrics_port,
        flight_dir=args.flight_dir,
        preload=tuple(args.preload or ()),
    )


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="structured JSON logs at DEBUG with a population-level "
        "trace id propagated through service frames and cluster job "
        "envelopes (README 'Observability')",
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="serial",
        help="execution backend for independent protocol runs",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="pool size for threads/processes (default: CPU count)",
    )
    parser.add_argument(
        "--cluster-workers",
        type=_positive_int,
        default=None,
        dest="cluster_workers",
        help="local worker daemons to self-host with --engine cluster "
        "(default: --workers, else CPU count)",
    )
    parser.add_argument(
        "--cluster-chunk-min",
        type=_positive_int,
        default=None,
        dest="cluster_chunk_min",
        help="smallest adaptive chunk (jobs) the cluster scheduler sends; "
        "set min == max for fixed-size chunking",
    )
    parser.add_argument(
        "--cluster-chunk-max",
        type=_positive_int,
        default=None,
        dest="cluster_chunk_max",
        help="largest adaptive chunk (jobs) the cluster scheduler sends",
    )
    parser.add_argument(
        "--stream-threshold",
        type=_positive_int,
        default=None,
        dest="stream_threshold",
        help="encoded result bytes above which cluster workers stream a "
        "chunk's outcomes as bounded result_part frames",
    )
    _add_security_args(parser)


def _add_security_args(parser: argparse.ArgumentParser) -> None:
    """The repro.net security flags (README "Security model").

    One set of flags secures whatever wire the subcommand opens: the
    participant socket for ``serve``/``loadgen``, the cluster plane
    for ``--engine cluster`` (both at once when a service runs on the
    cluster backend).
    """
    parser.add_argument(
        "--secret-file",
        default=None,
        dest="secret_file",
        help="path to a shared-secret file; peers must complete the "
        "HMAC-SHA256 challenge/response handshake before any frame "
        "is decoded",
    )
    parser.add_argument(
        "--tls-cert",
        default=None,
        dest="tls_cert",
        help="TLS certificate path: listeners present it (with "
        "--tls-key), dialling sides pin it as the trust anchor",
    )
    parser.add_argument(
        "--tls-key",
        default=None,
        dest="tls_key",
        help="TLS private key path (listening side only)",
    )
    parser.add_argument(
        "--cluster-secret-file",
        default=None,
        dest="cluster_secret_file",
        help="separate shared secret for the cluster plane; without it "
        "a serve/loadgen --engine cluster run keys both planes from "
        "--secret-file — avoid that when participants hold the service "
        "secret (the cluster secret admits pickled code to workers)",
    )


def _engine_workers(args: argparse.Namespace) -> int | None:
    """The worker count the chosen backend actually consumes.

    ``--cluster-workers`` wins for the cluster backend, but a bare
    ``--engine cluster --workers N`` still means N daemons — silently
    ignoring an explicit ``--workers`` would surprise.
    """
    if args.engine == "cluster" and args.cluster_workers is not None:
        return args.cluster_workers
    return args.workers


def _engine_options(
    args: argparse.Namespace, service_plane: bool = False
) -> dict:
    """Cluster tuning knobs as ``get_executor`` keyword options.

    Collected regardless of ``--engine``: passing a cluster knob to an
    in-process backend is an error the engine layer raises loudly —
    never a silently ignored flag.  The security flags follow the same
    rule, except under ``service_plane=True`` (``serve``/``loadgen``),
    where a non-cluster engine leaves them to the participant socket
    (see :func:`_service_security`) instead of erroring.
    """
    options: dict = {}
    if args.cluster_chunk_min is not None:
        options["chunk_min"] = args.cluster_chunk_min
    if args.cluster_chunk_max is not None:
        options["chunk_max"] = args.cluster_chunk_max
    if args.stream_threshold is not None:
        options["stream_threshold"] = args.stream_threshold
    # --cluster-secret-file always wins for the cluster plane (and is
    # passed through — hence rejected loudly — for in-process engines);
    # a bare --secret-file reaches the cluster only where no service
    # socket could claim it instead.
    if args.cluster_secret_file is not None:
        options["secret_file"] = args.cluster_secret_file
    elif (
        not service_plane or args.engine == "cluster"
    ) and args.secret_file is not None:
        options["secret_file"] = args.secret_file
    if not service_plane or args.engine == "cluster":
        if args.tls_cert is not None:
            options["tls_cert"] = args.tls_cert
        if args.tls_key is not None:
            options["tls_key"] = args.tls_key
    if args.engine == "cluster":
        # The cluster plane reports into the process-global registry
        # (so --metrics-port exposes it) and forwards --trace to the
        # coordinator and its spawn-local workers.
        options["registry"] = default_registry()
        if getattr(args, "trace", False):
            options["trace"] = True
    return options


def _service_security(args: argparse.Namespace) -> SecurityConfig | None:
    """Security material for the participant-facing service socket."""
    return SecurityConfig.from_options(
        secret_file=args.secret_file,
        tls_cert=args.tls_cert,
        tls_key=args.tls_key,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproductions of 'Uncheatable Grid Computing' (ICDCS 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig2", help="Fig. 2 required-sample-size curves")
    p.add_argument("--epsilon", type=float, default=1e-4)
    p.set_defaults(fn=_cmd_fig2)

    p = sub.add_parser("eq2", help="Eq. (2) analytic vs Monte-Carlo")
    p.add_argument("--r", type=float, default=0.5)
    p.add_argument("--q", type=float, default=0.0)
    p.add_argument("--n", type=int, default=300)
    p.add_argument("--trials", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    _add_engine_args(p)
    p.set_defaults(fn=_cmd_eq2)

    p = sub.add_parser("comm", help="O(n) vs O(m log n) wire bytes")
    p.add_argument("--m", type=int, default=50)
    p.add_argument("--max-exp", type=int, default=14, dest="max_exp")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_comm)

    p = sub.add_parser("rco", help="§3.3 storage/recompute trade-off")
    p.add_argument("--n", type=int, default=4096)
    p.add_argument("--m", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_rco)

    p = sub.add_parser("regrind", help="§4.2 regrinding attack economics")
    p.add_argument("--n", type=int, default=256)
    p.add_argument("--m", type=int, default=6)
    p.add_argument("--r", type=float, default=0.8)
    p.add_argument("--f-cost", type=float, default=100.0, dest="f_cost")
    p.add_argument("--max-attempts", type=int, default=100_000,
                   dest="max_attempts")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_regrind)

    p = sub.add_parser("deterrence", help="incentive-level sample sizing")
    p.add_argument("--payment", type=float, default=150.0)
    p.add_argument("--task-cost", type=float, default=100.0, dest="task_cost")
    p.add_argument("--penalty", type=float, default=0.0)
    p.add_argument("--q", type=float, default=0.5)
    p.set_defaults(fn=_cmd_deterrence)

    p = sub.add_parser(
        "population", help="population simulation on a chosen backend"
    )
    p.add_argument("--n", type=int, default=1 << 14)
    p.add_argument("--participants", type=int, default=64)
    p.add_argument("--m", type=int, default=20)
    p.add_argument("--r", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    _add_trace_arg(p)
    _add_engine_args(p)
    p.set_defaults(fn=_cmd_population)

    def add_service_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n", type=int, default=1 << 12,
                       help="global domain size D")
        p.add_argument("--participants", type=_positive_int, default=64)
        p.add_argument("--m", type=int, default=16,
                       help="samples per task")
        p.add_argument("--protocol", choices=("cbs", "ni-cbs"),
                       default="ni-cbs")
        p.add_argument("--workload", choices=sorted(WORKLOADS),
                       default="PasswordSearch")
        p.add_argument("--seed", type=int, default=0)
        _add_engine_args(p)

    p = sub.add_parser(
        "serve", help="run the supervisor as an asyncio TCP service"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7641)
    p.add_argument("--session-ttl", type=float, default=300.0,
                   dest="session_ttl",
                   help="seconds before abandoned sessions are evicted")
    p.add_argument("--metrics-port", type=int, default=None,
                   dest="metrics_port",
                   help="serve /metrics (Prometheus text), /stats (JSON) "
                   "and the /healthz + /readyz probes on this localhost "
                   "port (0 picks a free one)")
    p.add_argument("--stats-interval", type=float, default=None,
                   dest="stats_interval",
                   help="log a metrics snapshot line every N seconds")
    p.add_argument("--flight-dir", default=None, dest="flight_dir",
                   help="write the flight-recorder JSON artifact here on "
                   "crash, SIGUSR1, and clean shutdown")
    p.add_argument("--drain-grace", type=float, default=0.0,
                   dest="drain_grace",
                   help="seconds to keep serving (with /readyz at 503) "
                   "after SIGTERM before closing the listener")
    _add_trace_arg(p)
    add_service_args(p)
    p.set_defaults(fn=_cmd_serve, engine="threads")

    p = sub.add_parser(
        "loadgen",
        help="drive N honest/cheating participants against a supervisor",
    )
    p.add_argument("--host", default=None,
                   help="connect to a running supervisor (else self-contained)")
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--connect-timeout", type=float, default=15.0,
                   dest="connect_timeout",
                   help="seconds to retry the first TCP connect")
    p.add_argument("--r", type=float, default=0.5,
                   help="cheaters' honesty ratio")
    p.add_argument("--concurrency", type=_positive_int, default=32)
    p.add_argument("--check", action="store_true",
                   help="exit nonzero unless the detection report is clean")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also save throughput/latency results as JSON")
    _add_trace_arg(p)
    add_service_args(p)
    p.set_defaults(fn=_cmd_loadgen, engine="threads")

    p = sub.add_parser(
        "stats",
        help="fetch a running supervisor's live metrics snapshot "
        "over the authenticated service protocol",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="supervisor address to query")
    p.add_argument("--json", action="store_true",
                   help="print the raw JSON snapshot")
    p.add_argument("--secret-file", default=None, dest="secret_file",
                   help="shared secret to authenticate with")
    p.add_argument("--tls-cert", default=None, dest="tls_cert",
                   help="supervisor TLS certificate to pin")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "trace",
        help="render a distributed span timeline (ASCII waterfall) "
        "from a live supervisor or a flight-recorder dump",
    )
    p.add_argument("action", choices=("view",),
                   help="what to do with the trace")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="fetch spans from this supervisor over the "
                   "authenticated service protocol")
    p.add_argument("--trace-id", default=None, dest="trace_id",
                   help="trace id (printed as '[trace ID]' by --trace "
                   "runs; required with --connect)")
    p.add_argument("--dump", default=None, metavar="PATH",
                   help="render from a flight-recorder JSON artifact "
                   "instead of a live server")
    p.add_argument("--secret-file", default=None, dest="secret_file",
                   help="shared secret to authenticate with")
    p.add_argument("--tls-cert", default=None, dest="tls_cert",
                   help="supervisor TLS certificate to pin")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "worker",
        help="cluster worker daemon: execute engine chunks for a "
        "coordinator (see README for the multi-host recipe)",
    )
    add_worker_args(p)
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser(
        "lint",
        help="run the repro-lint invariant checkers (pickle containment, "
        "lock discipline, async blocking, swallowed exceptions, metrics "
        "naming, wire-schema coverage)",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="baseline of grandfathered findings")
    p.add_argument("--write-baseline", default=None, metavar="FILE",
                   dest="write_baseline",
                   help="write current findings as a fresh baseline")
    p.add_argument("--rules", default=None, metavar="RL001,RL002",
                   help="comma-separated rule IDs to run (default: all)")
    p.add_argument("--list-rules", action="store_true", dest="list_rules",
                   help="print the rule catalogue and exit")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser("demo", help="one narrated CBS run")
    p.add_argument("--n", type=int, default=4096)
    p.add_argument("--m", type=int, default=20)
    p.add_argument("--r", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(fn=_cmd_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code.

    Configuration errors (an unreadable ``--secret-file``, a
    ``--tls-key`` without its cert, a cluster knob on an in-process
    engine) surface as one clean line on stderr and exit code 2 —
    the same UX the ``worker`` daemon already had — not a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream of a pipe closed early (`repro.cli stats | head`):
        # point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise a second time, and exit like a well-behaved
        # filter instead of tracebacking.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
