"""Developer tooling that ships with the repo but outside the runtime.

Nothing under :mod:`repro.devtools` is imported by the protocol,
engine, service, or observability planes — these are tools *about*
the codebase (static analysis, invariants, CI gates), not part of it.
"""
