"""``python -m repro.devtools.lint`` entry point."""

import sys

from repro.devtools.lint.runner import main

sys.exit(main())
