"""repro-lint: AST-based invariant checks for this repo's conventions.

The test suite proves the code *works*; these checkers prove the code
keeps the promises that make it safe to grow — pickle stays inside the
versioned codec envelope, ``_lock`` holders actually hold their lock,
async planes never block the loop, swallowed exceptions are counted,
metrics follow the naming contract, and the wire schema stays closed
(README "Static analysis").

Run it as ``python -m repro.devtools.lint [paths...]`` or via
``repro.cli lint``.  The framework is dependency-free (stdlib ``ast``
+ ``tokenize`` only) so it runs anywhere the repo does.
"""

from repro.devtools.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.lint.framework import (
    Checker,
    FileContext,
    Finding,
    collect_files,
    lint_paths,
)
from repro.devtools.lint.checkers import ALL_CHECKERS, checker_catalogue

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "FileContext",
    "Finding",
    "apply_baseline",
    "checker_catalogue",
    "collect_files",
    "lint_paths",
    "load_baseline",
    "write_baseline",
]
