"""RL001: no pickle anywhere in the library — the allowlist is empty.

Cluster wire v5 replaced the pickle envelope with the typed job codec
(:mod:`repro.service.jobcodec`): jobs are registered callable names
plus schema-checked arguments — data, never code — so nothing in
``src`` has any business importing a pickle-shaped serializer.  Any
such import reopens the deserialize-to-RCE surface this repo spent a
wire version retiring, silently.  ``SANCTIONED_SUFFIXES`` is kept (and
kept empty) so a future exemption is one reviewed diff line, not a new
mechanism.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.framework import (
    Checker,
    FileContext,
    Finding,
    dotted_name,
)

#: Modules that deserialize arbitrary Python objects.
FORBIDDEN_MODULES = frozenset(
    {"pickle", "cPickle", "_pickle", "dill", "cloudpickle", "shelve"}
)

#: Files allowed to use pickle (repo-relative posix suffixes).  Empty
#: since wire v5: the typed jobcodec carries every cluster payload.
SANCTIONED_SUFFIXES: tuple[str, ...] = ()


class PickleContainment(Checker):
    rule = "RL001"
    name = "pickle-containment"
    description = (
        "pickle (and pickle-shaped serializers) are banned from the "
        "library: cluster payloads go through the typed job codec in "
        "repro.service.jobcodec (registered names + schema-checked "
        "arguments, never code)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if SANCTIONED_SUFFIXES and ctx.rel_path.endswith(SANCTIONED_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in FORBIDDEN_MODULES:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r} — pickle is "
                            "banned from the library; ship values "
                            "through the typed job codec in "
                            "repro.service.jobcodec",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in FORBIDDEN_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {node.module!r} — pickle is "
                        "banned from the library; ship values through "
                        "the typed job codec in repro.service.jobcodec",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in ("__import__", "importlib.import_module"):
                    if (
                        node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)
                        and node.args[0].value.split(".")[0]
                        in FORBIDDEN_MODULES
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"dynamic import of {node.args[0].value!r} "
                            "— pickle is banned from the library",
                        )
            elif isinstance(node, ast.Attribute):
                base = dotted_name(node.value)
                if base in FORBIDDEN_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"use of {base}.{node.attr} — pickle is banned "
                        "from the library",
                    )
