"""RL001: pickle stays inside the sanctioned codec module.

``repro.service.codec`` is the single place allowed to touch pickle —
it wraps every load in the versioned, size-capped, authenticated
envelope (``CLUSTER_WIRE_VERSION``), which is the only thing standing
between a hostile peer and arbitrary code execution.  Any other
import of a pickle-shaped serializer reopens that surface, silently.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.framework import (
    Checker,
    FileContext,
    Finding,
    dotted_name,
)

#: Modules that deserialize arbitrary Python objects.
FORBIDDEN_MODULES = frozenset(
    {"pickle", "cPickle", "_pickle", "dill", "cloudpickle", "shelve"}
)

#: Files allowed to use pickle (repo-relative posix suffixes).
SANCTIONED_SUFFIXES = ("repro/service/codec.py",)


class PickleContainment(Checker):
    rule = "RL001"
    name = "pickle-containment"
    description = (
        "pickle (and pickle-shaped serializers) may only be used inside "
        "repro/service/codec.py; everywhere else must go through the "
        "versioned envelope API"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel_path.endswith(SANCTIONED_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in FORBIDDEN_MODULES:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r} outside the "
                            "sanctioned codec module — use the envelope "
                            "API in repro.service.codec",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in FORBIDDEN_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {node.module!r} outside the "
                        "sanctioned codec module — use the envelope API "
                        "in repro.service.codec",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in ("__import__", "importlib.import_module"):
                    if (
                        node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)
                        and node.args[0].value.split(".")[0]
                        in FORBIDDEN_MODULES
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"dynamic import of {node.args[0].value!r} "
                            "outside the sanctioned codec module",
                        )
            elif isinstance(node, ast.Attribute):
                base = dotted_name(node.value)
                if base in FORBIDDEN_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"use of {base}.{node.attr} outside the "
                        "sanctioned codec module",
                    )
