"""The rule registry: one module per rule, ~50 lines each."""

from __future__ import annotations

from repro.devtools.lint.checkers.pickle_containment import PickleContainment
from repro.devtools.lint.checkers.locks import LockDiscipline
from repro.devtools.lint.checkers.async_blocking import BlockingInAsync
from repro.devtools.lint.checkers.exceptions import SwallowedException
from repro.devtools.lint.checkers.metrics import MetricsNaming
from repro.devtools.lint.checkers.wire_schema import WireSchemaCoverage

#: Every shipped rule, in rule-ID order.  Instantiated fresh per run
#: (RL006 carries per-project state from ``begin_project``).
ALL_CHECKERS = (
    PickleContainment,
    LockDiscipline,
    BlockingInAsync,
    SwallowedException,
    MetricsNaming,
    WireSchemaCoverage,
)


def checker_catalogue() -> list[dict]:
    """Rule metadata for ``--list-rules`` and the docs."""
    return [
        {
            "rule": cls.rule,
            "name": cls.name,
            "severity": cls.severity,
            "description": cls.description,
        }
        for cls in ALL_CHECKERS
    ]
