"""RL004: broad except handlers must not swallow silently.

PR 7's decree: every swallowed exception is counted.  A broad handler
(bare ``except:``, ``except Exception``, ``except BaseException``, or
a tuple containing one of those) must do at least one of:

* re-raise (``raise`` anywhere in the handler);
* propagate the bound exception as data (reference ``exc``);
* log it structurally (``log_event(...)`` or a ``logger.warning``-style
  call);
* count it (``....inc()`` on an ``errors_total``-style counter, or a
  flight-recorder ``.record(...)``).

Narrow handlers (``except ValueError: pass``) are a deliberate,
reviewable statement about one failure mode and are not flagged —
"narrow the exception type" is an accepted fix for this rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.framework import Checker, FileContext, Finding

BROAD_NAMES = frozenset({"Exception", "BaseException"})

#: Logger-style methods that count as handling.
LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical"}
)

#: Metric/recorder methods that count as handling.
COUNT_METHODS = frozenset({"inc", "record"})


def _is_broad(type_node: ast.expr | None) -> bool:
    if type_node is None:
        return True  # bare except:
    if isinstance(type_node, ast.Name):
        return type_node.id in BROAD_NAMES
    if isinstance(type_node, ast.Tuple):
        return any(_is_broad(elt) for elt in type_node.elts)
    return False


class SwallowedException(Checker):
    rule = "RL004"
    name = "swallowed-exception"
    description = (
        "broad except handlers must re-raise, reference the bound "
        "exception, log via log_event/logger, or increment an error "
        "counter — or narrow the exception type"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and _is_broad(node.type):
                if not self._handles(node):
                    yield self.finding(
                        ctx,
                        node,
                        "broad except handler swallows the error — "
                        "re-raise, log via log_event, count it into an "
                        "errors_total counter, or narrow the exception "
                        "type",
                    )

    @staticmethod
    def _handles(handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in (
            n for stmt in handler.body for n in ast.walk(stmt)
        ):
            if isinstance(node, ast.Raise):
                return True
            if bound and isinstance(node, ast.Name) and node.id == bound:
                return True
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "log_event":
                    return True
                if isinstance(func, ast.Attribute) and func.attr in (
                    LOG_METHODS | COUNT_METHODS
                ):
                    return True
        return False
