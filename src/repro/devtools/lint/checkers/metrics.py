"""RL005: registry metrics follow the naming contract.

One dashboard queries every plane, so one contract names them all
(README "Observability"): every series carries the ``repro_`` prefix,
counters end ``_total`` (Prometheus convention — rate() only makes
sense on counters), non-counters must *not* claim ``_total``, and the
HELP text is present so a scrape is self-describing.

Checked at the registration call site: any ``.counter("name", ...)``,
``.gauge(...)``, ``.histogram(...)`` call whose first argument is a
string literal.  Dynamic names are skipped (nothing to check
statically) — the registry's own runtime validation still applies.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.lint.framework import Checker, FileContext, Finding

METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})

NAME_RE = re.compile(r"repro_[a-z0-9_]+")


class MetricsNaming(Checker):
    rule = "RL005"
    name = "metrics-naming"
    description = (
        "metric names carry the repro_ prefix, counters end _total "
        "(and only counters do), and HELP text is present"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in METRIC_FACTORIES
            ):
                continue
            kind = node.func.attr
            if not node.args:
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                continue  # dynamic name: runtime validation's problem
            name = first.value
            if NAME_RE.fullmatch(name) is None:
                yield self.finding(
                    ctx,
                    node,
                    f"metric {name!r} must match 'repro_[a-z0-9_]+' "
                    "(repo-wide namespace prefix, lowercase)",
                )
            if kind == "counter" and not name.endswith("_total"):
                yield self.finding(
                    ctx,
                    node,
                    f"counter {name!r} must end '_total' "
                    "(Prometheus counter convention)",
                )
            if kind != "counter" and name.endswith("_total"):
                yield self.finding(
                    ctx,
                    node,
                    f"{kind} {name!r} must not end '_total' — that "
                    "suffix promises counter semantics",
                )
            help_arg: ast.expr | None = None
            if len(node.args) > 1:
                help_arg = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "help":
                        help_arg = kw.value
            if help_arg is None or (
                isinstance(help_arg, ast.Constant)
                and (
                    not isinstance(help_arg.value, str)
                    or not help_arg.value.strip()
                )
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"metric {name!r} registered without HELP text — "
                    "a scrape must be self-describing",
                )
