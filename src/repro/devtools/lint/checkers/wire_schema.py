"""RL006: the wire schema stays closed and size-capped.

The codec (``repro/service/codec.py``) is the single definition of
what travels on the wire.  This rule cross-references its three tag
tables so they can never drift apart, and keeps raw frames from being
hand-built elsewhere:

Inside the codec:

* every tag emitted by ``_payload_dict`` has a matching decode branch
  in ``decode_frame_payload`` (and vice versa — counting the
  ``_MSG_FRAMES`` protocol-message table both sides share);
* every tag appears in ``_WIRE_TAGS`` (the per-type frame metrics
  would otherwise report ``unknown``);
* every payload-bearing encode branch (a dict literal with a ``"p"``
  key) calls ``check_payload_size`` before the bytes leave;
* the decode side never reads ``"p"`` directly — it must go through
  the size-capped ``_cluster_payload_field`` helper (which itself must
  call ``check_payload_size``).

Inside the job codec (``repro/service/jobcodec.py``, the typed value
layer the frame codec carries):

* the ``Tag`` byte table, the ``_DECODERS`` dispatch table and the
  ``_TAG_NAMES`` name table must agree member-for-member — a tag with
  no decoder is a frame the peer cannot read, a decoder with no tag is
  dead code wearing a wire byte;
* every envelope entry point (``encode_cluster_*``/``decode_cluster_*``)
  calls ``check_payload_size`` — no envelope leaves or enters unbounded;
* outside the ``_Decoder`` class, nothing subscripts a ``.data``
  buffer directly — all byte reads go through the bounds-checked
  ``take``/``uint``/``name`` accessors, so a lying length field cannot
  turn into an silent short read.

Outside the codec:

* no dict literal with a ``"t"`` key naming a known wire tag — frames
  are built from the typed dataclasses + ``encode_frame``, never as
  raw dicts that silently bypass validation and size caps.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.devtools.lint.framework import Checker, FileContext, Finding

CODEC_SUFFIX = "service/codec.py"
JOBCODEC_SUFFIX = "service/jobcodec.py"


def _const_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _dict_key_value(node: ast.Dict, key: str) -> str | None:
    """String-constant value of ``key`` in a dict literal, if present."""
    for k, v in zip(node.keys, node.values):
        if k is not None and _const_str(k) == key:
            return _const_str(v)
    return None


def _dict_has_key(node: ast.Dict, key: str) -> bool:
    return any(k is not None and _const_str(k) == key for k in node.keys)


class WireSchemaCoverage(Checker):
    rule = "RL006"
    name = "wire-schema-coverage"
    description = (
        "codec tag tables (encode/decode/_WIRE_TAGS) must agree, "
        "jobcodec Tag/_DECODERS/_TAG_NAMES must agree, payload "
        "branches and envelope entry points must call "
        "check_payload_size, byte reads go through bounds-checked "
        "accessors, and no raw dict-literal frames outside the codec"
    )

    def __init__(self) -> None:
        self._codec_rel: str | None = None
        self._known_tags: frozenset[str] = frozenset()

    def begin_project(self, contexts: Sequence[FileContext]) -> None:
        for ctx in contexts:
            if ctx.rel_path.endswith(CODEC_SUFFIX):
                self._codec_rel = ctx.rel_path
                enc, dec, wire, msg = self._tag_tables(ctx.tree)
                self._known_tags = frozenset(
                    {t for t, _ in enc} | dec | wire | msg
                )
                break

    # -- codec table extraction -------------------------------------

    @staticmethod
    def _tag_tables(tree: ast.Module):
        """(encode [(tag, If-branch)], decode tags, _WIRE_TAGS values,
        _MSG_FRAMES keys)."""
        encode: list[tuple[str, ast.If | None]] = []
        decode: set[str] = set()
        wire: set[str] = set()
        msg: set[str] = set()
        payload_fn = decode_fn = None
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                if node.name == "_payload_dict":
                    payload_fn = node
                elif node.name == "decode_frame_payload":
                    decode_fn = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "_WIRE_TAGS" and isinstance(
                        node.value, ast.Dict
                    ):
                        wire = {
                            v
                            for val in node.value.values
                            if (v := _const_str(val)) is not None
                        }
                    elif target.id == "_MSG_FRAMES" and isinstance(
                        node.value, ast.Dict
                    ):
                        msg = {
                            k
                            for key in node.value.keys
                            if key is not None
                            and (k := _const_str(key)) is not None
                        }
        if payload_fn is not None:
            for branch in ast.walk(payload_fn):
                if not isinstance(branch, ast.If):
                    continue
                for sub in ast.walk(branch):
                    if isinstance(sub, ast.Dict):
                        tag = _dict_key_value(sub, "t")
                        if tag is not None:
                            encode.append((tag, branch))
        if decode_fn is not None:
            for sub in ast.walk(decode_fn):
                if (
                    isinstance(sub, ast.Compare)
                    and isinstance(sub.left, ast.Name)
                    and sub.left.id == "tag"
                    and len(sub.ops) == 1
                    and isinstance(sub.ops[0], ast.Eq)
                ):
                    tag = _const_str(sub.comparators[0])
                    if tag is not None:
                        decode.add(tag)
        return encode, decode, wire, msg

    # -- per-file checks --------------------------------------------

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel_path.endswith(CODEC_SUFFIX):
            yield from self._check_codec(ctx)
        elif ctx.rel_path.endswith(JOBCODEC_SUFFIX):
            yield from self._check_jobcodec(ctx)
        elif self._known_tags:
            yield from self._check_outside(ctx)

    def _check_codec(self, ctx: FileContext) -> Iterator[Finding]:
        encode, decode, wire, msg = self._tag_tables(ctx.tree)
        encode_tags = {tag for tag, _ in encode}
        for tag in sorted(encode_tags - decode - msg):
            yield self.finding(
                ctx, ctx.tree,
                f"encoded frame tag {tag!r} has no decode branch — "
                "the peer cannot handle this frame type", line=1,
            )
        for tag in sorted(decode - encode_tags - msg):
            yield self.finding(
                ctx, ctx.tree,
                f"decoded frame tag {tag!r} has no encode branch — "
                "dead handler or missing _payload_dict case", line=1,
            )
        if wire:
            for tag in sorted((encode_tags | decode) - wire - msg):
                yield self.finding(
                    ctx, ctx.tree,
                    f"frame tag {tag!r} missing from _WIRE_TAGS — "
                    "per-type frame metrics would report 'unknown'",
                    line=1,
                )
        seen_branches: set[int] = set()
        for tag, branch in encode:
            if branch is None or id(branch) in seen_branches:
                continue
            seen_branches.add(id(branch))
            has_payload = any(
                isinstance(sub, ast.Dict) and _dict_has_key(sub, "p")
                for sub in ast.walk(branch)
            )
            if not has_payload:
                continue
            capped = any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "check_payload_size"
                for sub in ast.walk(branch)
            )
            if not capped:
                yield self.finding(
                    ctx, branch,
                    f"payload-bearing encode branch for tag {tag!r} "
                    "does not call check_payload_size — unbounded "
                    "frames reach the wire",
                )
        yield from self._check_decode_payload_access(ctx)

    def _check_decode_payload_access(
        self, ctx: FileContext
    ) -> Iterator[Finding]:
        helper_capped = False
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name == "_cluster_payload_field":
                helper_capped = any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "check_payload_size"
                    for sub in ast.walk(node)
                )
            elif node.name == "decode_frame_payload":
                for sub in ast.walk(node):
                    direct = (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "get"
                        and sub.args
                        and _const_str(sub.args[0]) == "p"
                    ) or (
                        isinstance(sub, ast.Subscript)
                        and _const_str(sub.slice) == "p"
                    )
                    if direct:
                        yield self.finding(
                            ctx, sub,
                            "decode reads payload field 'p' directly — "
                            "go through the size-capped "
                            "_cluster_payload_field helper",
                        )
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == "_cluster_payload_field"
                and not helper_capped
            ):
                yield self.finding(
                    ctx, node,
                    "_cluster_payload_field does not call "
                    "check_payload_size — decoded payloads are "
                    "unbounded",
                )

    # -- the typed job codec ----------------------------------------

    def _check_jobcodec(self, ctx: FileContext) -> Iterator[Finding]:
        tag_members: set[str] = set()
        decoder_keys: set[str] = set()
        name_keys: set[str] = set()
        decoder_nodes: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                if node.name == "Tag":
                    for stmt in node.body:
                        if isinstance(stmt, ast.Assign):
                            tag_members.update(
                                t.id
                                for t in stmt.targets
                                if isinstance(t, ast.Name)
                            )
                elif node.name == "_Decoder":
                    decoder_nodes.update(id(sub) for sub in ast.walk(node))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name) or not isinstance(
                        node.value, ast.Dict
                    ):
                        continue
                    members = {
                        key.attr
                        for key in node.value.keys
                        if isinstance(key, ast.Attribute)
                        and isinstance(key.value, ast.Name)
                        and key.value.id == "Tag"
                    }
                    if target.id == "_DECODERS":
                        decoder_keys = members
                    elif target.id == "_TAG_NAMES":
                        name_keys = members
        for member in sorted(tag_members - decoder_keys):
            yield self.finding(
                ctx, ctx.tree,
                f"Tag.{member} has no _DECODERS entry — an encodable "
                "value the peer cannot read", line=1,
            )
        for member in sorted(decoder_keys - tag_members):
            yield self.finding(
                ctx, ctx.tree,
                f"_DECODERS keys unknown Tag member {member!r} — dead "
                "decode branch wearing a wire byte", line=1,
            )
        for member in sorted(tag_members ^ name_keys):
            yield self.finding(
                ctx, ctx.tree,
                f"Tag table and _TAG_NAMES disagree on {member!r} — "
                "docs/errors would name tags the wire does not carry",
                line=1,
            )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) and node.name.startswith(
                ("encode_cluster_", "decode_cluster_")
            ):
                capped = any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "check_payload_size"
                    for sub in ast.walk(node)
                )
                if not capped:
                    yield self.finding(
                        ctx, node,
                        f"envelope entry point {node.name!r} does not "
                        "call check_payload_size — unbounded payloads "
                        "cross the wire",
                    )
            elif (
                isinstance(node, ast.Subscript)
                and id(node) not in decoder_nodes
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "data"
            ):
                yield self.finding(
                    ctx, node,
                    "direct subscript of a decoder's .data buffer "
                    "outside _Decoder — byte reads must go through the "
                    "bounds-checked take/uint/name accessors",
                )

    def _check_outside(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Dict):
                tag = _dict_key_value(node, "t")
                if tag is not None and tag in self._known_tags:
                    yield self.finding(
                        ctx, node,
                        f"dict literal builds wire frame {tag!r} outside "
                        "the codec — use the typed frame dataclass + "
                        "encode_frame so validation and size caps apply",
                    )
