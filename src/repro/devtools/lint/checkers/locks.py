"""RL002: classes that declare ``self._lock`` must hold it to mutate.

The repo's shared-state classes (``MetricsRegistry``, ``SpanBuffer``,
``HealthState``, ``FlightRecorder``, ``ClusterExecutor``) all follow
one convention: a ``_lock`` created in ``__init__`` guards every
mutation of instance state.  A mutation outside ``with self._lock:``
is a data race waiting for enough cores — exactly the class of bug no
test reliably reproduces.

Scope notes (kept deliberately narrow to stay useful):

* Only *mutations* are checked — attribute stores, ``del``, subscript
  stores, and calls to known container mutators.  Reads are allowed
  outside the lock (the repo uses double-checked locking on read-heavy
  paths, e.g. ``_Metric.labels``).
* ``__init__``/``__new__``/dunder-repr methods are exempt (no
  concurrent aliasing exists before construction completes), as are
  methods named ``*_locked`` (documented caller-holds-lock contract).
* Methods that call ``self._lock.acquire()`` manage the lock by hand
  and are skipped wholesale rather than second-guessed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.framework import (
    Checker,
    FileContext,
    Finding,
    is_self_attr,
)

#: Container methods that mutate their receiver.
MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "extendleft", "insert", "add",
        "remove", "discard", "pop", "popleft", "popitem", "clear",
        "update", "setdefault", "sort", "reverse",
    }
)

#: Methods exempt from the discipline.
EXEMPT_METHODS = frozenset(
    {"__init__", "__new__", "__post_init__", "__repr__", "__str__",
     "__del__", "__getstate__", "__setstate__"}
)

LOCK_ATTR = "_lock"


def _declares_lock(cls: ast.ClassDef) -> bool:
    """True if any method assigns ``self._lock`` (usually ``__init__``)."""
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        self_name = _self_name(method)
        if self_name is None:
            continue
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and any(
                is_self_attr(t, self_name, LOCK_ATTR) for t in node.targets
            ):
                return True
            if isinstance(node, ast.AnnAssign) and is_self_attr(
                node.target, self_name, LOCK_ATTR
            ):
                return True
    return False


def _self_name(method: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    args = method.args.posonlyargs + method.args.args
    for decorator in method.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "staticmethod":
            return None
    return args[0].arg if args else None


def _holds_lock(with_node: ast.With | ast.AsyncWith, self_name: str) -> bool:
    for item in with_node.items:
        expr = item.context_expr
        if is_self_attr(expr, self_name, LOCK_ATTR):
            return True
    return False


class LockDiscipline(Checker):
    rule = "RL002"
    name = "lock-discipline"
    description = (
        "instance-state mutations in classes declaring self._lock must "
        "happen inside `with self._lock:` (init/repr and *_locked "
        "methods exempt)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and _declares_lock(node):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in EXEMPT_METHODS or method.name.endswith(
                "_locked"
            ):
                continue
            self_name = _self_name(method)
            if self_name is None:
                continue
            if self._manages_lock_by_hand(method, self_name):
                continue
            yield from self._walk(ctx, cls, method, method.body, self_name,
                                  held=False)

    @staticmethod
    def _manages_lock_by_hand(method: ast.AST, self_name: str) -> bool:
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire", "release")
                and is_self_attr(node.func.value, self_name, LOCK_ATTR)
            ):
                return True
        return False

    def _walk(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        method: ast.AST,
        body: list[ast.stmt],
        self_name: str,
        held: bool,
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes have their own calling context
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                now_held = held or _holds_lock(stmt, self_name)
                yield from self._walk(ctx, cls, method, stmt.body, self_name,
                                      now_held)
                continue
            if not held:
                yield from self._check_stmt(ctx, cls, method, stmt, self_name)
            for child_body in self._nested_bodies(stmt):
                yield from self._walk(ctx, cls, method, child_body, self_name,
                                      held)

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies = []
        for field in ("body", "orelse", "finalbody"):
            value = getattr(stmt, field, None)
            if isinstance(value, list) and value and isinstance(
                value[0], ast.stmt
            ):
                bodies.append(value)
        for handler in getattr(stmt, "handlers", []):
            bodies.append(handler.body)
        return bodies

    def _check_stmt(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        stmt: ast.stmt,
        self_name: str,
    ) -> Iterator[Finding]:
        def flag(node: ast.AST, what: str) -> Finding:
            return self.finding(
                ctx,
                node,
                f"{cls.name}.{method.name} mutates {what} outside "
                f"`with self.{LOCK_ATTR}:` — hold the lock or rename the "
                "method *_locked if the caller owns it",
            )

        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt, ast.AnnAssign) and stmt.value is None:
                targets = []
            else:
                targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = stmt.targets
        for target in targets:
            if isinstance(target, ast.Tuple):
                inner: list[ast.expr] = list(target.elts)
            else:
                inner = [target]
            for tgt in inner:
                base = tgt
                if isinstance(base, (ast.Subscript,)):
                    base = base.value
                if is_self_attr(base, self_name) and base.attr != LOCK_ATTR:
                    yield flag(tgt, f"self.{base.attr}")
        # Mutating method calls on self.X (self.X.append(...), ...).
        # Scan only the statement's own expressions — nested statement
        # bodies (an `if:` wrapping `with self._lock:`) are visited by
        # _walk with their own held-state.
        own_exprs = [
            child
            for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.expr)
        ]
        for node in (n for e in own_exprs for n in ast.walk(e)):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
                and is_self_attr(node.func.value, self_name)
                and node.func.value.attr != LOCK_ATTR
            ):
                yield flag(node, f"self.{node.func.value.attr}."
                                 f"{node.func.attr}()")
