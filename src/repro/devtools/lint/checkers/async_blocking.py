"""RL003: nothing blocking directly inside ``async def`` bodies.

One stalled coroutine stalls every session the supervisor is serving
— the event loop is the shared resource the whole service plane rides.
Blocking work must leave the loop via ``loop.run_in_executor`` (the
engine's ``futures_pool`` is the sanctioned bridge) or use the asyncio
native (``asyncio.sleep``, ``asyncio.open_connection``).

Flags, when lexically inside an ``async def`` (nested sync ``def``
bodies are excluded — they run wherever they are called):

* ``time.sleep`` (use ``asyncio.sleep``);
* ``subprocess.run/call/check_call/check_output/Popen`` and
  ``os.system``/``os.popen`` (use ``asyncio.create_subprocess_*``);
* sync socket construction (``socket.socket``,
  ``socket.create_connection``) — use ``asyncio.open_connection``;
* builtin ``open``/``input`` (sync file/console I/O on the loop);
* ``hashlib`` calls inside a ``for``/``while`` loop — the hash
  mega-loops this repo's workloads are made of must offload to the
  engine pool, never run on the loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.framework import (
    Checker,
    FileContext,
    Finding,
    dotted_name,
)

#: Dotted call → suggested replacement.
BLOCKING_CALLS = {
    "time.sleep": "asyncio.sleep",
    "subprocess.run": "asyncio.create_subprocess_exec",
    "subprocess.call": "asyncio.create_subprocess_exec",
    "subprocess.check_call": "asyncio.create_subprocess_exec",
    "subprocess.check_output": "asyncio.create_subprocess_exec",
    "subprocess.Popen": "asyncio.create_subprocess_exec",
    "os.system": "asyncio.create_subprocess_shell",
    "os.popen": "asyncio.create_subprocess_shell",
    "socket.socket": "asyncio.open_connection",
    "socket.create_connection": "asyncio.open_connection",
}

#: Blocking builtins (bare-name calls).
BLOCKING_BUILTINS = {
    "open": "loop.run_in_executor (or read before entering async code)",
    "input": "never prompt on the event loop",
}


class BlockingInAsync(Checker):
    rule = "RL003"
    name = "blocking-in-async"
    description = (
        "async def bodies must not call blocking primitives "
        "(time.sleep, subprocess, sync sockets/files, hashlib loops) — "
        "offload via run_in_executor/futures_pool"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(ctx, node, node.body,
                                                  in_loop=False)

    def _check_async_body(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        body: list[ast.stmt],
        in_loop: bool,
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # separate scope; nested async defs re-visited
            looping = in_loop or isinstance(
                stmt, (ast.For, ast.AsyncFor, ast.While)
            )
            exprs = [
                child
                for child in ast.iter_child_nodes(stmt)
                if isinstance(child, ast.expr)
            ]
            # `with open(...)` hides the call in a withitem node.
            for item in getattr(stmt, "items", []):
                exprs.append(item.context_expr)
            for expr in exprs:
                yield from self._check_expr(ctx, func, expr, looping)
            for field in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field, None)
                if isinstance(nested, list) and nested and isinstance(
                    nested[0], ast.stmt
                ):
                    yield from self._check_async_body(ctx, func, nested,
                                                      looping)
            for handler in getattr(stmt, "handlers", []):
                yield from self._check_async_body(ctx, func, handler.body,
                                                  looping)

    def _check_expr(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        expr: ast.expr,
        in_loop: bool,
    ) -> Iterator[Finding]:
        # Manual walk skipping lambda bodies: a lambda handed to
        # run_in_executor is deferred work, not a call on the loop.
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in BLOCKING_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"blocking call {name}() inside async def "
                    f"{func.name} — use {BLOCKING_CALLS[name]} or "
                    "offload via run_in_executor",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in BLOCKING_BUILTINS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"blocking builtin {node.func.id}() inside async def "
                    f"{func.name} — {BLOCKING_BUILTINS[node.func.id]}",
                )
            elif (
                in_loop
                and name is not None
                and (name == "hashlib.new" or name.startswith("hashlib."))
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() inside a loop in async def {func.name} — "
                    "hash mega-loops must offload to the engine pool "
                    "(futures_pool + run_in_executor)",
                )
