"""The CLI runner behind ``python -m repro.devtools.lint``.

Exit codes: 0 clean (all findings suppressed or baselined), 1 at
least one new finding, 2 usage/configuration error.  ``repro.cli
lint`` forwards here, so the two entry points can never diverge.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from repro.devtools.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.lint.checkers import ALL_CHECKERS, checker_catalogue
from repro.devtools.lint.framework import lint_paths

#: Stable JSON report schema version (tests pin the field set).
REPORT_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "repro-lint: AST-based invariant checks (pickle containment, "
            "lock discipline, async blocking, swallowed exceptions, "
            "metrics naming, wire-schema coverage)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file of grandfathered findings; defaults to "
        f"{DEFAULT_BASELINE_NAME} in the current directory when present",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        dest="write_baseline",
        help="write current findings as a fresh baseline and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="RL001,RL002",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        dest="list_rules",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for entry in checker_catalogue():
            print(
                f"{entry['rule']} {entry['name']} [{entry['severity']}]: "
                f"{entry['description']}"
            )
        return 0

    checkers = [cls() for cls in ALL_CHECKERS]
    if args.rules is not None:
        wanted = {part.strip() for part in args.rules.split(",") if part.strip()}
        unknown = wanted - {c.rule for c in checkers}
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        checkers = [c for c in checkers if c.rule in wanted]

    findings, files_scanned = lint_paths(args.paths, checkers)

    if args.write_baseline is not None:
        write_baseline(findings, args.write_baseline)
        print(
            f"repro-lint: wrote {len(findings)} finding(s) to baseline "
            f"{args.write_baseline}"
        )
        return 0

    baseline: Counter = Counter()
    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE_NAME).is_file():
        baseline_path = DEFAULT_BASELINE_NAME
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
            return 2
    fresh, baselined = apply_baseline(findings, baseline)

    if args.format == "json":
        report = {
            "version": REPORT_VERSION,
            "files_scanned": files_scanned,
            "baselined": baselined,
            "findings": [f.to_dict() for f in fresh],
        }
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for finding in fresh:
            print(finding.render())
        summary = (
            f"repro-lint: {len(fresh)} finding(s) in {files_scanned} "
            f"file(s)"
        )
        if baselined:
            summary += f" ({baselined} baselined)"
        print(summary)
    return 1 if fresh else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
