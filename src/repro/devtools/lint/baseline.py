"""Baseline files: grandfathered findings that don't fail the run.

A baseline is a committed JSON artifact mapping finding fingerprints
(content-based: rule + file + flagged-line text, see
:class:`~repro.devtools.lint.framework.Finding`) to occurrence counts.
New code must come in clean; old findings can be paid down
incrementally without blocking unrelated PRs.  Editing a baselined
line invalidates its fingerprint, so touched debt must be fixed —
the baseline only protects code nobody is changing.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.devtools.lint.framework import Finding

BASELINE_VERSION = 1

#: Default committed baseline, looked up relative to the lint root.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


def load_baseline(path: str | Path) -> Counter:
    """Read a baseline file into a fingerprint → count multiset.

    Raises ``ValueError`` on a malformed file — a corrupt baseline
    silently admitting findings would defeat the gate.
    """
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline format in {path}")
    entries = data.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} missing 'findings' list")
    counts: Counter = Counter()
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(f"baseline {path} has a malformed entry")
        counts[str(entry["fingerprint"])] += int(entry.get("count", 1))
    return counts


def write_baseline(findings: Sequence[Finding], path: str | Path) -> None:
    """Write the given findings as a fresh baseline.

    Entries keep human-readable context (rule, path, message) so the
    committed file reviews like a TODO list, but only the fingerprint
    and count are semantically load-bearing.
    """
    counts: Counter = Counter(f.fingerprint for f in findings)
    described: dict[str, Finding] = {}
    for finding in findings:
        described.setdefault(finding.fingerprint, finding)
    entries = [
        {
            "fingerprint": fingerprint,
            "count": count,
            "rule": described[fingerprint].rule,
            "path": described[fingerprint].path,
            "message": described[fingerprint].message,
        }
        for fingerprint, count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> tuple[list[Finding], int]:
    """Split findings into (new, baselined_count).

    Matching is multiset-style: a fingerprint baselined N times admits
    at most N current occurrences; the N+1th is new.
    """
    remaining = Counter(baseline)
    fresh: list[Finding] = []
    baselined = 0
    for finding in findings:
        if remaining.get(finding.fingerprint, 0) > 0:
            remaining[finding.fingerprint] -= 1
            baselined += 1
        else:
            fresh.append(finding)
    return fresh, baselined
