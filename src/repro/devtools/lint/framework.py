"""The lint framework: findings, suppressions, and the file walk.

Checkers are small ``ast`` visitors (one module per rule under
:mod:`repro.devtools.lint.checkers`); everything shared lives here so
a new rule costs ~50 lines:

* :class:`Finding` — one diagnostic, with a content-based fingerprint
  (rule + file + flagged-line text) so baselines survive line shifts;
* :class:`FileContext` — a parsed file plus its inline suppressions
  (``# repro-lint: disable=RL001[,RL002]`` on the flagged line or on a
  standalone comment line directly above it);
* :class:`Checker` — the rule interface;
* :func:`lint_paths` — parse each file once, dispatch to every
  checker, drop suppressed findings.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Severity levels, strongest first (ordering used for sorting output).
SEVERITIES = ("error", "warning")

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_*,\s]+)"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a checker."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining.

        Content-based — rule + file + the flagged line's stripped text
        — so inserting unrelated lines above a grandfathered finding
        does not invalidate the baseline, while editing the flagged
        line itself (i.e. touching the code in question) does.
        """
        basis = "\x00".join((self.rule, self.path, self.snippet))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )


@dataclasses.dataclass(frozen=True)
class _Suppression:
    rules: frozenset[str]
    standalone: bool  # comment-only line → also covers the next line


def parse_suppressions(source: str) -> dict[int, _Suppression]:
    """Map line number → suppression parsed from ``# repro-lint:`` comments.

    Tokenize-based (not regex-over-lines) so a ``repro-lint`` string
    inside a string literal never counts as a directive.  Returns an
    empty map for source that fails to tokenize — the parse error is
    reported separately.
    """
    out: dict[int, _Suppression] = {}
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            )
            if not rules:
                continue
            lineno, col = tok.start
            before = lines[lineno - 1][:col] if lineno <= len(lines) else ""
            out[lineno] = _Suppression(
                rules=rules, standalone=not before.strip()
            )
    except tokenize.TokenError:
        return {}
    return out


class FileContext:
    """One parsed file, shared by every checker."""

    def __init__(self, path: Path, rel_path: str, source: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel_path)
        self.suppressions = parse_suppressions(source)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True if ``rule`` is disabled for ``line``.

        A directive suppresses its own line; a *standalone* comment
        line additionally suppresses the line directly below it.
        """
        own = self.suppressions.get(line)
        if own is not None and ("*" in own.rules or rule in own.rules):
            return True
        above = self.suppressions.get(line - 1)
        if (
            above is not None
            and above.standalone
            and ("*" in above.rules or rule in above.rules)
        ):
            return True
        return False


class Checker:
    """Base class for one rule.

    Subclasses set ``rule`` (stable ID), ``name``, ``description`` and
    implement :meth:`check`.  :meth:`begin_project` runs once per lint
    invocation with every parsed file, for rules that need whole-project
    context (RL006 reads the codec's tag tables there).
    """

    rule: str = "RL000"
    name: str = "unnamed"
    severity: str = "error"
    description: str = ""

    def begin_project(self, contexts: Sequence[FileContext]) -> None:
        """Optional whole-project pre-pass."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST | None,
        message: str,
        *,
        line: int | None = None,
        severity: str | None = None,
    ) -> Finding:
        lineno = line if line is not None else getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) if line is None else 0
        return Finding(
            rule=self.rule,
            severity=severity or self.severity,
            path=ctx.rel_path,
            line=lineno,
            col=col + 1,
            message=message,
            snippet=ctx.snippet(lineno),
        )


#: Directory names never descended into during the walk.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "node_modules"}


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.parts):
                    seen.setdefault(sub, None)
        else:
            seen.setdefault(path, None)
    return sorted(seen)


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Iterable[str | Path],
    checkers: Sequence[Checker],
    root: Path | None = None,
) -> tuple[list[Finding], int]:
    """Lint every file under ``paths`` with every checker.

    Returns ``(findings, files_scanned)``.  Findings are sorted by
    path, line, rule.  Unreadable or unparsable files surface as a
    single ``RL000`` finding — a lint run must never crash on the code
    it is judging.
    """
    root = root or Path.cwd()
    files = collect_files(paths)
    contexts: list[FileContext] = []
    findings: list[Finding] = []
    for path in files:
        rel = _rel_path(path, root)
        try:
            source = path.read_text(encoding="utf-8")
            contexts.append(FileContext(path, rel, source))
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(
                Finding(
                    rule="RL000",
                    severity="error",
                    path=rel,
                    line=getattr(exc, "lineno", None) or 1,
                    col=1,
                    message=f"cannot lint file: {exc}",
                )
            )
    for checker in checkers:
        checker.begin_project(contexts)
    for ctx in contexts:
        for checker in checkers:
            for finding in checker.check(ctx):
                if not ctx.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.col))
    return findings, len(contexts)


# ----------------------------------------------------------------------
# Shared AST helpers (used by several checkers)
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_self_attr(node: ast.AST, self_name: str, attr: str | None = None) -> bool:
    """True for ``self.X`` (any X, or a specific ``attr``)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
        and (attr is None or node.attr == attr)
    )


def walk_no_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an AST without descending into nested function/class scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            stack.extend(ast.iter_child_nodes(child))
