"""Simulated network with byte-accurate accounting (substrate for E3).

A :class:`Network` connects named nodes.  Sending a message serializes
it (every protocol message implements ``encode()``/``wire_size()``),
charges both endpoints' ledgers, records per-link statistics and
enqueues the message for the destination.  Delivery is synchronous and
deterministic: :meth:`Network.deliver_all` drains the queue in FIFO
order, invoking each node's ``receive`` handler, which may send further
messages (they join the back of the queue).

An optional latency model (fixed per-message cost plus per-byte cost)
accumulates a virtual transfer-time total per link — enough to rank
schemes by network load without a full event-driven clock, which the
paper's claims do not require.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Protocol

from repro.exceptions import ProtocolError
from repro.accounting import CostLedger


class NetworkNode(Protocol):
    """Anything attachable to the network."""

    name: str
    ledger: CostLedger

    def receive(self, sender: str, message: object) -> None: ...  # pragma: no cover


@dataclass
class LinkStats:
    """Traffic counters for one directed (src, dst) link."""

    messages: int = 0
    bytes: int = 0
    transfer_time: float = 0.0


@dataclass
class _QueuedMessage:
    sender: str
    recipient: str
    message: object


class Network:
    """Synchronous message-passing fabric with per-link accounting."""

    def __init__(
        self, latency_per_message: float = 0.0, latency_per_byte: float = 0.0
    ) -> None:
        self.latency_per_message = latency_per_message
        self.latency_per_byte = latency_per_byte
        self._nodes: dict[str, NetworkNode] = {}
        self._queue: deque[_QueuedMessage] = deque()
        self.links: dict[tuple[str, str], LinkStats] = {}

    # ------------------------------------------------------------------

    def attach(self, node: NetworkNode) -> None:
        """Register a node under its ``name``."""
        if node.name in self._nodes:
            raise ProtocolError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node

    def node(self, name: str) -> NetworkNode:
        """Look up an attached node."""
        if name not in self._nodes:
            raise ProtocolError(f"unknown node {name!r}")
        return self._nodes[name]

    @property
    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    # ------------------------------------------------------------------

    def send(self, sender: str, recipient: str, message: object) -> None:
        """Serialize, account and enqueue a message."""
        if sender not in self._nodes:
            raise ProtocolError(f"unknown sender {sender!r}")
        if recipient not in self._nodes:
            raise ProtocolError(f"unknown recipient {recipient!r}")
        size = message.wire_size() if hasattr(message, "wire_size") else 0
        self._nodes[sender].ledger.record_send(size)
        self._nodes[recipient].ledger.record_receive(size)
        stats = self.links.setdefault((sender, recipient), LinkStats())
        stats.messages += 1
        stats.bytes += size
        stats.transfer_time += self.latency_per_message + size * self.latency_per_byte
        self._queue.append(_QueuedMessage(sender, recipient, message))

    def deliver_all(self, max_messages: int = 1_000_000) -> int:
        """Drain the queue; return the number of messages delivered.

        ``max_messages`` guards against protocol loops in tests.
        """
        delivered = 0
        while self._queue:
            if delivered >= max_messages:
                raise ProtocolError(
                    f"message cap {max_messages} exceeded; protocol loop?"
                )
            item = self._queue.popleft()
            self._nodes[item.recipient].receive(item.sender, item.message)
            delivered += 1
        return delivered

    @property
    def pending(self) -> int:
        """Messages waiting for delivery."""
        return len(self._queue)

    # ------------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Bytes carried across all links."""
        return sum(stats.bytes for stats in self.links.values())

    @property
    def total_messages(self) -> int:
        """Messages carried across all links."""
        return sum(stats.messages for stats in self.links.values())

    def bytes_into(self, name: str) -> int:
        """Bytes received by node ``name`` (the supervisor-load metric
        behind the paper's 'O(2^64) ≈ 16 million terabytes' example)."""
        return sum(
            stats.bytes for (
                _src, dst), stats in self.links.items() if dst == name
        )

    def bytes_out_of(self, name: str) -> int:
        """Bytes sent by node ``name``."""
        return sum(
            stats.bytes for (
                src, _dst), stats in self.links.items() if src == name
        )
