"""Report dataclasses for population-level simulations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scheme import RejectReason
from repro.accounting import CostLedger


@dataclass
class ParticipantReport:
    """One participant's run, labelled with ground truth."""

    participant: str
    behavior: str
    honesty_ratio: float
    accepted: bool
    reason: RejectReason
    participant_ledger: CostLedger
    supervisor_ledger_delta: CostLedger

    @property
    def cheated(self) -> bool:
        return self.honesty_ratio < 1.0


@dataclass
class DetectionReport:
    """Aggregate outcome of a population simulation."""

    scheme: str
    participants: list[ParticipantReport] = field(default_factory=list)
    #: Total supervisor-side costs across the population.
    supervisor_ledger: CostLedger = field(default_factory=CostLedger)

    # ------------------------------------------------------------------

    @property
    def n_cheaters(self) -> int:
        return sum(1 for p in self.participants if p.cheated)

    @property
    def n_honest(self) -> int:
        return len(self.participants) - self.n_cheaters

    @property
    def cheaters_caught(self) -> int:
        return sum(1 for p in self.participants if p.cheated and not p.accepted)

    @property
    def honest_rejected(self) -> int:
        """Soundness violations (must be 0 for CBS, Theorem 1)."""
        return sum(1 for p in self.participants if not p.cheated and not p.accepted)

    @property
    def detection_rate(self) -> float:
        """Fraction of cheaters caught (1 − the Eq. 2 event rate)."""
        if self.n_cheaters == 0:
            return 1.0
        return self.cheaters_caught / self.n_cheaters

    @property
    def false_alarm_rate(self) -> float:
        if self.n_honest == 0:
            return 0.0
        return self.honest_rejected / self.n_honest

    @property
    def supervisor_bytes_received(self) -> int:
        """Supervisor ingress — the paper's headline network-load metric."""
        return self.supervisor_ledger.bytes_received

    def summary(self) -> dict:
        """Flat summary row for tables."""
        return {
            "scheme": self.scheme,
            "participants": len(self.participants),
            "cheaters": self.n_cheaters,
            "caught": self.cheaters_caught,
            "detection_rate": self.detection_rate,
            "false_alarms": self.honest_rejected,
            "supervisor_bytes_in": self.supervisor_bytes_received,
            "supervisor_verify_cost": self.supervisor_ledger.verification_cost,
        }
