"""Grid-computing simulator substrate.

Models the paper's §2.1 environment: a supervisor, a population of
untrusted participants, an optional GRACE-style resource broker (§4),
and a network whose traffic is accounted byte-by-byte.  All costs land
in :class:`~repro.grid.accounting.CostLedger` instances so experiments
report machine-independent shapes.
"""

from repro.accounting import CostLedger
from repro.grid.broker import GridResourceBroker
from repro.grid.faults import DroppedOut, FlakyParticipant, RetryingScheme
from repro.grid.network import Network
from repro.grid.participant import ParticipantNode
from repro.grid.report import DetectionReport, ParticipantReport
from repro.grid.simulation import GridSimulation, SimulationConfig, run_population
from repro.grid.supervisor import SupervisorNode

__all__ = [
    "run_population",
    "CostLedger",
    "Network",
    "ParticipantNode",
    "SupervisorNode",
    "GridResourceBroker",
    "FlakyParticipant",
    "RetryingScheme",
    "DroppedOut",
    "GridSimulation",
    "SimulationConfig",
    "DetectionReport",
    "ParticipantReport",
]
