"""Population-level grid simulation driving any verification scheme.

:class:`GridSimulation` realizes the paper's §2.1 environment
statistically: a global domain is partitioned across a population of
participants with assorted behaviours, the chosen scheme runs for each,
and the aggregate :class:`~repro.grid.report.DetectionReport` records
who was caught, at what cost, and how many bytes hit the supervisor.
Experiments E2/E3/E7 are parameter sweeps over these simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cheating.strategies import Behavior, HonestBehavior
from repro.core.scheme import VerificationScheme
from repro.exceptions import TaskError
from repro.accounting import CostLedger
from repro.grid.report import DetectionReport, ParticipantReport
from repro.tasks.domain import Domain
from repro.tasks.function import TaskFunction
from repro.tasks.result import TaskAssignment
from repro.tasks.screener import Screener


@dataclass
class SimulationConfig:
    """Everything one population run needs.

    ``behaviors`` is cycled over the population: with two entries and
    ten participants, participants 0, 2, 4... get the first behaviour.
    """

    domain: Domain
    function: TaskFunction
    scheme: VerificationScheme
    n_participants: int = 4
    behaviors: Sequence[Behavior] = field(default_factory=lambda: [HonestBehavior()])
    screener: Screener | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_participants < 1:
            raise TaskError(
                f"n_participants must be >= 1, got {self.n_participants}"
            )
        if not self.behaviors:
            raise TaskError("behaviors must be non-empty")


class GridSimulation:
    """Run one scheme over a partitioned domain and a mixed population."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config

    def run(self) -> DetectionReport:
        """Execute every participant's protocol; aggregate the report."""
        cfg = self.config
        parts = cfg.domain.partition(cfg.n_participants)
        report = DetectionReport(scheme=cfg.scheme.name)

        for i, subdomain in enumerate(parts):
            behavior = cfg.behaviors[i % len(cfg.behaviors)]
            assignment = TaskAssignment(
                task_id=f"task-{i}",
                domain=subdomain,
                function=cfg.function,
                screener=cfg.screener,
            )
            result = cfg.scheme.run(
                assignment, behavior, seed=cfg.seed * 1_000_003 + i
            )
            work_ratio = (
                result.work.honesty_ratio if result.work is not None else 1.0
            )
            report.participants.append(
                ParticipantReport(
                    participant=f"participant-{i}",
                    behavior=behavior.name,
                    honesty_ratio=work_ratio,
                    accepted=result.outcome.accepted,
                    reason=result.outcome.reason,
                    participant_ledger=result.participant_ledger,
                    supervisor_ledger_delta=result.supervisor_ledger,
                )
            )
            report.supervisor_ledger.merge(result.supervisor_ledger)
        return report


def run_population(
    domain: Domain,
    function: TaskFunction,
    scheme: VerificationScheme,
    behaviors: Sequence[Behavior],
    n_participants: int = 4,
    screener: Screener | None = None,
    seed: int = 0,
) -> DetectionReport:
    """One-call convenience wrapper over :class:`GridSimulation`."""
    return GridSimulation(
        SimulationConfig(
            domain=domain,
            function=function,
            scheme=scheme,
            n_participants=n_participants,
            behaviors=list(behaviors),
            screener=screener,
            seed=seed,
        )
    ).run()
