"""Population-level grid simulation driving any verification scheme.

:class:`GridSimulation` realizes the paper's §2.1 environment
statistically: a global domain is partitioned across a population of
participants with assorted behaviours, the chosen scheme runs for each,
and the aggregate :class:`~repro.grid.report.DetectionReport` records
who was caught, at what cost, and how many bytes hit the supervisor.
Experiments E2/E3/E7 are parameter sweeps over these simulations.

Participant runs are independent protocol executions, so the
simulation dispatches them through the pluggable execution engine
(:mod:`repro.engine`): one :class:`~repro.engine.jobs.SchemeJob` per
participant, seeded via :func:`~repro.engine.seeding.derive_seed`,
batched onto the configured backend.  Report ordering and
ledger-merge semantics are identical on every backend — the engine
returns results in participant order and the merge loop below is the
single aggregation point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cheating.strategies import Behavior, HonestBehavior
from repro.core.scheme import VerificationScheme
from repro.engine import Executor, SchemeJob, derive_seed, run_scheme_jobs
from repro.exceptions import TaskError
from repro.grid.report import DetectionReport, ParticipantReport
from repro.tasks.domain import Domain
from repro.tasks.function import TaskFunction
from repro.tasks.result import TaskAssignment
from repro.tasks.screener import Screener


@dataclass
class SimulationConfig:
    """Everything one population run needs.

    ``behaviors`` is cycled over the population: with two entries and
    ten participants, participants 0, 2, 4... get the first behaviour.
    One behaviour instance therefore serves many participants, and on
    the thread/process backends its ``produce`` may run concurrently
    and/or on pickled copies — behaviours must be stateless across
    calls (all built-ins are; every per-run decision must derive from
    the assignment, seed and salt).  A behaviour that mutates itself
    would race under threads and silently diverge under processes;
    build one instance per participant (as
    :func:`repro.analysis.montecarlo.estimate_escape_rate` does with
    its per-trial factory) if state is unavoidable.

    ``engine`` selects the execution backend (``"serial"``,
    ``"threads"``, ``"processes"``, or a live
    :class:`~repro.engine.executor.Executor` to share a warm pool);
    ``workers`` and ``batch_size`` tune it.  Backends never change
    results — only wall-clock.
    """

    domain: Domain
    function: TaskFunction
    scheme: VerificationScheme
    n_participants: int = 4
    behaviors: Sequence[Behavior] = field(default_factory=lambda: [HonestBehavior()])
    screener: Screener | None = None
    seed: int = 0
    engine: str | Executor = "serial"
    workers: int | None = None
    batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.n_participants < 1:
            raise TaskError(
                f"n_participants must be >= 1, got {self.n_participants}"
            )
        if not self.behaviors:
            raise TaskError("behaviors must be non-empty")


class GridSimulation:
    """Run one scheme over a partitioned domain and a mixed population."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config

    def jobs(self) -> list[SchemeJob]:
        """The population as engine jobs, one per participant."""
        cfg = self.config
        return [
            SchemeJob(
                assignment=TaskAssignment(
                    task_id=f"task-{i}",
                    domain=subdomain,
                    function=cfg.function,
                    screener=cfg.screener,
                ),
                behavior=cfg.behaviors[i % len(cfg.behaviors)],
                seed=derive_seed(cfg.seed, i),
            )
            for i, subdomain in enumerate(cfg.domain.partition(cfg.n_participants))
        ]

    def run(self) -> DetectionReport:
        """Execute every participant's protocol; aggregate the report."""
        cfg = self.config
        jobs = self.jobs()
        results = run_scheme_jobs(
            cfg.scheme,
            jobs,
            engine=cfg.engine,
            workers=cfg.workers,
            batch_size=cfg.batch_size,
        )

        report = DetectionReport(scheme=cfg.scheme.name)
        for i, (job, result) in enumerate(zip(jobs, results)):
            work_ratio = (
                result.work.honesty_ratio if result.work is not None else 1.0
            )
            report.participants.append(
                ParticipantReport(
                    participant=f"participant-{i}",
                    behavior=job.behavior.name,
                    honesty_ratio=work_ratio,
                    accepted=result.outcome.accepted,
                    reason=result.outcome.reason,
                    participant_ledger=result.participant_ledger,
                    supervisor_ledger_delta=result.supervisor_ledger,
                )
            )
            report.supervisor_ledger.merge(result.supervisor_ledger)
        return report


def run_population(
    domain: Domain,
    function: TaskFunction,
    scheme: VerificationScheme,
    behaviors: Sequence[Behavior],
    n_participants: int = 4,
    screener: Screener | None = None,
    seed: int = 0,
    engine: str | Executor = "serial",
    workers: int | None = None,
    batch_size: int | None = None,
) -> DetectionReport:
    """One-call convenience wrapper over :class:`GridSimulation`."""
    return GridSimulation(
        SimulationConfig(
            domain=domain,
            function=function,
            scheme=scheme,
            n_participants=n_participants,
            behaviors=list(behaviors),
            screener=screener,
            seed=seed,
            engine=engine,
            workers=workers,
            batch_size=batch_size,
        )
    ).run()
